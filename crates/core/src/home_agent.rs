//! The home agent.
//!
//! "The home agent is a machine on the mobile host's home network that acts
//! as a proxy on behalf of the mobile host for the duration of its absence.
//! The home agent uses gratuitous proxy ARP to capture all IP packets
//! addressed to the mobile host. When packets addressed to the mobile host
//! arrive on its home network, the home agent intercepts them and uses
//! encapsulation to forward them to the mobile host's current location."
//! (§2, Figure 1.)
//!
//! Implemented as a [`MobilityHook`] on an ordinary host:
//!
//! * serves the registration protocol on UDP 434 ([`crate::registration`]);
//! * on registration: records the binding, starts proxy-ARPing for the home
//!   address, broadcasts a gratuitous ARP to usurp it, and intercepts
//!   packets addressed to it;
//! * intercepted packets are tunnelled to the care-of address (In-IE);
//! * optionally notifies correspondents of the binding with an ICMP Mobile
//!   Host Redirect — the §3.2 route-optimization trigger (Figure 5);
//! * decapsulates reverse tunnels (Out-IE) and re-sends the inner packet —
//!   that part is generic tunnel-endpoint behaviour provided by the host
//!   stack's `forward_decapsulated` flag (Figure 3).

use std::any::Any;
use std::collections::HashMap;

use bytes::Bytes;

use netsim::device::host::{EncapLayer, MobilityHook};
use netsim::device::TxMeta;
use netsim::wire::encap::{encapsulate, EncapFormat};
use netsim::wire::icmp::IcmpMessage;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet};
use netsim::wire::udp::UdpDatagram;
use netsim::{Host, IfaceNo, NetCtx, NodeId, SimDuration, SimTime, TransformKind, World};

use crate::registration::{RegistrationReply, RegistrationRequest, ReplyCode, REGISTRATION_PORT};

/// One registered mobile host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The mobile's current care-of address.
    pub care_of: Ipv4Addr,
    /// When the binding lapses unless refreshed.
    pub expires: SimTime,
    /// Lifetime granted at registration, seconds.
    pub granted_lifetime: u16,
}

/// Home-agent counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaStats {
    /// Registrations accepted.
    pub registrations_accepted: u64,
    /// Registrations denied (wrong agent or address).
    pub registrations_denied: u64,
    /// Deregistrations processed.
    pub deregistrations: u64,
    /// Captured packets tunnelled to care-of addresses.
    pub packets_tunneled: u64,
    /// Wire bytes of those tunnel packets.
    pub bytes_tunneled: u64,
    /// ICMP Mobile Host Redirects emitted.
    pub redirects_sent: u64,
    /// Bindings dropped because their lifetime ran out.
    pub bindings_expired: u64,
}

serde::impl_serialize!(HaStats {
    registrations_accepted,
    registrations_denied,
    deregistrations,
    packets_tunneled,
    bytes_tunneled,
    redirects_sent,
    bindings_expired
});

/// Home-agent configuration.
#[derive(Debug, Clone)]
pub struct HomeAgentConfig {
    /// The agent's own address (where reverse tunnels terminate and
    /// registrations are sent).
    pub addr: Ipv4Addr,
    /// The home network it serves; registrations for other addresses are
    /// denied.
    pub home_prefix: Ipv4Cidr,
    /// Interface attached to the home segment (for proxy/gratuitous ARP).
    pub home_iface: IfaceNo,
    /// Tunnel format for forwarded packets.
    pub encap: EncapFormat,
    /// Send ICMP Mobile Host Redirects to correspondents when forwarding
    /// (the Figure 5 optimization trigger).
    pub send_redirects: bool,
    /// Minimum gap between redirects to the same (correspondent, mobile)
    /// pair.
    pub redirect_interval: SimDuration,
    /// Cap on granted binding lifetimes, seconds.
    pub max_lifetime: u16,
}

impl HomeAgentConfig {
    /// Configuration with defaults: IP-in-IP, no redirects, 600 s max lifetime.
    pub fn new(addr: Ipv4Addr, home_prefix: Ipv4Cidr, home_iface: IfaceNo) -> Self {
        HomeAgentConfig {
            addr,
            home_prefix,
            home_iface,
            encap: EncapFormat::IpInIp,
            send_redirects: false,
            redirect_interval: SimDuration::from_secs(10),
            max_lifetime: 600,
        }
    }

    /// Enable ICMP Mobile Host Redirects (the Figure 5 optimization).
    pub fn with_redirects(mut self) -> Self {
        self.send_redirects = true;
        self
    }

    /// Select the tunnel format.
    pub fn with_encap(mut self, f: EncapFormat) -> Self {
        self.encap = f;
        self
    }
}

/// The home-agent mobility hook.
pub struct HomeAgent {
    config: HomeAgentConfig,
    bindings: HashMap<Ipv4Addr, Binding>,
    redirect_sent: HashMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    /// §6.4: multicast groups tunnelled to absent mobiles — group → home
    /// addresses subscribed through their "virtual interface on the distant
    /// home network".
    multicast_subs: HashMap<Ipv4Addr, Vec<Ipv4Addr>>,
    /// Counters for experiments.
    pub stats: HaStats,
}

impl HomeAgent {
    /// A home-agent hook with no bindings yet.
    pub fn new(config: HomeAgentConfig) -> HomeAgent {
        HomeAgent {
            config,
            bindings: HashMap::new(),
            redirect_sent: HashMap::new(),
            multicast_subs: HashMap::new(),
            stats: HaStats::default(),
        }
    }

    /// Subscribe an absent mobile to a multicast group: group traffic seen
    /// on the home segment is tunnelled to the mobile's care-of address —
    /// the §6.4 "virtual interface on its distant home network" behaviour.
    /// The caller must also join the group on the HA host's home interface
    /// (see [`crate::multicast::join_via_home_agent`]).
    pub fn subscribe_multicast(&mut self, group: Ipv4Addr, home: Ipv4Addr) {
        let subs = self.multicast_subs.entry(group).or_default();
        if !subs.contains(&home) {
            subs.push(home);
        }
    }

    /// Stop tunnelling `group` to the mobile registered at `home`.
    pub fn unsubscribe_multicast(&mut self, group: Ipv4Addr, home: Ipv4Addr) {
        if let Some(subs) = self.multicast_subs.get_mut(&group) {
            subs.retain(|&h| h != home);
        }
    }

    /// Install a home agent on `node` of `world`. Enables the host's tunnel
    /// endpoint capabilities.
    pub fn install(world: &mut World, node: NodeId, config: HomeAgentConfig) {
        let host = world.host_mut(node);
        host.set_decap_capable(true);
        host.set_forward_decapsulated(true);
        host.set_hook(Box::new(HomeAgent::new(config)));
    }

    /// Simulate a home-agent crash and reboot on `node`: the binding table,
    /// redirect throttle, and multicast subscriptions are volatile state and
    /// are lost, and the host stops intercepting and proxy-ARPing for every
    /// previously registered mobile. Mobiles notice when traffic stops
    /// flowing and must re-register — the mass re-registration scenario.
    /// Returns the number of bindings dropped.
    pub fn restart(world: &mut World, node: NodeId) -> usize {
        let host = world.host_mut(node);
        let homes: Vec<Ipv4Addr> = {
            let Some(ha) = host.hook_as::<HomeAgent>() else {
                return 0;
            };
            let homes = ha.bindings.keys().copied().collect();
            ha.bindings.clear();
            ha.redirect_sent.clear();
            ha.multicast_subs.clear();
            homes
        };
        for &home in &homes {
            host.remove_intercept(home);
            host.remove_proxy_arp(home);
        }
        homes.len()
    }

    /// The current binding for a home address, if registered.
    pub fn binding(&self, home: Ipv4Addr) -> Option<&Binding> {
        self.bindings.get(&home)
    }

    /// Iterate over all active bindings.
    pub fn bindings(&self) -> impl Iterator<Item = (&Ipv4Addr, &Binding)> {
        self.bindings.iter()
    }

    fn valid_binding(&mut self, home: Ipv4Addr, now: SimTime, host: &mut Host) -> Option<Binding> {
        match self.bindings.get(&home).copied() {
            Some(b) if now <= b.expires => Some(b),
            Some(_) => {
                // Expired: stop serving this address.
                self.bindings.remove(&home);
                host.remove_intercept(home);
                host.remove_proxy_arp(home);
                self.stats.bindings_expired += 1;
                None
            }
            None => None,
        }
    }

    fn handle_registration(&mut self, pkt: &Ipv4Packet, host: &mut Host, ctx: &mut NetCtx) -> bool {
        let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return false;
        };
        if dgram.dst_port != REGISTRATION_PORT {
            return false;
        }
        let Ok(req) = RegistrationRequest::parse(&dgram.payload) else {
            return true; // ours but malformed; swallow
        };

        let authorized = req.home_agent == self.config.addr
            && self.config.home_prefix.contains(req.home_address);
        let (code, lifetime) = if !authorized {
            self.stats.registrations_denied += 1;
            (ReplyCode::Denied, 0)
        } else if req.is_deregistration() {
            self.bindings.remove(&req.home_address);
            host.remove_intercept(req.home_address);
            host.remove_proxy_arp(req.home_address);
            self.stats.deregistrations += 1;
            (ReplyCode::Accepted, 0)
        } else {
            let lifetime = req.lifetime.min(self.config.max_lifetime);
            self.bindings.insert(
                req.home_address,
                Binding {
                    care_of: req.care_of,
                    expires: ctx.now + SimDuration::from_secs(u64::from(lifetime)),
                    granted_lifetime: lifetime,
                },
            );
            host.add_intercept(req.home_address);
            host.add_proxy_arp(req.home_address);
            // Usurp the address on the home segment so existing ARP caches
            // switch over to us (RFC 1027 gratuitous proxy ARP, §2).
            host.send_gratuitous_arp(ctx, self.config.home_iface, req.home_address);
            self.stats.registrations_accepted += 1;
            (ReplyCode::Accepted, lifetime)
        };

        let reply = RegistrationReply {
            code,
            lifetime,
            home_address: req.home_address,
            home_agent: self.config.addr,
            ident: req.ident,
        };
        let out_dgram =
            UdpDatagram::new(REGISTRATION_PORT, dgram.src_port, Bytes::from(reply.emit()));
        let mut out = Ipv4Packet::new(
            self.config.addr,
            pkt.src,
            IpProtocol::Udp,
            Bytes::from(out_dgram.emit(self.config.addr, pkt.src)),
        );
        out.ident = host.alloc_ident();
        host.send_ip(
            ctx,
            out,
            TxMeta {
                skip_override: true,
                ..TxMeta::default()
            },
        );
        true
    }

    fn tunnel_to_mobile(
        &mut self,
        pkt: Ipv4Packet,
        binding: Binding,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) {
        let ident = host.alloc_ident();
        // Minimal encapsulation cannot carry fragments (RFC 2004); fall
        // back to IP-in-IP for those.
        let format = if pkt.is_fragment() && self.config.encap == EncapFormat::Minimal {
            EncapFormat::IpInIp
        } else {
            self.config.encap
        };
        let mut outer = encapsulate(format, self.config.addr, binding.care_of, &pkt, ident)
            .expect("non-minimal encapsulation is infallible");
        outer.ttl = netsim::wire::ipv4::DEFAULT_TTL; // fresh tunnel TTL
        ctx.trace_transform(TransformKind::Encapsulated(format), Some(&pkt), &outer);
        self.stats.packets_tunneled += 1;
        self.stats.bytes_tunneled += outer.wire_len() as u64;
        host.send_ip(
            ctx,
            outer,
            TxMeta {
                skip_override: true,
                ..TxMeta::default()
            },
        );
    }

    fn maybe_send_redirect(
        &mut self,
        correspondent: Ipv4Addr,
        home: Ipv4Addr,
        binding: Binding,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) {
        if !self.config.send_redirects
            || correspondent == home
            || correspondent == self.config.addr
            || self.config.home_prefix.contains(correspondent)
        {
            // No point redirecting hosts on the home segment: their packets
            // already take the shortest path to us.
            return;
        }
        let key = (correspondent, home);
        if let Some(&last) = self.redirect_sent.get(&key) {
            if ctx.now.since(last) < self.config.redirect_interval {
                return;
            }
        }
        self.redirect_sent.insert(key, ctx.now);
        let remaining = binding.expires.since(ctx.now).as_micros() / 1_000_000;
        let msg = IcmpMessage::MobileHostRedirect {
            home,
            care_of: binding.care_of,
            lifetime_secs: remaining.min(u64::from(u16::MAX)) as u16,
        };
        let mut out = Ipv4Packet::new(
            self.config.addr,
            correspondent,
            IpProtocol::Icmp,
            Bytes::from(msg.emit()),
        );
        out.ident = host.alloc_ident();
        self.stats.redirects_sent += 1;
        host.send_ip(
            ctx,
            out,
            TxMeta {
                skip_override: true,
                ..TxMeta::default()
            },
        );
    }
}

impl MobilityHook for HomeAgent {
    fn incoming(
        &mut self,
        pkt: Ipv4Packet,
        layers: &[EncapLayer],
        _iface: IfaceNo,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> Option<Ipv4Packet> {
        // Registration protocol addressed to us.
        if pkt.dst == self.config.addr
            && pkt.protocol == IpProtocol::Udp
            && self.handle_registration(&pkt, host, ctx)
        {
            return None;
        }

        // Multicast the HA receives on behalf of subscribed mobiles gets a
        // tunnelled copy per subscriber (§6.4 — and experiment E12 measures
        // exactly how self-defeating this is).
        if pkt.dst.is_multicast() {
            if let Some(homes) = self.multicast_subs.get(&pkt.dst).cloned() {
                for home in homes {
                    if let Some(binding) = self.valid_binding(home, ctx.now, host) {
                        self.tunnel_to_mobile(pkt.clone(), binding, host, ctx);
                    }
                }
                return None;
            }
            return Some(pkt);
        }

        // A packet for a mobile host we are serving? (Either captured via
        // proxy ARP on the home segment, or the inner packet of a reverse
        // tunnel whose final destination is another of our mobiles.)
        if let Some(binding) = self.valid_binding(pkt.dst, ctx.now, host) {
            let (src, home) = (pkt.src, pkt.dst);
            // Only advertise bindings for natively-routed packets; the
            // source of a reverse-tunnelled inner packet is the mobile
            // host itself.
            if layers.is_empty() {
                self.maybe_send_redirect(src, home, binding, host, ctx);
            }
            self.tunnel_to_mobile(pkt, binding, host, ctx);
            return None;
        }

        Some(pkt)
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::wire::icmp::IcmpMessage;
    use netsim::{HostConfig, IfaceAddr, LinkConfig, RouterConfig, TraceEventKind};
    use transport::udp;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// home(171.64.15.0/24): ha(.1), server(.7), router(.254)
    /// wan → visited(36.186.0.0/24): router(.254), away(.99)
    struct Fixture {
        w: World,
        ha: NodeId,
        server: NodeId,
        away: NodeId,
    }

    fn fixture() -> Fixture {
        let mut w = World::new(17);
        let home = w.add_segment(LinkConfig::lan());
        let wan = w.add_segment(LinkConfig::wan(20));
        let visited = w.add_segment(LinkConfig::lan());
        let ha = w.add_host(HostConfig::agent("ha"));
        let server = w.add_host(HostConfig::conventional("server"));
        let away = w.add_host(HostConfig::decap_capable("away-mh"));
        let r1 = w.add_router(RouterConfig::named("home-gw"));
        let r2 = w.add_router(RouterConfig::named("visited-gw"));
        let ha_if = w.attach(ha, home, Some("171.64.15.1/24"));
        w.attach(server, home, Some("171.64.15.7/24"));
        w.attach(r1, home, Some("171.64.15.254/24"));
        w.attach(r1, wan, Some("192.168.0.1/30"));
        w.attach(r2, wan, Some("192.168.0.2/30"));
        w.attach(r2, visited, Some("36.186.0.254/24"));
        w.attach(away, visited, Some("36.186.0.99/24"));
        w.compute_routes();
        assert_eq!(ha_if, 0);
        HomeAgent::install(
            &mut w,
            ha,
            HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if)
                .with_redirects(),
        );
        udp::install(w.host_mut(away));
        udp::install(w.host_mut(server));
        Fixture {
            w,
            ha,
            server,
            away,
        }
    }

    fn register(f: &mut Fixture, lifetime: u16) -> RegistrationReply {
        let sock = udp::bind(f.w.host_mut(f.away), None, 0);
        let req = RegistrationRequest {
            lifetime,
            home_address: ip("171.64.15.9"),
            home_agent: ip("171.64.15.1"),
            care_of: ip("36.186.0.99"),
            ident: 7,
        };
        f.w.host_do(f.away, |h, ctx| {
            udp::send_to(
                h,
                ctx,
                sock,
                (ip("171.64.15.1"), REGISTRATION_PORT),
                req.emit(),
            );
        });
        f.w.run_until_idle(100_000);
        let got = udp::recv(f.w.host_mut(f.away), sock).expect("reply received");
        RegistrationReply::parse(&got.payload).expect("valid reply")
    }

    #[test]
    fn registration_accepted_and_binding_recorded() {
        let mut f = fixture();
        let reply = register(&mut f, 300);
        assert_eq!(reply.code, ReplyCode::Accepted);
        assert_eq!(reply.lifetime, 300);
        assert_eq!(reply.ident, 7);
        let ha = f.w.host_mut(f.ha);
        assert!(ha.intercepts(ip("171.64.15.9")));
        let hook = ha.hook_as::<HomeAgent>().unwrap();
        assert_eq!(
            hook.binding(ip("171.64.15.9")).unwrap().care_of,
            ip("36.186.0.99")
        );
        assert_eq!(hook.stats.registrations_accepted, 1);
    }

    #[test]
    fn restart_drops_bindings_and_host_capture_state() {
        let mut f = fixture();
        register(&mut f, 300);
        assert!(f.w.host_mut(f.ha).intercepts(ip("171.64.15.9")));
        assert_eq!(HomeAgent::restart(&mut f.w, f.ha), 1);
        let ha = f.w.host_mut(f.ha);
        assert!(!ha.intercepts(ip("171.64.15.9")));
        let hook = ha.hook_as::<HomeAgent>().unwrap();
        assert!(hook.binding(ip("171.64.15.9")).is_none());
        // Re-registration restores service as if from scratch.
        let reply = register(&mut f, 300);
        assert_eq!(reply.code, ReplyCode::Accepted);
        assert!(f.w.host_mut(f.ha).intercepts(ip("171.64.15.9")));
        // A host without the hook is a no-op.
        assert_eq!(HomeAgent::restart(&mut f.w, f.server), 0);
    }

    #[test]
    fn registration_outside_home_prefix_denied() {
        let mut f = fixture();
        let sock = udp::bind(f.w.host_mut(f.away), None, 0);
        let req = RegistrationRequest {
            lifetime: 300,
            home_address: ip("18.26.0.5"), // not 171.64.15/24
            home_agent: ip("171.64.15.1"),
            care_of: ip("36.186.0.99"),
            ident: 9,
        };
        f.w.host_do(f.away, |h, ctx| {
            udp::send_to(
                h,
                ctx,
                sock,
                (ip("171.64.15.1"), REGISTRATION_PORT),
                req.emit(),
            );
        });
        f.w.run_until_idle(100_000);
        let got = udp::recv(f.w.host_mut(f.away), sock).unwrap();
        let reply = RegistrationReply::parse(&got.payload).unwrap();
        assert_eq!(reply.code, ReplyCode::Denied);
        let hook = f.w.host_mut(f.ha).hook_as::<HomeAgent>().unwrap();
        assert_eq!(hook.stats.registrations_denied, 1);
        assert!(hook.binding(ip("18.26.0.5")).is_none());
    }

    #[test]
    fn captured_packets_are_tunneled_to_care_of_address() {
        let mut f = fixture();
        register(&mut f, 300);
        // Give the away host the home address as a virtual (unattached)
        // interface, as a real mobile host would.
        let away = f.w.host_mut(f.away);
        let vif = away.add_iface(netsim::wire::ethernet::MacAddr::from_index(900));
        away.set_iface_addr(vif, Some(IfaceAddr::parse("171.64.15.9/32")));

        // The home-segment server pings the (absent) mobile host.
        f.w.host_do(f.server, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.7"), ip("171.64.15.9"), 1)
        });
        f.w.run_until_idle(100_000);

        // The echo request reached the away host through a tunnel...
        let away_log = &f.w.host(f.away).icmp_log;
        assert!(away_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 1, .. })));
        // ...and the reply got back to the server (sent directly, Out-DH,
        // which works because no filters are configured in this fixture).
        assert!(f
            .w
            .host(f.server)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 1, .. })));
        // The tunnel leg is visible in the trace.
        let tunneled = f.w.trace.matching(|s| {
            s.protocol == IpProtocol::IpInIp
                && s.inner.map(|(_, d, _)| d) == Some(ip("171.64.15.9"))
        });
        assert!(tunneled.count() >= 1);
        let hook = f.w.host_mut(f.ha).hook_as::<HomeAgent>().unwrap();
        assert!(hook.stats.packets_tunneled >= 1);
    }

    #[test]
    fn redirect_sent_to_remote_correspondent_once_per_interval() {
        let mut f = fixture();
        register(&mut f, 300);
        let away = f.w.host_mut(f.away);
        let vif = away.add_iface(netsim::wire::ethernet::MacAddr::from_index(901));
        away.set_iface_addr(vif, Some(IfaceAddr::parse("171.64.15.9/32")));

        // Add a remote correspondent in a third domain.
        let chnet = f.w.add_segment(LinkConfig::lan());
        let ch = f.w.add_host(HostConfig::conventional("ch"));
        let r3 = f.w.add_router(RouterConfig::named("ch-gw"));
        // Bridge via the wan segment (SegmentId 1).
        f.w.attach(r3, netsim::SegmentId(1), Some("192.168.0.3/30"));
        f.w.attach(r3, chnet, Some("18.26.0.254/24"));
        f.w.attach(ch, chnet, Some("18.26.0.5/24"));
        f.w.compute_routes();

        // CH pings the mobile's home address twice in quick succession.
        f.w.host_do(ch, |h, ctx| {
            h.send_ping(ctx, ip("18.26.0.5"), ip("171.64.15.9"), 1);
            h.send_ping(ctx, ip("18.26.0.5"), ip("171.64.15.9"), 2);
        });
        f.w.run_until_idle(100_000);

        // CH received exactly one Mobile Host Redirect (rate limiting).
        let redirects: Vec<_> =
            f.w.host(ch)
                .icmp_log
                .iter()
                .filter(|e| matches!(e.message, IcmpMessage::MobileHostRedirect { .. }))
                .collect();
        assert_eq!(redirects.len(), 1);
        match redirects[0].message {
            IcmpMessage::MobileHostRedirect { home, care_of, .. } => {
                assert_eq!(home, ip("171.64.15.9"));
                assert_eq!(care_of, ip("36.186.0.99"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn deregistration_restores_normal_delivery() {
        let mut f = fixture();
        register(&mut f, 300);
        assert!(f.w.host(f.ha).intercepts(ip("171.64.15.9")));
        let reply = register(&mut f, 0); // lifetime 0 = deregister
        assert_eq!(reply.code, ReplyCode::Accepted);
        let ha = f.w.host_mut(f.ha);
        assert!(!ha.intercepts(ip("171.64.15.9")));
        let hook = ha.hook_as::<HomeAgent>().unwrap();
        assert!(hook.binding(ip("171.64.15.9")).is_none());
        assert_eq!(hook.stats.deregistrations, 1);
    }

    #[test]
    fn binding_expires_after_lifetime() {
        let mut f = fixture();
        register(&mut f, 5); // five seconds
        f.w.run_for(SimDuration::from_secs(6));
        // Next captured packet discovers the expiry.
        f.w.host_do(f.server, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.7"), ip("171.64.15.9"), 3)
        });
        f.w.run_until_idle(100_000);
        let hook = f.w.host_mut(f.ha).hook_as::<HomeAgent>().unwrap();
        assert!(hook.binding(ip("171.64.15.9")).is_none());
        assert_eq!(hook.stats.bindings_expired, 1);
        assert_eq!(hook.stats.packets_tunneled, 0);
    }

    #[test]
    fn reverse_tunnel_inner_packet_is_forwarded() {
        // The away host reverse-tunnels a UDP packet for the home server
        // via the HA (Out-IE by hand), demonstrating Figure 3.
        let mut f = fixture();
        register(&mut f, 300);
        let server_sock = udp::bind(f.w.host_mut(f.server), None, 5000);
        f.w.host_do(f.away, |h, ctx| {
            let inner_dgram = UdpDatagram::new(6000, 5000, Bytes::from_static(b"via tunnel"));
            let mut inner = Ipv4Packet::new(
                ip("171.64.15.9"), // home source inside the tunnel
                ip("171.64.15.7"),
                IpProtocol::Udp,
                Bytes::from(inner_dgram.emit(ip("171.64.15.9"), ip("171.64.15.7"))),
            );
            inner.ident = h.alloc_ident();
            let outer = encapsulate(
                EncapFormat::IpInIp,
                ip("36.186.0.99"),
                ip("171.64.15.1"),
                &inner,
                h.alloc_ident(),
            )
            .unwrap();
            h.send_ip(ctx, outer, TxMeta::default());
        });
        f.w.run_until_idle(100_000);
        let got = udp::recv(f.w.host_mut(f.server), server_sock).expect("delivered via HA");
        assert_eq!(got.payload, Bytes::from_static(b"via tunnel"));
        assert_eq!(
            got.from,
            (ip("171.64.15.9"), 6000),
            "inner source preserved"
        );
        // The HA re-sent the inner packet (Sent trace event at the HA node).
        let ha_id = f.ha;
        assert!(f.w.trace.events().iter().any(|e| e.node == ha_id
            && e.kind == TraceEventKind::Sent
            && e.packet.dst == ip("171.64.15.7")));
    }
}
