//! DNS with the paper's temporary-address record extension.
//!
//! §3.2: "The second is an extension to the Domain Name Service, similar to
//! the current MX records which provide alternative addresses for mail
//! delivery. A mobile host that is away from home, but not currently
//! changing location frequently, could register its care-of address with
//! the extended DNS service. When a smart correspondent looks up a host
//! name and sees that it has a temporary address record in addition to the
//! normal permanent address record, it then knows that it has the option to
//! send packets directly to that temporary address."
//!
//! The wire format is an RFC 1035 subset: real header, label-encoded names,
//! question and answer sections, A records — plus the **TA record**
//! (private-use type 65280) carrying the care-of address. Dynamic updates
//! (the mobile host registering its TA record) use opcode 5 in the spirit
//! of RFC 2136, with the new record in the answer section. Omitted: name
//! compression, NS/SOA machinery, recursion — a closed simulated internet
//! needs exactly one authoritative server.

use std::any::Any;
use std::collections::HashMap;

use netsim::wire::ParseError;
use netsim::{App, Host, Ipv4Addr, NetCtx, SimDuration, SimTime};
use transport::udp;

use crate::correspondent::{BindingSource, MobileAwareCh};

/// Standard DNS port.
pub const DNS_PORT: u16 = 53;
/// Record type A (host address).
pub const TYPE_A: u16 = 1;
/// Record type ANY (query only).
pub const TYPE_ANY: u16 = 255;
/// The temporary-address record type (private-use range).
pub const TYPE_TA: u16 = 0xff00;

/// Opcodes we implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Ordinary lookup.
    Query,
    /// Dynamic update (RFC 2136-flavoured).
    Update,
}

/// One question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The name this record/question concerns.
    pub name: String,
    /// Query type (`TYPE_A`, `TYPE_TA`, or `TYPE_ANY`).
    pub qtype: u16,
}

/// One resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// The name this record/question concerns.
    pub name: String,
    /// Record type (`TYPE_A` or `TYPE_TA`).
    pub rtype: u16,
    /// Seconds the record may be believed (0 deletes on update).
    pub ttl: u32,
    /// The address carried in RDATA.
    pub addr: Ipv4Addr,
}

/// A DNS message (header + question + answer sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id copied into the response.
    pub id: u16,
    /// QR bit: response rather than query.
    pub response: bool,
    /// Query or dynamic update.
    pub opcode: Opcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section (also carries update records).
    pub answers: Vec<ResourceRecord>,
}

fn emit_name(buf: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        assert!(label.len() < 64, "label too long");
        buf.push(label.len() as u8);
        buf.extend_from_slice(label.as_bytes());
    }
    buf.push(0);
}

fn parse_name(data: &[u8], mut pos: usize) -> Result<(String, usize), ParseError> {
    let mut name = String::new();
    loop {
        let len = *data.get(pos).ok_or(ParseError::Truncated {
            needed: pos + 1,
            got: data.len(),
        })? as usize;
        pos += 1;
        if len == 0 {
            break;
        }
        if len >= 64 {
            return Err(ParseError::BadField {
                what: "dns label length",
                value: len as u64,
            });
        }
        if pos + len > data.len() {
            return Err(ParseError::Truncated {
                needed: pos + len,
                got: data.len(),
            });
        }
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(&String::from_utf8_lossy(&data[pos..pos + len]));
        pos += len;
    }
    Ok((name, pos))
}

impl DnsMessage {
    /// Build a single-question query.
    pub fn query(id: u16, name: &str, qtype: u16) -> DnsMessage {
        DnsMessage {
            id,
            response: false,
            opcode: Opcode::Query,
            questions: vec![Question {
                name: name.to_string(),
                qtype,
            }],
            answers: Vec::new(),
        }
    }

    /// A dynamic update installing (or, with ttl 0, deleting) a record.
    pub fn update(id: u16, record: ResourceRecord) -> DnsMessage {
        DnsMessage {
            id,
            response: false,
            opcode: Opcode::Update,
            questions: Vec::new(),
            answers: vec![record],
        }
    }

    /// Serialize to wire bytes (RFC 1035 subset).
    pub fn emit(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(&self.id.to_be_bytes());
        let opcode_bits: u16 = match self.opcode {
            Opcode::Query => 0,
            Opcode::Update => 5,
        };
        let flags: u16 = (u16::from(self.response) << 15) | (opcode_bits << 11);
        b.extend_from_slice(&flags.to_be_bytes());
        b.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        b.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        b.extend_from_slice(&0u16.to_be_bytes()); // nscount
        b.extend_from_slice(&0u16.to_be_bytes()); // arcount
        for q in &self.questions {
            emit_name(&mut b, &q.name);
            b.extend_from_slice(&q.qtype.to_be_bytes());
            b.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for rr in &self.answers {
            emit_name(&mut b, &rr.name);
            b.extend_from_slice(&rr.rtype.to_be_bytes());
            b.extend_from_slice(&1u16.to_be_bytes()); // class IN
            b.extend_from_slice(&rr.ttl.to_be_bytes());
            b.extend_from_slice(&4u16.to_be_bytes()); // rdlength
            b.extend_from_slice(&rr.addr.octets());
        }
        b
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<DnsMessage, ParseError> {
        if data.len() < 12 {
            return Err(ParseError::Truncated {
                needed: 12,
                got: data.len(),
            });
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        let opcode = match (flags >> 11) & 0xf {
            0 => Opcode::Query,
            5 => Opcode::Update,
            other => {
                return Err(ParseError::BadField {
                    what: "dns opcode",
                    value: u64::from(other),
                })
            }
        };
        let qdcount = u16::from_be_bytes([data[4], data[5]]) as usize;
        let ancount = u16::from_be_bytes([data[6], data[7]]) as usize;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let (name, p) = parse_name(data, pos)?;
            pos = p;
            if pos + 4 > data.len() {
                return Err(ParseError::Truncated {
                    needed: pos + 4,
                    got: data.len(),
                });
            }
            let qtype = u16::from_be_bytes([data[pos], data[pos + 1]]);
            pos += 4; // skip class
            questions.push(Question { name, qtype });
        }
        let mut answers = Vec::with_capacity(ancount);
        for _ in 0..ancount {
            let (name, p) = parse_name(data, pos)?;
            pos = p;
            if pos + 10 > data.len() {
                return Err(ParseError::Truncated {
                    needed: pos + 10,
                    got: data.len(),
                });
            }
            let rtype = u16::from_be_bytes([data[pos], data[pos + 1]]);
            let ttl =
                u32::from_be_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            let rdlen = u16::from_be_bytes([data[pos + 8], data[pos + 9]]) as usize;
            pos += 10;
            if rdlen != 4 || pos + 4 > data.len() {
                return Err(ParseError::BadField {
                    what: "dns rdlength",
                    value: rdlen as u64,
                });
            }
            let addr =
                Ipv4Addr::from_octets([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
            pos += 4;
            answers.push(ResourceRecord {
                name,
                rtype,
                ttl,
                addr,
            });
        }
        Ok(DnsMessage {
            id,
            response: flags & 0x8000 != 0,
            opcode,
            questions,
            answers,
        })
    }
}

// ------------------------------------------------------------------ server

#[derive(Debug, Clone, Default)]
struct ZoneEntry {
    a: Option<Ipv4Addr>,
    ta: Option<(Ipv4Addr, SimTime)>, // (care-of, expires)
}

/// An authoritative DNS server with TA-record support, run as an [`App`].
pub struct DnsServer {
    zone: HashMap<String, ZoneEntry>,
    sock: Option<udp::UdpHandle>,
    /// Queries answered.
    pub queries_served: u64,
    /// Dynamic updates applied.
    pub updates_accepted: u64,
}

impl DnsServer {
    /// An empty authoritative server.
    pub fn new() -> DnsServer {
        DnsServer {
            zone: HashMap::new(),
            sock: None,
            queries_served: 0,
            updates_accepted: 0,
        }
    }

    /// Pre-load an A record.
    pub fn with_a(mut self, name: &str, addr: Ipv4Addr) -> DnsServer {
        self.zone.entry(name.to_string()).or_default().a = Some(addr);
        self
    }

    /// The current TA record for `name`, with its expiry (tests).
    pub fn ta_record(&self, name: &str) -> Option<(Ipv4Addr, SimTime)> {
        self.zone.get(name).and_then(|e| e.ta)
    }

    fn answer(&mut self, q: &Question, now: SimTime) -> Vec<ResourceRecord> {
        let mut out = Vec::new();
        let Some(entry) = self.zone.get_mut(&q.name) else {
            return out;
        };
        // Expire stale TA records lazily.
        if entry.ta.is_some_and(|(_, exp)| now > exp) {
            entry.ta = None;
        }
        if q.qtype == TYPE_A || q.qtype == TYPE_ANY {
            if let Some(a) = entry.a {
                out.push(ResourceRecord {
                    name: q.name.clone(),
                    rtype: TYPE_A,
                    ttl: 3600,
                    addr: a,
                });
            }
        }
        if q.qtype == TYPE_TA || q.qtype == TYPE_ANY {
            if let Some((coa, exp)) = entry.ta {
                out.push(ResourceRecord {
                    name: q.name.clone(),
                    rtype: TYPE_TA,
                    ttl: (exp.since(now).as_micros() / 1_000_000) as u32,
                    addr: coa,
                });
            }
        }
        out
    }
}

impl Default for DnsServer {
    fn default() -> Self {
        DnsServer::new()
    }
}

impl App for DnsServer {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, None, DNS_PORT));
        while let Some(got) = udp::recv(host, sock) {
            let Ok(msg) = DnsMessage::parse(&got.payload) else {
                continue;
            };
            if msg.response {
                continue;
            }
            let reply = match msg.opcode {
                Opcode::Query => {
                    self.queries_served += 1;
                    let mut answers = Vec::new();
                    for q in &msg.questions {
                        answers.extend(self.answer(q, ctx.now));
                    }
                    DnsMessage {
                        id: msg.id,
                        response: true,
                        opcode: Opcode::Query,
                        questions: msg.questions.clone(),
                        answers,
                    }
                }
                Opcode::Update => {
                    for rr in &msg.answers {
                        let entry = self.zone.entry(rr.name.clone()).or_default();
                        match rr.rtype {
                            TYPE_TA if rr.ttl == 0 => entry.ta = None,
                            TYPE_TA => {
                                entry.ta = Some((
                                    rr.addr,
                                    ctx.now + SimDuration::from_secs(u64::from(rr.ttl)),
                                ));
                            }
                            TYPE_A => entry.a = Some(rr.addr),
                            _ => {}
                        }
                        self.updates_accepted += 1;
                    }
                    DnsMessage {
                        id: msg.id,
                        response: true,
                        opcode: Opcode::Update,
                        questions: Vec::new(),
                        answers: Vec::new(),
                    }
                }
            };
            udp::send_to(host, ctx, sock, got.from, reply.emit());
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------------------ client

/// The outcome of a [`DnsLookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsResult {
    /// The permanent (A) address, if any.
    pub a: Option<Ipv4Addr>,
    /// The temporary (TA) care-of address, if currently registered.
    pub ta: Option<Ipv4Addr>,
}

/// A one-shot ANY lookup, run as an [`App`]. If the answer includes a TA
/// record and the host carries a [`MobileAwareCh`] hook, the binding is
/// installed automatically — the §3.2 smart-correspondent flow.
pub struct DnsLookup {
    /// The server to talk to.
    pub server: (Ipv4Addr, u16),
    /// The name this record/question concerns.
    pub name: String,
    /// Auto-install a learned binding into a `MobileAwareCh` hook.
    pub install_binding: bool,
    sock: Option<udp::UdpHandle>,
    sent: bool,
    /// The answer, once it arrives.
    pub result: Option<DnsResult>,
}

impl DnsLookup {
    /// A one-shot ANY lookup of `name` at `server`.
    pub fn new(server: Ipv4Addr, name: &str) -> DnsLookup {
        DnsLookup {
            server: (server, DNS_PORT),
            name: name.to_string(),
            install_binding: true,
            sock: None,
            sent: false,
            result: None,
        }
    }
}

impl App for DnsLookup {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        if self.result.is_some() {
            return;
        }
        let sock = *self.sock.get_or_insert_with(|| udp::bind(host, None, 0));
        if !self.sent {
            // DNS queries are the paper's canonical Out-DT traffic: port 53
            // hits the policy's DT heuristic automatically.
            let q = DnsMessage::query(0x4d31, &self.name, TYPE_ANY);
            udp::send_to(host, ctx, sock, self.server, q.emit());
            self.sent = true;
        }
        while let Some(got) = udp::recv(host, sock) {
            let Ok(msg) = DnsMessage::parse(&got.payload) else {
                continue;
            };
            if !msg.response {
                continue;
            }
            let a = msg
                .answers
                .iter()
                .find(|r| r.rtype == TYPE_A)
                .map(|r| r.addr);
            let ta = msg
                .answers
                .iter()
                .find(|r| r.rtype == TYPE_TA)
                .map(|r| r.addr);
            if self.install_binding {
                if let (Some(home), Some(coa)) = (a, ta) {
                    let ttl = msg
                        .answers
                        .iter()
                        .find(|r| r.rtype == TYPE_TA)
                        .map(|r| r.ttl)
                        .unwrap_or(60);
                    let expires = ctx.now + SimDuration::from_secs(u64::from(ttl));
                    if let Some(ch) = host.hook_as::<MobileAwareCh>() {
                        ch.set_binding(home, coa, expires, BindingSource::Dns);
                    }
                }
            }
            self.result = Some(DnsResult { a, ta });
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A mobile-host-side app that keeps the TA record registered while the
/// host is away and withdraws it when home — §3.2's "register its care-of
/// address with the extended DNS service".
pub struct TaRegistrar {
    /// The server to talk to.
    pub server: (Ipv4Addr, u16),
    /// The name this record/question concerns.
    pub name: String,
    /// Seconds the record may be believed (0 deletes on update).
    pub ttl: u32,
    sock: Option<udp::UdpHandle>,
    last_published: Option<Option<Ipv4Addr>>,
    /// Dynamic updates transmitted.
    pub updates_sent: u64,
}

impl TaRegistrar {
    /// A registrar keeping `name`'s TA record current at `server`.
    pub fn new(server: Ipv4Addr, name: &str) -> TaRegistrar {
        TaRegistrar {
            server: (server, DNS_PORT),
            name: name.to_string(),
            ttl: 300,
            sock: None,
            last_published: None,
            updates_sent: 0,
        }
    }
}

impl App for TaRegistrar {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let current = host
            .hook_as::<crate::mobile_host::MobileHost>()
            .and_then(|mh| mh.care_of());
        if self.last_published == Some(current) {
            return;
        }
        let sock = *self.sock.get_or_insert_with(|| udp::bind(host, None, 0));
        let rr = ResourceRecord {
            name: self.name.clone(),
            rtype: TYPE_TA,
            ttl: if current.is_some() { self.ttl } else { 0 },
            addr: current.unwrap_or(Ipv4Addr::UNSPECIFIED),
        };
        let msg = DnsMessage::update(0x7a00 + self.updates_sent as u16, rr);
        if udp::send_to(host, ctx, sock, self.server, msg.emit()) {
            self.updates_sent += 1;
            self.last_published = Some(current);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostConfig, LinkConfig, NodeId, World};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn message_roundtrip_query_and_response() {
        let q = DnsMessage::query(7, "mh.mosquitonet.stanford.edu", TYPE_ANY);
        assert_eq!(DnsMessage::parse(&q.emit()).unwrap(), q);
        let r = DnsMessage {
            id: 7,
            response: true,
            opcode: Opcode::Query,
            questions: q.questions.clone(),
            answers: vec![
                ResourceRecord {
                    name: "mh.mosquitonet.stanford.edu".into(),
                    rtype: TYPE_A,
                    ttl: 3600,
                    addr: ip("171.64.15.9"),
                },
                ResourceRecord {
                    name: "mh.mosquitonet.stanford.edu".into(),
                    rtype: TYPE_TA,
                    ttl: 300,
                    addr: ip("36.186.0.99"),
                },
            ],
        };
        assert_eq!(DnsMessage::parse(&r.emit()).unwrap(), r);
    }

    #[test]
    fn update_roundtrip() {
        let u = DnsMessage::update(
            1,
            ResourceRecord {
                name: "mh.stanford.edu".into(),
                rtype: TYPE_TA,
                ttl: 300,
                addr: ip("36.186.0.99"),
            },
        );
        let p = DnsMessage::parse(&u.emit()).unwrap();
        assert_eq!(p.opcode, Opcode::Update);
        assert_eq!(p, u);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DnsMessage::parse(&[0u8; 4]).is_err());
        let mut msg = DnsMessage::query(1, "a.b", TYPE_A).emit();
        msg[2] = 0x40; // opcode 8: unknown
        assert!(DnsMessage::parse(&msg).is_err());
    }

    fn dns_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(41);
        let lan = w.add_segment(LinkConfig::lan());
        let server = w.add_host(HostConfig::conventional("ns"));
        let client = w.add_host(HostConfig::conventional("client"));
        w.attach(server, lan, Some("10.0.0.53/24"));
        w.attach(client, lan, Some("10.0.0.2/24"));
        udp::install(w.host_mut(server));
        udp::install(w.host_mut(client));
        w.host_mut(server).add_app(Box::new(
            DnsServer::new().with_a("mh.stanford.edu", ip("171.64.15.9")),
        ));
        w.poll_soon(server);
        (w, server, client)
    }

    #[test]
    fn server_answers_a_queries() {
        let (mut w, _server, client) = dns_world();
        let app = w
            .host_mut(client)
            .add_app(Box::new(DnsLookup::new(ip("10.0.0.53"), "mh.stanford.edu")));
        w.poll_soon(client);
        w.run_for(SimDuration::from_secs(1));
        let lookup = w.host_mut(client).app_as::<DnsLookup>(app).unwrap();
        let res = lookup.result.clone().expect("answered");
        assert_eq!(res.a, Some(ip("171.64.15.9")));
        assert_eq!(res.ta, None, "no TA while the mobile is home");
    }

    #[test]
    fn update_then_query_returns_ta_until_expiry() {
        let (mut w, server, client) = dns_world();
        // Push a TA update by hand.
        let sock = udp::bind(w.host_mut(client), None, 0);
        let up = DnsMessage::update(
            9,
            ResourceRecord {
                name: "mh.stanford.edu".into(),
                rtype: TYPE_TA,
                ttl: 5,
                addr: ip("36.186.0.99"),
            },
        );
        w.host_do(client, |h, ctx| {
            udp::send_to(h, ctx, sock, (ip("10.0.0.53"), DNS_PORT), up.emit());
        });
        w.run_for(SimDuration::from_secs(1));
        {
            let srv = w.host_mut(server).app_as::<DnsServer>(0).unwrap();
            assert_eq!(srv.updates_accepted, 1);
            assert_eq!(
                srv.ta_record("mh.stanford.edu").map(|t| t.0),
                Some(ip("36.186.0.99"))
            );
        }
        // Query sees both records.
        let app = w
            .host_mut(client)
            .add_app(Box::new(DnsLookup::new(ip("10.0.0.53"), "mh.stanford.edu")));
        w.poll_soon(client);
        w.run_for(SimDuration::from_secs(1));
        let res = w
            .host_mut(client)
            .app_as::<DnsLookup>(app)
            .unwrap()
            .result
            .clone()
            .unwrap();
        assert_eq!(res.ta, Some(ip("36.186.0.99")));
        // After the 5-second TTL the TA record is gone.
        w.run_for(SimDuration::from_secs(6));
        let app2 = w
            .host_mut(client)
            .add_app(Box::new(DnsLookup::new(ip("10.0.0.53"), "mh.stanford.edu")));
        w.poll_soon(client);
        w.run_for(SimDuration::from_secs(1));
        let res2 = w
            .host_mut(client)
            .app_as::<DnsLookup>(app2)
            .unwrap()
            .result
            .clone()
            .unwrap();
        assert_eq!(res2.a, Some(ip("171.64.15.9")), "A record persists");
        assert_eq!(res2.ta, None, "TA record expired");
    }

    #[test]
    fn unknown_name_yields_empty_answer() {
        let (mut w, _server, client) = dns_world();
        let app = w
            .host_mut(client)
            .add_app(Box::new(DnsLookup::new(ip("10.0.0.53"), "nosuch.example")));
        w.poll_soon(client);
        w.run_for(SimDuration::from_secs(1));
        let res = w
            .host_mut(client)
            .app_as::<DnsLookup>(app)
            .unwrap()
            .result
            .clone()
            .expect("negative answer still arrives");
        assert_eq!(res.a, None);
        assert_eq!(res.ta, None);
    }
}
