//! The 4x4 taxonomy (Figure 10).
//!
//! Four ways a mobile host sends (§4), four ways a correspondent host sends
//! to it (§5), and the classification of all sixteen combinations (§6):
//! seven useful, three valid-but-unused, six broken.

use std::fmt;

/// How the mobile host sends outgoing packets (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OutMode {
    /// Out-IE: Outgoing, Indirect, Encapsulated — reverse-tunnel via the
    /// home agent. Conservative mode; always works.
    IE,
    /// Out-DE: Outgoing, Direct, Encapsulated — tunnel straight to a
    /// decapsulation-capable correspondent.
    DE,
    /// Out-DH: Outgoing, Direct, Home address — plain packets with the home
    /// source address. Fails through source-address-filtering routers.
    DH,
    /// Out-DT: Outgoing, Direct, Temporary address — plain packets from the
    /// care-of address. No Mobile IP at all.
    DT,
}

/// How the correspondent host sends incoming packets (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InMode {
    /// In-IE: Incoming, Indirect, Encapsulated — naïve packets to the home
    /// address, captured and tunnelled by the home agent.
    IE,
    /// In-DE: Incoming, Direct, Encapsulated — a mobile-aware correspondent
    /// tunnels straight to the care-of address.
    DE,
    /// In-DH: Incoming, Direct, Home address — single link-layer hop on a
    /// shared segment, IP destination untouched.
    DH,
    /// In-DT: Incoming, Direct, Temporary address — plain packets to the
    /// care-of address.
    DT,
}

impl OutMode {
    /// All four outgoing modes, most to least conservative.
    pub const ALL: [OutMode; 4] = [OutMode::IE, OutMode::DE, OutMode::DH, OutMode::DT];

    /// Demote one step toward the conservative end (§7.1.1: "at each stage
    /// being prepared to return to the conservative method"). `IE` is the
    /// floor. `DT` does not demote — forgoing Mobile IP is an application
    /// decision, not a delivery fallback.
    pub fn demote(self) -> OutMode {
        match self {
            OutMode::DH => OutMode::DE,
            OutMode::DE => OutMode::IE,
            other => other,
        }
    }

    /// Promote one step toward the aggressive end (upgrade probing).
    pub fn promote(self) -> OutMode {
        match self {
            OutMode::IE => OutMode::DE,
            OutMode::DE => OutMode::DH,
            other => other,
        }
    }

    /// Does this mode put an encapsulation header on the wire?
    pub fn encapsulated(self) -> bool {
        matches!(self, OutMode::IE | OutMode::DE)
    }

    /// Does this mode deliver via the home agent?
    pub fn indirect(self) -> bool {
        self == OutMode::IE
    }

    /// Does this mode preserve the home address as the endpoint?
    pub fn location_transparent(self) -> bool {
        self != OutMode::DT
    }

    /// Position in [`OutMode::ALL`]: a dense 0..4 code for bit-packed
    /// storage (the method cache keeps modes in 2-bit fields and failure
    /// history as a 4-bit mask).
    pub const fn index(self) -> usize {
        match self {
            OutMode::IE => 0,
            OutMode::DE => 1,
            OutMode::DH => 2,
            OutMode::DT => 3,
        }
    }

    /// Inverse of [`OutMode::index`]. Only the low two bits are read, so
    /// any `u8`-ranged value maps onto a valid mode.
    pub const fn from_index(i: usize) -> OutMode {
        match i & 3 {
            0 => OutMode::IE,
            1 => OutMode::DE,
            2 => OutMode::DH,
            _ => OutMode::DT,
        }
    }

    /// The single-bit mask for this mode (`1 << index`), for 4-bit
    /// mode-set fields.
    pub const fn bit(self) -> u8 {
        1 << self.index()
    }
}

impl InMode {
    /// All four incoming modes, most to least conservative.
    pub const ALL: [InMode; 4] = [InMode::IE, InMode::DE, InMode::DH, InMode::DT];

    /// Does this mode put an encapsulation header on the wire?
    pub fn encapsulated(self) -> bool {
        matches!(self, InMode::IE | InMode::DE)
    }

    /// Does this mode deliver via the home agent?
    pub fn indirect(self) -> bool {
        self == InMode::IE
    }

    /// Does this mode keep the home address as the endpoint?
    pub fn location_transparent(self) -> bool {
        self != InMode::DT
    }
}

impl serde::Serialize for OutMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Serialize for InMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl fmt::Display for OutMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OutMode::IE => "Out-IE",
            OutMode::DE => "Out-DE",
            OutMode::DH => "Out-DH",
            OutMode::DT => "Out-DT",
        };
        f.write_str(s)
    }
}

impl fmt::Display for InMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InMode::IE => "In-IE",
            InMode::DE => "In-DE",
            InMode::DH => "In-DH",
            InMode::DT => "In-DT",
        };
        f.write_str(s)
    }
}

/// One cell of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combination {
    /// How the correspondent sends to the mobile (the row).
    pub incoming: InMode,
    /// How the mobile sends back (the column).
    pub outgoing: OutMode,
}

impl Combination {
    /// The cell at (incoming, outgoing).
    pub fn new(incoming: InMode, outgoing: OutMode) -> Combination {
        Combination { incoming, outgoing }
    }

    /// All sixteen cells, row-major as in the figure.
    pub fn all() -> impl Iterator<Item = Combination> {
        InMode::ALL.into_iter().flat_map(|i| {
            OutMode::ALL
                .into_iter()
                .map(move |o| Combination::new(i, o))
        })
    }
}

impl serde::Serialize for Combination {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl fmt::Display for Combination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.incoming, self.outgoing)
    }
}

/// Figure 10's shading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Unshaded: a combination hosts would actually use.
    Useful,
    /// Light grey: "would work correctly with current protocols such as
    /// TCP, but for other reasons would not normally be used."
    ValidButUnused,
    /// Dark grey: "would not work correctly with current protocols such as
    /// TCP" — mixing temporary-address endpoints with permanent-address
    /// endpoints (§6.5).
    Broken,
}

impl CellClass {
    /// Would a TCP conversation complete in this mode (ignoring style)?
    pub fn works(self) -> bool {
        self != CellClass::Broken
    }
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellClass::Useful => "useful",
            CellClass::ValidButUnused => "valid-but-unused",
            CellClass::Broken => "broken",
        };
        f.write_str(s)
    }
}

/// The paper's classification of each (incoming, outgoing) combination
/// (Figure 10 and §6.5).
pub fn classify(c: Combination) -> CellClass {
    use CellClass::*;
    use InMode as I;
    use OutMode as O;
    match (c.incoming, c.outgoing) {
        // §6.5: mixing the temporary address as an endpoint in one direction
        // with the permanent address in the other confuses the transport —
        // "the use of the temporary care-of address for communication in
        // one direction effectively mandates the use of the same address
        // for the corresponding return communication."
        (I::DT, O::DT) => Useful,
        (I::DT, _) | (_, O::DT) => Broken,
        // Row A: conventional correspondent.
        (I::IE, O::IE) | (I::IE, O::DE) | (I::IE, O::DH) => Useful,
        // Row B: mobile-aware correspondent. In-DE/Out-IE is "also valid,
        // but unlikely to be used" (§6.2).
        (I::DE, O::IE) => ValidButUnused,
        (I::DE, O::DE) | (I::DE, O::DH) => Useful,
        // Row C: same segment. The first two "are also valid, but are
        // unlikely to be used" (§6.3).
        (I::DH, O::IE) | (I::DH, O::DE) => ValidButUnused,
        (I::DH, O::DH) => Useful,
    }
}

/// The environment a conversation runs in — the three factors of the
/// abstract: optimization goals are the caller's, these are the constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Environment {
    /// Does some router between MH and CH drop packets whose source address
    /// looks wrong (ingress or egress source filtering)?
    pub source_filtering_on_path: bool,
    /// Can the correspondent decapsulate IP-in-IP (§6.1: "recent versions
    /// of Linux have this capability built-in")?
    pub ch_decap_capable: bool,
    /// Is the correspondent fully mobile-aware (binding cache, can learn
    /// care-of addresses)?
    pub ch_mobile_aware: bool,
    /// Are MH and CH attached to the same link-layer segment?
    pub same_segment: bool,
    /// Does the conversation need to survive the MH moving?
    pub needs_mobility: bool,
}

/// The best combination available in `env`, following the paper's guidance
/// (§6): prefer the most efficient mode that is deliverable and meets the
/// mobility requirement.
pub fn best_combination(env: Environment) -> Combination {
    if !env.needs_mobility {
        return Combination::new(InMode::DT, OutMode::DT);
    }
    if env.same_segment {
        return Combination::new(InMode::DH, OutMode::DH);
    }
    let incoming = if env.ch_mobile_aware {
        InMode::DE
    } else {
        InMode::IE
    };
    // A fully mobile-aware correspondent can necessarily decapsulate (it
    // must, to use In-DE at all).
    let ch_decap = env.ch_decap_capable || env.ch_mobile_aware;
    let outgoing = if !env.source_filtering_on_path {
        OutMode::DH
    } else if ch_decap {
        OutMode::DE
    } else {
        OutMode::IE
    };
    Combination::new(incoming, outgoing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cells_partition_as_in_figure_10() {
        let mut useful = 0;
        let mut unused = 0;
        let mut broken = 0;
        for c in Combination::all() {
            match classify(c) {
                CellClass::Useful => useful += 1,
                CellClass::ValidButUnused => unused += 1,
                CellClass::Broken => broken += 1,
            }
        }
        // "Of the sixteen possible routing choices that we identify, we
        // describe the seven that are most useful" (abstract).
        assert_eq!(useful, 7);
        assert_eq!(unused, 3);
        assert_eq!(broken, 6);
    }

    #[test]
    fn the_seven_useful_cells_match_the_paper() {
        use InMode as I;
        use OutMode as O;
        let useful: Vec<Combination> = Combination::all()
            .filter(|&c| classify(c) == CellClass::Useful)
            .collect();
        let expected = [
            (I::IE, O::IE),
            (I::IE, O::DE),
            (I::IE, O::DH),
            (I::DE, O::DE),
            (I::DE, O::DH),
            (I::DH, O::DH),
            (I::DT, O::DT),
        ];
        assert_eq!(useful.len(), expected.len());
        for (i, o) in expected {
            assert!(
                useful.contains(&Combination::new(i, o)),
                "missing {i:?}/{o:?}"
            );
        }
    }

    #[test]
    fn fourth_row_and_column_break_except_corner() {
        for o in OutMode::ALL {
            let class = classify(Combination::new(InMode::DT, o));
            if o == OutMode::DT {
                assert_eq!(class, CellClass::Useful);
            } else {
                assert_eq!(class, CellClass::Broken);
            }
        }
        for i in InMode::ALL {
            let class = classify(Combination::new(i, OutMode::DT));
            if i == InMode::DT {
                assert_eq!(class, CellClass::Useful);
            } else {
                assert_eq!(class, CellClass::Broken);
            }
        }
    }

    #[test]
    fn demote_promote_ladder() {
        assert_eq!(OutMode::DH.demote(), OutMode::DE);
        assert_eq!(OutMode::DE.demote(), OutMode::IE);
        assert_eq!(OutMode::IE.demote(), OutMode::IE);
        assert_eq!(OutMode::DT.demote(), OutMode::DT);
        assert_eq!(OutMode::IE.promote(), OutMode::DE);
        assert_eq!(OutMode::DE.promote(), OutMode::DH);
        assert_eq!(OutMode::DH.promote(), OutMode::DH);
        // Demote then promote round-trips in the middle of the ladder.
        assert_eq!(OutMode::DH.demote().promote(), OutMode::DH);
    }

    #[test]
    fn index_round_trips_and_bits_are_distinct() {
        let mut seen = 0u8;
        for (i, m) in OutMode::ALL.into_iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(OutMode::from_index(m.index()), m);
            assert_eq!(m.bit(), 1 << i);
            seen |= m.bit();
        }
        assert_eq!(seen, 0b1111);
    }

    #[test]
    fn mode_properties() {
        assert!(OutMode::IE.encapsulated() && OutMode::IE.indirect());
        assert!(OutMode::DE.encapsulated() && !OutMode::DE.indirect());
        assert!(!OutMode::DH.encapsulated());
        assert!(!OutMode::DT.location_transparent());
        assert!(InMode::IE.indirect() && InMode::IE.encapsulated());
        assert!(InMode::DH.location_transparent() && !InMode::DH.encapsulated());
    }

    #[test]
    fn best_combination_follows_the_grid_rows() {
        // Row D: no mobility needed → DT/DT regardless of anything else.
        let c = best_combination(Environment {
            source_filtering_on_path: true,
            ch_decap_capable: false,
            ch_mobile_aware: false,
            same_segment: false,
            needs_mobility: false,
        });
        assert_eq!(c, Combination::new(InMode::DT, OutMode::DT));

        // Row A, conservative: filtered path, dumb correspondent → IE/IE.
        let c = best_combination(Environment {
            source_filtering_on_path: true,
            ch_decap_capable: false,
            ch_mobile_aware: false,
            same_segment: false,
            needs_mobility: true,
        });
        assert_eq!(c, Combination::new(InMode::IE, OutMode::IE));

        // Row A with decap-capable CH: IE/DE.
        let c = best_combination(Environment {
            source_filtering_on_path: true,
            ch_decap_capable: true,
            ch_mobile_aware: false,
            same_segment: false,
            needs_mobility: true,
        });
        assert_eq!(c, Combination::new(InMode::IE, OutMode::DE));

        // Open network, dumb CH: IE/DH.
        let c = best_combination(Environment {
            source_filtering_on_path: false,
            ch_decap_capable: false,
            ch_mobile_aware: false,
            same_segment: false,
            needs_mobility: true,
        });
        assert_eq!(c, Combination::new(InMode::IE, OutMode::DH));

        // Mobile-aware CH, open network: DE/DH.
        let c = best_combination(Environment {
            source_filtering_on_path: false,
            ch_decap_capable: true,
            ch_mobile_aware: true,
            same_segment: false,
            needs_mobility: true,
        });
        assert_eq!(c, Combination::new(InMode::DE, OutMode::DH));

        // Same segment: DH/DH.
        let c = best_combination(Environment {
            source_filtering_on_path: false,
            ch_decap_capable: true,
            ch_mobile_aware: true,
            same_segment: true,
            needs_mobility: true,
        });
        assert_eq!(c, Combination::new(InMode::DH, OutMode::DH));
    }

    #[test]
    fn every_best_combination_is_classified_useful() {
        for sf in [false, true] {
            for dc in [false, true] {
                for ma in [false, true] {
                    for ss in [false, true] {
                        for nm in [false, true] {
                            let env = Environment {
                                source_filtering_on_path: sf,
                                ch_decap_capable: dc,
                                ch_mobile_aware: ma,
                                same_segment: ss,
                                needs_mobility: nm,
                            };
                            let c = best_combination(env);
                            assert_eq!(
                                classify(c),
                                CellClass::Useful,
                                "best_combination({env:?}) = {c} not useful"
                            );
                        }
                    }
                }
            }
        }
    }
}
