//! Minimal dynamic address assignment for visited networks.
//!
//! §2: the guest connection "may be obtained by connecting to an Ethernet
//! segment and having an address assigned automatically by DHCP". This is
//! a deliberately small DHCP-shaped protocol (one request, one reply — the
//! DISCOVER/OFFER/REQUEST/ACK dance adds nothing to the paper's claims):
//!
//! * client broadcasts a lease request from `0.0.0.0` (UDP 68 → 67);
//! * server answers with an address, prefix length, and default gateway;
//! * the client configures its interface, installs the default route, and
//!   — when a [`MobileHost`] hook is present — switches it to `Away` and
//!   triggers registration with the home agent.

use std::any::Any;
use std::collections::HashMap;

use netsim::device::nic::IfaceAddr;
use netsim::wire::ParseError;
use netsim::{
    App, Host, IfaceNo, Ipv4Addr, Ipv4Cidr, NetCtx, NodeId, SegmentId, SimDuration, SimTime,
    TimerHandle, World,
};
use transport::udp;

use crate::mobile_host::{Location, MobileHost, TIMER_KICK};

/// Server port.
pub const DHCP_SERVER_PORT: u16 = 67;
/// Client port.
pub const DHCP_CLIENT_PORT: u16 = 68;

/// A lease request (op 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRequest {
    /// Client-chosen transaction id matching requests to replies.
    pub xid: u32,
}

/// A granted lease (op 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Client-chosen transaction id matching requests to replies.
    pub xid: u32,
    /// The leased address.
    pub addr: Ipv4Addr,
    /// On-link prefix length for the leased address.
    pub prefix_len: u8,
    /// Default gateway for the visited network.
    pub gateway: Ipv4Addr,
}

impl LeaseRequest {
    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut b = vec![1u8];
        b.extend_from_slice(&self.xid.to_be_bytes());
        b
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<LeaseRequest, ParseError> {
        if data.len() < 5 {
            return Err(ParseError::Truncated {
                needed: 5,
                got: data.len(),
            });
        }
        if data[0] != 1 {
            return Err(ParseError::BadField {
                what: "dhcp op",
                value: u64::from(data[0]),
            });
        }
        Ok(LeaseRequest {
            xid: u32::from_be_bytes([data[1], data[2], data[3], data[4]]),
        })
    }
}

impl Lease {
    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut b = vec![2u8];
        b.extend_from_slice(&self.xid.to_be_bytes());
        b.extend_from_slice(&self.addr.octets());
        b.push(self.prefix_len);
        b.extend_from_slice(&self.gateway.octets());
        b
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<Lease, ParseError> {
        if data.len() < 14 {
            return Err(ParseError::Truncated {
                needed: 14,
                got: data.len(),
            });
        }
        if data[0] != 2 {
            return Err(ParseError::BadField {
                what: "dhcp op",
                value: u64::from(data[0]),
            });
        }
        Ok(Lease {
            xid: u32::from_be_bytes([data[1], data[2], data[3], data[4]]),
            addr: Ipv4Addr::from_octets([data[5], data[6], data[7], data[8]]),
            prefix_len: data[9],
            gateway: Ipv4Addr::from_octets([data[10], data[11], data[12], data[13]]),
        })
    }

    /// The lease as an interface address (address + on-link prefix).
    pub fn iface_addr(&self) -> IfaceAddr {
        IfaceAddr {
            addr: self.addr,
            prefix: Ipv4Cidr::new(self.addr, self.prefix_len),
        }
    }
}

/// The address-pool server, run as an [`App`] on some host of the visited
/// segment (often its router's companion box).
pub struct DhcpServer {
    pool: Ipv4Cidr,
    gateway: Ipv4Addr,
    /// Next host number to hand out.
    next: u32,
    sock: Option<udp::UdpHandle>,
    granted: HashMap<u32, Lease>,
    /// Distinct leases handed out.
    pub leases_granted: u64,
}

impl DhcpServer {
    /// Serve addresses `pool.nth(first)…` with the given default gateway.
    pub fn new(pool: Ipv4Cidr, gateway: Ipv4Addr, first: u32) -> DhcpServer {
        DhcpServer {
            pool,
            gateway,
            next: first,
            sock: None,
            granted: HashMap::new(),
            leases_granted: 0,
        }
    }
}

impl App for DhcpServer {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, None, DHCP_SERVER_PORT));
        while let Some(got) = udp::recv(host, sock) {
            let Ok(req) = LeaseRequest::parse(&got.payload) else {
                continue;
            };
            // Same xid re-requests get the same lease (retransmissions).
            let lease = match self.granted.get(&req.xid) {
                Some(&l) => l,
                None => {
                    let addr = self.pool.nth(self.next);
                    self.next += 1;
                    self.leases_granted += 1;
                    let l = Lease {
                        xid: req.xid,
                        addr,
                        prefix_len: self.pool.prefix_len(),
                        gateway: self.gateway,
                    };
                    self.granted.insert(req.xid, l);
                    l
                }
            };
            // The client has no address yet: answer to the broadcast.
            udp::send_to(
                host,
                ctx,
                sock,
                (Ipv4Addr::BROADCAST, DHCP_CLIENT_PORT),
                lease.emit(),
            );
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Client state, run as an [`App`] on the (mobile) host. When the lease
/// arrives it configures the interface and routes, flips the mobility hook
/// to `Away`, and kicks off home-agent registration.
pub struct DhcpClient {
    iface: IfaceNo,
    xid: u32,
    sock: Option<udp::UdpHandle>,
    next_try: SimTime,
    /// The pending retransmit wakeup; cancelled once the lease completes
    /// so the exchange leaves nothing ticking in the scheduler.
    retry_timer: Option<TimerHandle>,
    /// Requests transmitted so far.
    pub tries: u32,
    /// The granted lease, once the exchange completes.
    pub lease: Option<Lease>,
}

impl DhcpClient {
    /// A client that will configure `iface` once a lease arrives.
    pub fn new(iface: IfaceNo, xid: u32) -> DhcpClient {
        DhcpClient {
            iface,
            xid,
            sock: None,
            next_try: SimTime::ZERO,
            retry_timer: None,
            tries: 0,
            lease: None,
        }
    }
}

impl App for DhcpClient {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        if self.lease.is_some() {
            return;
        }
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, None, DHCP_CLIENT_PORT));
        // Completed?
        while let Some(got) = udp::recv(host, sock) {
            let Ok(lease) = Lease::parse(&got.payload) else {
                continue;
            };
            if lease.xid != self.xid {
                continue;
            }
            // Configure interface and default route.
            host.set_iface_addr(self.iface, Some(lease.iface_addr()));
            host.clear_routes();
            host.add_route(Ipv4Cidr::default_route(), self.iface, Some(lease.gateway));
            // Tell the mobility layer and start registration.
            let mobile = match host.hook_as::<MobileHost>() {
                Some(mh) => {
                    mh.note_moved(Location::Away {
                        care_of: lease.addr,
                    });
                    true
                }
                None => false,
            };
            if mobile {
                host.request_hook_timer(ctx, SimDuration::ZERO, TIMER_KICK);
            }
            // The exchange is complete: the pending retransmit wakeup is
            // dead weight in the scheduler.
            if let Some(h) = self.retry_timer.take() {
                ctx.cancel_timer(h);
            }
            self.lease = Some(lease);
            return;
        }
        // (Re)transmit the request.
        if ctx.now >= self.next_try {
            let req = LeaseRequest { xid: self.xid };
            udp::send_to(
                host,
                ctx,
                sock,
                (Ipv4Addr::BROADCAST, DHCP_SERVER_PORT),
                req.emit(),
            );
            self.tries += 1;
            self.next_try = ctx.now + SimDuration::from_secs(1);
            self.retry_timer = Some(host.request_wakeup(ctx, SimDuration::from_secs(1)));
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Plug the mobile host into `segment` with no pre-assigned address and
/// acquire one via DHCP. The caller should run the world for a moment and
/// may then check the hook's registration state. Returns the app index of
/// the [`DhcpClient`].
pub fn move_to_with_dhcp(world: &mut World, node: NodeId, segment: SegmentId, xid: u32) -> usize {
    let phys = {
        let host = world.host_mut(node);
        host.hook_as::<MobileHost>()
            .map(|mh| mh.config().phys_iface)
            .unwrap_or(0)
    };
    world.reattach(node, phys, segment);
    let host = world.host_mut(node);
    host.set_iface_addr(phys, None);
    host.clear_routes();
    let app = host.add_app(Box::new(DhcpClient::new(phys, xid)));
    world.poll_soon(node);
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home_agent::{HomeAgent, HomeAgentConfig};
    use crate::mobile_host::MobileHostConfig;
    use netsim::wire::icmp::IcmpMessage;
    use netsim::{HostConfig, LinkConfig, RouterConfig};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn wire_roundtrips() {
        let r = LeaseRequest { xid: 0xabcd_1234 };
        assert_eq!(LeaseRequest::parse(&r.emit()).unwrap(), r);
        let l = Lease {
            xid: 0xabcd_1234,
            addr: ip("36.186.0.20"),
            prefix_len: 24,
            gateway: ip("36.186.0.254"),
        };
        assert_eq!(Lease::parse(&l.emit()).unwrap(), l);
        assert!(Lease::parse(&r.emit()).is_err());
        assert!(LeaseRequest::parse(&[]).is_err());
    }

    #[test]
    fn plain_host_acquires_address_and_routes() {
        let mut w = World::new(51);
        let lan = w.add_segment(LinkConfig::lan());
        let srv = w.add_host(HostConfig::conventional("dhcp-srv"));
        let client = w.add_host(HostConfig::conventional("laptop"));
        w.attach(srv, lan, Some("36.186.0.254/24"));
        w.attach(client, lan, None); // no address yet
        udp::install(w.host_mut(srv));
        udp::install(w.host_mut(client));
        w.host_mut(srv).add_app(Box::new(DhcpServer::new(
            "36.186.0.0/24".parse().unwrap(),
            ip("36.186.0.254"),
            20,
        )));
        w.poll_soon(srv);
        let app = w.host_mut(client).add_app(Box::new(DhcpClient::new(0, 77)));
        w.poll_soon(client);
        w.run_for(SimDuration::from_secs(3));

        let lease = w
            .host_mut(client)
            .app_as::<DhcpClient>(app)
            .unwrap()
            .lease
            .expect("leased");
        assert_eq!(lease.addr, ip("36.186.0.20"));
        assert_eq!(w.host(client).addrs(), vec![ip("36.186.0.20")]);
        // The address actually works.
        w.host_do(client, |h, ctx| {
            h.send_ping(ctx, ip("36.186.0.20"), ip("36.186.0.254"), 1)
        });
        w.run_for(SimDuration::from_secs(1));
        assert!(w
            .host(client)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { .. })));
    }

    #[test]
    fn distinct_clients_get_distinct_addresses() {
        let mut w = World::new(52);
        let lan = w.add_segment(LinkConfig::lan());
        let srv = w.add_host(HostConfig::conventional("dhcp-srv"));
        let c1 = w.add_host(HostConfig::conventional("c1"));
        let c2 = w.add_host(HostConfig::conventional("c2"));
        w.attach(srv, lan, Some("36.186.0.254/24"));
        w.attach(c1, lan, None);
        w.attach(c2, lan, None);
        for n in [srv, c1, c2] {
            udp::install(w.host_mut(n));
        }
        w.host_mut(srv).add_app(Box::new(DhcpServer::new(
            "36.186.0.0/24".parse().unwrap(),
            ip("36.186.0.254"),
            20,
        )));
        w.poll_soon(srv);
        let a1 = w.host_mut(c1).add_app(Box::new(DhcpClient::new(0, 1)));
        let a2 = w.host_mut(c2).add_app(Box::new(DhcpClient::new(0, 2)));
        w.poll_soon(c1);
        w.poll_soon(c2);
        w.run_for(SimDuration::from_secs(3));
        let l1 = w
            .host_mut(c1)
            .app_as::<DhcpClient>(a1)
            .unwrap()
            .lease
            .unwrap();
        let l2 = w
            .host_mut(c2)
            .app_as::<DhcpClient>(a2)
            .unwrap()
            .lease
            .unwrap();
        assert_ne!(l1.addr, l2.addr);
        assert_eq!(
            w.host_mut(srv)
                .app_as::<DhcpServer>(0)
                .unwrap()
                .leases_granted,
            2
        );
    }

    #[test]
    fn mobile_host_moves_via_dhcp_and_registers() {
        // home — backbone — visited with a DHCP server; full §2 sequence.
        let mut w = World::new(53);
        let home = w.add_segment(LinkConfig::lan());
        let visited = w.add_segment(LinkConfig::lan());
        let backbone = w.add_segment(LinkConfig::wan(10));
        let ha = w.add_host(HostConfig::agent("ha"));
        let mh = w.add_host(HostConfig::conventional("mh"));
        let dhcp = w.add_host(HostConfig::conventional("dhcp"));
        let rh = w.add_router(RouterConfig::named("rh"));
        let rv = w.add_router(RouterConfig::named("rv"));
        let ha_if = w.attach(ha, home, Some("171.64.15.1/24"));
        w.attach(mh, home, Some("171.64.15.9/24"));
        w.attach(dhcp, visited, Some("36.186.0.2/24"));
        w.attach(rh, home, Some("171.64.15.254/24"));
        w.attach(rh, backbone, Some("192.168.0.1/30"));
        w.attach(rv, backbone, Some("192.168.0.2/30"));
        w.attach(rv, visited, Some("36.186.0.254/24"));
        w.compute_routes();
        HomeAgent::install(
            &mut w,
            ha,
            HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if),
        );
        MobileHost::install(
            &mut w,
            mh,
            MobileHostConfig::new("171.64.15.9/24", ip("171.64.15.1")),
        );
        udp::install(w.host_mut(mh));
        udp::install(w.host_mut(dhcp));
        w.host_mut(dhcp).add_app(Box::new(DhcpServer::new(
            "36.186.0.0/24".parse().unwrap(),
            ip("36.186.0.254"),
            100,
        )));
        w.poll_soon(dhcp);

        move_to_with_dhcp(&mut w, mh, visited, 0xbeef);
        w.run_for(SimDuration::from_secs(5));

        let hook = w.host_mut(mh).hook_as::<MobileHost>().unwrap();
        assert_eq!(hook.care_of(), Some(ip("36.186.0.100")));
        assert!(hook.is_registered(), "registered via DHCP-acquired address");
    }
}
