//! The mobility policy: which outgoing mode to use for each correspondent.
//!
//! Implements the §7.1 machinery:
//!
//! * a **per-correspondent method cache** — "the mobile host keeps a cache
//!   of the currently selected delivery method associated with each target
//!   IP address … and allows it to build up a history, for each
//!   correspondent host, of which communication methods have proven to be
//!   successful and which have not";
//! * **probing strategies** — optimistic (start at Out-DH, fall back) and
//!   pessimistic (start at Out-IE, tentatively upgrade), both of which the
//!   paper describes and finds individually wasteful;
//! * **user rules** — "specify rules stating which addresses Mobile IP
//!   should begin using in an optimistic mode and which … in a pessimistic
//!   mode … specified similarly to the way routing table entries are
//!   currently specified, as an address and a mask value" (§7.1.2);
//! * **port heuristics** — "connections to port 80 are likely to be HTTP
//!   requests and can safely use Out-DT. Similarly, UDP packets addressed
//!   to UDP port 53 are likely to be DNS requests" (§7.1.1);
//! * **privacy mode** — "mobile users may not wish to reveal their current
//!   location to the correspondent host … sending all outgoing packets
//!   indirectly via the home agent may be the method the user wants" (§4);
//! * **failure detection via transmission feedback** — the §7.1.2 proposal
//!   ("we have not yet implemented this"), implemented here: repeated
//!   retransmission signals demote the method one step toward Out-IE.
//!
//! # Production-scale storage
//!
//! A deployed mobile host talks to an open-ended correspondent population,
//! so the method cache is built like the other hot lookup structures in
//! this repository (`netsim::route`, the NIC ARP cache) rather than as a
//! map of boxed entries:
//!
//! * **Compact SoA slab** — each correspondent costs a handful of packed
//!   words (mode, strategy, and the failed-mode history are bit-fields in
//!   one `u32`; the "history of which communication methods have proven …
//!   not" successful is a 4-bit mask, since there are only four out-modes).
//!   Steady state is ~44 bytes per correspondent including the hash index,
//!   measured by `netsim::profile::live_bytes()`.
//! * **Single-probe hash index** — an open-addressing table at ≤ 50 % load
//!   maps correspondent → slab slot in one expected probe; deletions use
//!   backward-shift so no tombstones accumulate.
//! * **Real eviction** — at [`PolicyConfig::cache_cap`] the *least
//!   recently used* entry is evicted (intrusive doubly-linked list, exact
//!   recency order, no timestamps and therefore no ties), so a flash crowd
//!   of new correspondents displaces only the coldest history instead of
//!   resetting the whole cache. An optional [`PolicyConfig::cache_ttl`]
//!   additionally expires entries by sim-time age, lazily, on next touch.
//!   Both leave [`crate::audit::AuditEvent::Evicted`] /
//!   [`crate::audit::AuditEvent::Expired`] marks in the audit trail and
//!   bump the `policy_cache_*` counters in `netsim::profile`.
//! * **Compiled rules** — the §7.1.2 first-match rule list is compiled
//!   into per-prefix-length buckets (the `netsim::route` layout) keyed by
//!   `(len, network)` holding the *lowest* matching rule index, so lookup
//!   is O(#populated prefix lengths) while preserving first-match-wins
//!   exactly. A capped per-destination strategy cache short-circuits
//!   repeat decisions and is invalidated whenever the config changes
//!   (detected by fingerprint, so even direct `policy.config = …`
//!   replacement recompiles). [`Policy::use_dt_for_port`] answers from a
//!   64 Ki-bit port bitset instead of scanning the port list.

use std::cell::RefCell;
use std::collections::HashMap;

use netsim::profile::{self, Counter};
use netsim::{Ipv4Addr, Ipv4Cidr, SimDuration, SimTime};

use crate::audit::{AuditEvent, AuditTrail, DecisionReason};
use crate::modes::OutMode;

/// How to pick the first home-address delivery method for a correspondent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Start with Out-DH; demote on failure signals.
    Optimistic,
    /// Start with Out-IE; tentatively promote after sustained success.
    Pessimistic,
    /// Always use exactly this mode (no probing).
    Fixed(OutMode),
}

impl Strategy {
    fn initial(self) -> OutMode {
        match self {
            Strategy::Optimistic => OutMode::DH,
            Strategy::Pessimistic => OutMode::IE,
            Strategy::Fixed(m) => m,
        }
    }

    fn probes(self) -> bool {
        !matches!(self, Strategy::Fixed(_))
    }

    /// 3-bit code used by the packed slab word.
    fn code(self) -> u32 {
        match self {
            Strategy::Optimistic => 0,
            Strategy::Pessimistic => 1,
            Strategy::Fixed(m) => 2 + m.index() as u32,
        }
    }

    fn from_code(code: u32) -> Strategy {
        match code {
            0 => Strategy::Optimistic,
            1 => Strategy::Pessimistic,
            n => Strategy::Fixed(OutMode::from_index((n - 2) as usize)),
        }
    }
}

/// Static policy configuration.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// Strategy for correspondents no rule covers.
    pub default_strategy: Strategy,
    /// Address/mask rules, first match wins (§7.1.2). E.g. "the entire home
    /// network is a region where Out-IE should always be used" (resources
    /// behind the home firewall).
    pub rules: Vec<(Ipv4Cidr, Strategy)>,
    /// Destination ports for which plain Out-DT is safe (§7.1.1).
    pub dt_ports: Vec<u16>,
    /// Force Out-IE for everything, hiding the mobile's location (§4).
    pub privacy: bool,
    /// Act on the §7.1.2 transmission-feedback signal.
    pub feedback_demotion: bool,
    /// Failure signals (retransmissions, either direction) before demoting.
    pub demote_threshold: u32,
    /// Success signals before a pessimistic upgrade probe.
    pub promote_after: u32,
    /// Method-cache entries kept before eviction begins. A mobile that
    /// talks to more correspondents than this (a flash crowd) evicts its
    /// *least recently used* history rather than growing without bound —
    /// the paper's framing of the cache as an LRU-ish scarce resource,
    /// taken literally. Eviction order is exact recency, so behaviour is
    /// deterministic at any scale. `0` disables the cap entirely.
    pub cache_cap: usize,
    /// Optional sim-time lifetime for cache entries. An entry untouched
    /// for longer than this is discarded (lazily, on its next lookup or
    /// feedback) and the next contact decides afresh from rules — stale
    /// conclusions about a path age out the way ARP entries do. `None`
    /// (the default) keeps history until eviction or movement.
    pub cache_ttl: Option<SimDuration>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            default_strategy: Strategy::Pessimistic,
            rules: Vec::new(),
            dt_ports: vec![80, 53],
            privacy: false,
            feedback_demotion: true,
            demote_threshold: 2,
            promote_after: 8,
            cache_cap: 4096,
            cache_ttl: None,
        }
    }
}

impl PolicyConfig {
    /// Start every correspondent at Out-DH (aggressive).
    pub fn optimistic() -> Self {
        PolicyConfig {
            default_strategy: Strategy::Optimistic,
            ..PolicyConfig::default()
        }
    }

    /// Start every correspondent at Out-IE (conservative; the default).
    pub fn pessimistic() -> Self {
        PolicyConfig::default()
    }

    /// Pin every correspondent to one mode; no probing, no DT ports.
    pub fn fixed(mode: OutMode) -> Self {
        PolicyConfig {
            default_strategy: Strategy::Fixed(mode),
            feedback_demotion: false,
            dt_ports: Vec::new(),
            ..PolicyConfig::default()
        }
    }

    /// Append a §7.1.2 address/mask rule (first match wins).
    pub fn with_rule(mut self, prefix: Ipv4Cidr, strategy: Strategy) -> Self {
        self.rules.push((prefix, strategy));
        self
    }

    /// Force Out-IE everywhere, concealing the care-of address (§4).
    pub fn with_privacy(mut self) -> Self {
        self.privacy = true;
        self
    }

    /// Disable the §7.1.1 port heuristics.
    pub fn without_dt_ports(mut self) -> Self {
        self.dt_ports.clear();
        self
    }

    /// Cap the method cache at `cap` correspondents (LRU beyond that).
    pub fn with_cache_cap(mut self, cap: usize) -> Self {
        self.cache_cap = cap;
        self
    }

    /// Expire method-cache entries untouched for `ttl` of simulated time.
    pub fn with_cache_ttl(mut self, ttl: SimDuration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }
}

/// Reference first-match rule scan: the §7.1.2 semantics the compiled
/// index must reproduce exactly. Exposed (hidden) for the parity property
/// tests and the `policy` bench group.
#[doc(hidden)]
pub fn rule_match_reference(rules: &[(Ipv4Cidr, Strategy)], dst: Ipv4Addr) -> Option<usize> {
    rules.iter().position(|(p, _)| p.contains(dst))
}

// ---------------------------------------------------------------------------
// Compiled configuration: rule LPM buckets, port bitset, strategy cache
// ---------------------------------------------------------------------------

/// Rule lists at or below this stay uncompiled: a linear first-match over
/// a handful of rules beats hashing and costs no auxiliary heap — the same
/// size discipline as `netsim::route::RouteTable`.
const RULES_LINEAR_MAX: usize = 8;

/// Per-destination strategy memos kept before the memo table resets; the
/// cap bounds memory during address sweeps, exactly like the route cache.
const STRATEGY_CACHE_CAP: usize = 4096;

/// The bucketed-LPM index over the rule list: one map over every rule
/// prefix plus the populated-lengths bitmap lookups scan. Buckets hold the
/// *lowest* rule index installed for their exact prefix, so taking the
/// minimum over all matching lengths reproduces first-match-wins.
#[derive(Debug, Default)]
struct RuleIndex {
    /// `(prefix_len << 32 | network)` → lowest rule index with that prefix.
    buckets: HashMap<u64, u32>,
    /// Bit `p` set ⇔ some `/p` rule exists.
    populated: u64,
}

impl RuleIndex {
    fn key(len: u8, network: u32) -> u64 {
        (u64::from(len) << 32) | u64::from(network)
    }

    fn build(rules: &[(Ipv4Cidr, Strategy)]) -> RuleIndex {
        let mut ix = RuleIndex::default();
        for (i, (prefix, _)) in rules.iter().enumerate() {
            let p = prefix.prefix_len();
            ix.buckets
                .entry(RuleIndex::key(p, prefix.network().0))
                .or_insert(i as u32);
            ix.populated |= 1u64 << p;
        }
        ix
    }

    /// Index of the first (lowest-numbered) rule containing `dst`.
    fn first_match(&self, dst: Ipv4Addr) -> Option<usize> {
        let mut best = u32::MAX;
        let mut lens = self.populated;
        while lens != 0 {
            let p = 63 - lens.leading_zeros();
            let network = Ipv4Cidr::new(dst, p as u8).network().0;
            if let Some(&r) = self.buckets.get(&RuleIndex::key(p as u8, network)) {
                best = best.min(r);
            }
            lens &= !(1u64 << p);
        }
        (best != u32::MAX).then_some(best as usize)
    }
}

/// Everything derived from a `PolicyConfig`, rebuilt lazily whenever the
/// fingerprint below stops matching the live config — so experiments that
/// replace `policy.config` wholesale (or push rules through it) are picked
/// up without an explicit invalidation call.
#[derive(Debug)]
struct Compiled {
    /// Fingerprint of the config this was compiled from: the rule and
    /// port storage identity plus the scalar decision inputs. Replacing
    /// or growing either `Vec` changes pointer or length; the scalars are
    /// compared directly.
    rules_ptr: usize,
    rules_len: usize,
    ports_ptr: usize,
    ports_len: usize,
    privacy: bool,
    default_strategy: Strategy,
    /// Bucketed rule LPM; `None` while the rule list is small enough that
    /// the linear reference scan wins.
    rule_index: Option<Box<RuleIndex>>,
    /// 64 Ki-bit destination-port set for the §7.1.1 DT heuristic; `None`
    /// when no ports are configured (the common fixed-mode experiments).
    dt_bits: Option<Box<[u64]>>,
    /// dst → (strategy, why) memo, capped at [`STRATEGY_CACHE_CAP`].
    strategy_cache: HashMap<u32, (Strategy, DecisionReason)>,
}

impl Compiled {
    fn fingerprint_matches(&self, config: &PolicyConfig) -> bool {
        self.rules_ptr == config.rules.as_ptr() as usize
            && self.rules_len == config.rules.len()
            && self.ports_ptr == config.dt_ports.as_ptr() as usize
            && self.ports_len == config.dt_ports.len()
            && self.privacy == config.privacy
            && self.default_strategy == config.default_strategy
    }

    fn build(config: &PolicyConfig) -> Compiled {
        let rule_index = (config.rules.len() > RULES_LINEAR_MAX)
            .then(|| Box::new(RuleIndex::build(&config.rules)));
        let dt_bits = (!config.dt_ports.is_empty()).then(|| {
            let mut bits = vec![0u64; 1024].into_boxed_slice();
            for &port in &config.dt_ports {
                bits[usize::from(port) >> 6] |= 1u64 << (port & 63);
            }
            bits
        });
        Compiled {
            rules_ptr: config.rules.as_ptr() as usize,
            rules_len: config.rules.len(),
            ports_ptr: config.dt_ports.as_ptr() as usize,
            ports_len: config.dt_ports.len(),
            privacy: config.privacy,
            default_strategy: config.default_strategy,
            rule_index,
            dt_bits,
            strategy_cache: HashMap::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// The method cache: SoA slab + single-probe index + intrusive LRU
// ---------------------------------------------------------------------------

/// Niche marker for slab and list links.
const NIL: u32 = u32::MAX;

// Bit layout of one packed slab word.
const MODE_SHIFT: u32 = 0; // bits 0-1: current OutMode index
const STRAT_SHIFT: u32 = 2; // bits 2-4: Strategy code
const FAILED_SHIFT: u32 = 8; // bits 8-11: failed-modes mask

/// The per-correspondent store. Struct-of-arrays: every field of every
/// entry lives in a dense `Vec`, slots are stable until an entry is
/// removed (the last entry backfills the hole), and an open-addressing
/// index at ≤ 50 % load maps correspondent address → slot in one expected
/// probe. Recency is an intrusive doubly-linked list over `prev`/`next`,
/// giving exact, deterministic LRU order with O(1) touch and evict.
#[derive(Debug)]
struct MethodCache {
    /// Open-addressing slots holding slab indices (or [`NIL`]).
    index: Vec<u32>,
    /// Correspondent addresses, one per slab slot.
    ips: Vec<u32>,
    /// Packed mode/strategy/failed-mask words (see the `*_SHIFT` layout).
    packed: Vec<u32>,
    /// Consecutive failure signals since the last transition.
    fails: Vec<u32>,
    /// Consecutive success signals since the last transition.
    succs: Vec<u32>,
    /// Demotions (low 16 bits) and promotions (high 16), saturating.
    trans: Vec<u32>,
    /// Sim-time (µs) of the last touch, for TTL expiry.
    stamp: Vec<u64>,
    /// LRU list: previous (more recent) neighbour, or [`NIL`] at head.
    prev: Vec<u32>,
    /// LRU list: next (less recent) neighbour, or [`NIL`] at tail.
    next: Vec<u32>,
    /// Most recently used slot, [`NIL`] when empty.
    head: u32,
    /// Least recently used slot — the eviction victim.
    tail: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
    expiries: u64,
}

impl MethodCache {
    fn new() -> MethodCache {
        MethodCache {
            index: Vec::new(),
            ips: Vec::new(),
            packed: Vec::new(),
            fails: Vec::new(),
            succs: Vec::new(),
            trans: Vec::new(),
            stamp: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
            expiries: 0,
        }
    }

    fn len(&self) -> usize {
        self.ips.len()
    }

    /// The probe start for `ip`: a multiplicative hash with a mixing shift
    /// so sequential addresses (the common storm pattern) spread.
    fn ideal_slot(&self, ip: u32) -> usize {
        let mut h = ip.wrapping_mul(0x9E37_79B9);
        h ^= h >> 16;
        h as usize & (self.index.len() - 1)
    }

    /// Slab slot of `ip`, if cached. One expected probe at ≤ 50 % load.
    fn find(&self, ip: u32) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = self.ideal_slot(ip);
        loop {
            let e = self.index[slot];
            if e == NIL {
                return None;
            }
            if self.ips[e as usize] == ip {
                return Some(e as usize);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Double (or create) the index and rehash every live entry.
    fn grow_index(&mut self) {
        let new_len = (self.index.len() * 2).max(16);
        self.index.clear();
        self.index.resize(new_len, NIL);
        let mask = new_len - 1;
        for e in 0..self.ips.len() {
            let mut slot = self.ideal_slot(self.ips[e]);
            while self.index[slot] != NIL {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = e as u32;
        }
    }

    /// Insert a brand-new entry (caller guarantees `ip` is absent) and
    /// link it most-recent. Returns its slab slot.
    fn insert(&mut self, ip: u32, packed: u32, now: SimTime) -> usize {
        if (self.len() + 1) * 2 > self.index.len() {
            self.grow_index();
        }
        let e = self.ips.len() as u32;
        self.ips.push(ip);
        self.packed.push(packed);
        self.fails.push(0);
        self.succs.push(0);
        self.trans.push(0);
        self.stamp.push(now.0);
        self.prev.push(NIL);
        self.next.push(NIL);
        let mask = self.index.len() - 1;
        let mut slot = self.ideal_slot(ip);
        while self.index[slot] != NIL {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = e;
        self.push_front(e);
        e as usize
    }

    /// Unlink slab slot `e` from the recency list.
    fn unlink(&mut self, e: u32) {
        let (p, n) = (self.prev[e as usize], self.next[e as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Link slab slot `e` at the most-recent end.
    fn push_front(&mut self, e: u32) {
        self.prev[e as usize] = NIL;
        self.next[e as usize] = self.head;
        if self.head == NIL {
            self.tail = e;
        } else {
            self.prev[self.head as usize] = e;
        }
        self.head = e;
    }

    /// Mark slab slot `e` as just used: move to the recency head and
    /// refresh its TTL stamp.
    fn touch(&mut self, e: usize, now: SimTime) {
        self.stamp[e] = now.0;
        if self.head == e as u32 {
            return;
        }
        self.unlink(e as u32);
        self.push_front(e as u32);
    }

    /// Backward-shift deletion of the index slot currently holding `e`:
    /// no tombstones, so probe chains never degrade.
    fn index_delete(&mut self, e: u32) {
        let mask = self.index.len() - 1;
        let mut slot = self.ideal_slot(self.ips[e as usize]);
        while self.index[slot] != e {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = NIL;
        let mut hole = slot;
        let mut j = slot;
        loop {
            j = (j + 1) & mask;
            let occupant = self.index[j];
            if occupant == NIL {
                break;
            }
            let ideal = self.ideal_slot(self.ips[occupant as usize]);
            // Move the occupant into the hole iff its probe chain passes
            // through the hole (cyclic distance test).
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.index[hole] = occupant;
                self.index[j] = NIL;
                hole = j;
            }
        }
    }

    /// Remove slab slot `e` entirely: unlink, delete from the index, and
    /// backfill the hole with the last entry (fixing its index slot and
    /// list links). Returns the removed `(ip, packed)`.
    fn remove(&mut self, e: usize) -> (u32, u32) {
        let removed = (self.ips[e], self.packed[e]);
        self.unlink(e as u32);
        self.index_delete(e as u32);
        let last = self.ips.len() - 1;
        if e != last {
            // Repoint the index slot of the entry being moved.
            let mask = self.index.len() - 1;
            let mut slot = self.ideal_slot(self.ips[last]);
            while self.index[slot] != last as u32 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = e as u32;
            self.ips[e] = self.ips[last];
            self.packed[e] = self.packed[last];
            self.fails[e] = self.fails[last];
            self.succs[e] = self.succs[last];
            self.trans[e] = self.trans[last];
            self.stamp[e] = self.stamp[last];
            self.prev[e] = self.prev[last];
            self.next[e] = self.next[last];
            // Repoint the moved entry's list neighbours (and ends).
            let (p, n) = (self.prev[e], self.next[e]);
            if p == NIL {
                self.head = e as u32;
            } else {
                self.next[p as usize] = e as u32;
            }
            if n == NIL {
                self.tail = e as u32;
            } else {
                self.prev[n as usize] = e as u32;
            }
        }
        self.ips.pop();
        self.packed.pop();
        self.fails.pop();
        self.succs.pop();
        self.trans.pop();
        self.stamp.pop();
        self.prev.pop();
        self.next.pop();
        removed
    }

    /// Drop every entry, retaining allocations (movement clears the cache
    /// constantly; re-growing the index each time would dominate).
    fn clear(&mut self) {
        self.index.iter_mut().for_each(|s| *s = NIL);
        self.ips.clear();
        self.packed.clear();
        self.fails.clear();
        self.succs.clear();
        self.trans.clear();
        self.stamp.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

// ---------------------------------------------------------------------------
// Public entry view and cache statistics
// ---------------------------------------------------------------------------

/// One correspondent's state in the method cache, materialised from the
/// packed slab on request (the slab itself stores bit-fields, not structs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodEntry {
    /// The method currently selected for this correspondent.
    pub mode: OutMode,
    strategy: Strategy,
    fail_signals: u32,
    success_signals: u32,
    /// Bitmask over [`OutMode::index`] of modes demoted away from.
    failed_mask: u8,
    /// Times the method was demoted for this correspondent.
    pub demotions: u32,
    /// Times the method was promoted for this correspondent.
    pub promotions: u32,
}

impl MethodEntry {
    /// Has `mode` already failed for this correspondent ("never re-probed")?
    pub fn has_failed(&self, mode: OutMode) -> bool {
        self.failed_mask & mode.bit() != 0
    }
}

/// Aggregate method-cache statistics, for experiments that measure
/// decision quality under cache pressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a live cache entry.
    pub hits: u64,
    /// Lookups that had to decide afresh (first contact or after loss).
    pub misses: u64,
    /// Entries displaced by the LRU discipline at capacity.
    pub evictions: u64,
    /// Entries discarded by TTL expiry.
    pub expiries: u64,
    /// Correspondents currently cached.
    pub len: u64,
}

serde::impl_serialize!(CacheStats {
    hits,
    misses,
    evictions,
    expiries,
    len,
});

/// A method change, reported for stats/experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Failure signals pushed the method toward the conservative end.
    Demoted {
        /// The method that was failing.
        from: OutMode,
        /// The more conservative replacement.
        to: OutMode,
    },
    /// Sustained success probed a more aggressive method.
    Promoted {
        /// The method that kept succeeding.
        from: OutMode,
        /// The more aggressive probe now in effect.
        to: OutMode,
    },
}

/// The per-correspondent method cache plus the decision logic.
#[derive(Debug)]
pub struct Policy {
    /// The static policy configuration (rules, ports, thresholds). May be
    /// replaced or mutated freely; the compiled artifacts notice and
    /// rebuild on the next decision.
    pub config: PolicyConfig,
    cache: MethodCache,
    compiled: RefCell<Option<Box<Compiled>>>,
    /// The why-was-this-mode-chosen event trail.
    pub audit: AuditTrail,
}

impl Policy {
    /// A policy with an empty method cache.
    pub fn new(config: PolicyConfig) -> Policy {
        Policy {
            config,
            cache: MethodCache::new(),
            compiled: RefCell::new(None),
            audit: AuditTrail::new(),
        }
    }

    /// Replace the configuration. Equivalent to assigning `self.config`
    /// directly (compiled state is fingerprint-invalidated either way);
    /// provided so call sites read as what they are.
    pub fn set_config(&mut self, config: PolicyConfig) {
        self.config = config;
        *self.compiled.borrow_mut() = None;
    }

    /// Run `f` with the compiled view of the current config, rebuilding it
    /// first if the config changed since the last call.
    fn with_compiled<R>(&self, f: impl FnOnce(&mut Compiled) -> R) -> R {
        let mut slot = self.compiled.borrow_mut();
        let stale = match slot.as_ref() {
            Some(c) => !c.fingerprint_matches(&self.config),
            None => true,
        };
        if stale {
            *slot = Some(Box::new(Compiled::build(&self.config)));
        }
        f(slot.as_mut().expect("compiled just ensured"))
    }

    /// Should a conversation to this destination port skip Mobile IP
    /// entirely (Out-DT/In-DT)?
    pub fn use_dt_for_port(&self, port: u16) -> bool {
        if self.config.privacy || self.config.dt_ports.is_empty() {
            return false;
        }
        self.with_compiled(|c| match &c.dt_bits {
            Some(bits) => bits[usize::from(port) >> 6] & (1u64 << (port & 63)) != 0,
            None => false,
        })
    }

    /// The (strategy, provenance) the rules assign `correspondent`,
    /// memoised per destination.
    fn strategy_with_source(&self, correspondent: Ipv4Addr) -> (Strategy, DecisionReason) {
        if self.config.privacy {
            return (Strategy::Fixed(OutMode::IE), DecisionReason::Privacy);
        }
        if self.config.rules.is_empty() {
            return (self.config.default_strategy, DecisionReason::Default);
        }
        self.with_compiled(|c| {
            if let Some(&hit) = c.strategy_cache.get(&correspondent.0) {
                return hit;
            }
            let matched = match &c.rule_index {
                Some(ix) => ix.first_match(correspondent),
                None => rule_match_reference(&self.config.rules, correspondent),
            };
            let decided = match matched {
                Some(i) => (self.config.rules[i].1, DecisionReason::Rule),
                None => (self.config.default_strategy, DecisionReason::Default),
            };
            if c.strategy_cache.len() >= STRATEGY_CACHE_CAP {
                c.strategy_cache.clear();
            }
            c.strategy_cache.insert(correspondent.0, decided);
            decided
        })
    }

    /// The first matching rule's index for `correspondent`, via the
    /// compiled path but bypassing the strategy memo. Exposed (hidden) for
    /// the `policy` bench group and the compiled-vs-linear parity tests.
    #[doc(hidden)]
    pub fn rule_match_compiled(&self, correspondent: Ipv4Addr) -> Option<usize> {
        self.with_compiled(|c| match &c.rule_index {
            Some(ix) => ix.first_match(correspondent),
            None => rule_match_reference(&self.config.rules, correspondent),
        })
    }

    /// Is the live TTL exceeded for the entry in slab slot `e`?
    fn entry_expired(&self, e: usize, now: SimTime) -> bool {
        self.config
            .cache_ttl
            .is_some_and(|ttl| now.since(SimTime(self.cache.stamp[e])) > ttl)
    }

    /// The mode to use right now for `correspondent`, creating a cache
    /// entry on first contact (evicting the least recently used
    /// correspondent if the cache is at capacity).
    pub fn mode_for(&mut self, correspondent: Ipv4Addr) -> OutMode {
        let now = self.audit.now();
        if let Some(e) = self.cache.find(correspondent.0) {
            if !self.entry_expired(e, now) {
                self.cache.hits += 1;
                profile::add(Counter::PolicyCacheHit, 1);
                self.cache.touch(e, now);
                let mode = OutMode::from_index((self.cache.packed[e] >> MODE_SHIFT) as usize & 3);
                self.audit.record(AuditEvent::Decision {
                    correspondent,
                    mode,
                    reason: DecisionReason::CacheHit,
                });
                return mode;
            }
            // Stale: the conclusion aged out; discard and decide afresh.
            self.cache.expiries += 1;
            profile::add(Counter::PolicyCacheExpiry, 1);
            self.audit.record(AuditEvent::Expired { correspondent });
            self.cache.remove(e);
        }
        self.cache.misses += 1;
        profile::add(Counter::PolicyCacheMiss, 1);
        let (strategy, source) = self.strategy_with_source(correspondent);
        if self.config.cache_cap > 0 && self.cache.len() >= self.config.cache_cap {
            // Capacity: evict the coldest correspondent, not the world.
            let victim = self.cache.tail as usize;
            let (ip, packed) = self.cache.remove(victim);
            self.cache.evictions += 1;
            profile::add(Counter::PolicyCacheEviction, 1);
            self.audit.record(AuditEvent::Evicted {
                correspondent: Ipv4Addr(ip),
                mode: OutMode::from_index((packed >> MODE_SHIFT) as usize & 3),
            });
        }
        let mode = strategy.initial();
        let packed = ((mode.index() as u32) << MODE_SHIFT) | (strategy.code() << STRAT_SHIFT);
        self.cache.insert(correspondent.0, packed, now);
        self.audit.record(AuditEvent::Decision {
            correspondent,
            mode,
            reason: source,
        });
        mode
    }

    /// Peek at a cache entry (materialised by value; the store is a packed
    /// slab). Read-only: does not refresh recency or the TTL stamp.
    pub fn entry(&self, correspondent: Ipv4Addr) -> Option<MethodEntry> {
        let e = self.cache.find(correspondent.0)?;
        let packed = self.cache.packed[e];
        Some(MethodEntry {
            mode: OutMode::from_index((packed >> MODE_SHIFT) as usize & 3),
            strategy: Strategy::from_code((packed >> STRAT_SHIFT) & 7),
            fail_signals: self.cache.fails[e],
            success_signals: self.cache.succs[e],
            failed_mask: ((packed >> FAILED_SHIFT) & 0xF) as u8,
            demotions: self.cache.trans[e] & 0xFFFF,
            promotions: self.cache.trans[e] >> 16,
        })
    }

    /// Aggregate hit/miss/eviction/expiry counts since construction.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits,
            misses: self.cache.misses,
            evictions: self.cache.evictions,
            expiries: self.cache.expiries,
            len: self.cache.len() as u64,
        }
    }

    /// Forget everything (e.g. after moving to a different network, where
    /// the filtering situation may be different).
    pub fn clear_cache(&mut self) {
        if self.cache.len() > 0 {
            self.audit.record(AuditEvent::CacheCleared {
                entries: self.cache.len(),
            });
        }
        self.cache.clear();
    }

    /// Feed in one §7.1.2 transmission-feedback event for `correspondent`.
    /// `retransmission` covers both directions: our retransmissions suggest
    /// our packets are lost; the peer's suggest our acknowledgements are.
    ///
    /// Feedback for a correspondent absent from the cache is dropped; when
    /// evictions have occurred the drop is recorded as
    /// [`AuditEvent::FeedbackIgnored`], since the absent entry may be
    /// history the LRU displaced (silently losing the signal would make
    /// eviction-induced quality loss invisible).
    pub fn record_feedback(
        &mut self,
        correspondent: Ipv4Addr,
        retransmission: bool,
    ) -> Option<Transition> {
        if !self.config.feedback_demotion {
            return None;
        }
        let now = self.audit.now();
        // Find the entry before touching any thresholds: the common
        // at-scale outcome is a miss (evicted or never seen), which must
        // not depend on configuration reads.
        let Some(e) = self.cache.find(correspondent.0) else {
            if self.cache.evictions > 0 {
                self.audit
                    .record(AuditEvent::FeedbackIgnored { correspondent });
            }
            return None;
        };
        if self.entry_expired(e, now) {
            self.cache.expiries += 1;
            profile::add(Counter::PolicyCacheExpiry, 1);
            self.audit.record(AuditEvent::Expired { correspondent });
            self.cache.remove(e);
            return None;
        }
        // Feedback is evidence of an active conversation: refresh recency
        // so a correspondent we are talking to outlives a flash crowd.
        self.cache.touch(e, now);
        let packed = self.cache.packed[e];
        let strategy = Strategy::from_code((packed >> STRAT_SHIFT) & 7);
        let mode = OutMode::from_index((packed >> MODE_SHIFT) as usize & 3);
        if retransmission {
            self.cache.fails[e] += 1;
            self.cache.succs[e] = 0;
            if self.cache.fails[e] >= self.config.demote_threshold && strategy.probes() {
                let from = mode;
                let to = from.demote();
                if to != from {
                    self.cache.packed[e] = (packed & !(3 << MODE_SHIFT))
                        | ((to.index() as u32) << MODE_SHIFT)
                        | (u32::from(from.bit()) << FAILED_SHIFT);
                    self.cache.fails[e] = 0;
                    let demotions = (self.cache.trans[e] & 0xFFFF).saturating_add(1).min(0xFFFF);
                    self.cache.trans[e] = (self.cache.trans[e] & !0xFFFF) | demotions;
                    self.audit.record(AuditEvent::Demoted {
                        correspondent,
                        from,
                        to,
                    });
                    return Some(Transition::Demoted { from, to });
                }
            }
        } else {
            self.cache.succs[e] += 1;
            self.cache.fails[e] = 0;
            // Pessimistic upgrade probing: after sustained success,
            // tentatively try the next more aggressive mode, unless it
            // already failed for this correspondent.
            if strategy == Strategy::Pessimistic && self.cache.succs[e] >= self.config.promote_after
            {
                let from = mode;
                let to = from.promote();
                let failed = ((packed >> FAILED_SHIFT) & 0xF) as u8;
                if to != from && failed & to.bit() == 0 {
                    self.cache.packed[e] =
                        (packed & !(3 << MODE_SHIFT)) | ((to.index() as u32) << MODE_SHIFT);
                    self.cache.succs[e] = 0;
                    let promotions = (self.cache.trans[e] >> 16).saturating_add(1).min(0xFFFF);
                    self.cache.trans[e] = (self.cache.trans[e] & 0xFFFF) | (promotions << 16);
                    self.audit.record(AuditEvent::Promoted {
                        correspondent,
                        from,
                        to,
                    });
                    return Some(Transition::Promoted { from, to });
                }
                self.cache.succs[e] = 0; // ceiling reached; keep counting fresh
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }
    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn optimistic_starts_aggressive_pessimistic_starts_safe() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DH);
        let mut p = Policy::new(PolicyConfig::pessimistic());
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
        let mut p = Policy::new(PolicyConfig::fixed(OutMode::DE));
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DE);
    }

    #[test]
    fn rules_override_default_strategy() {
        // §7.1.2's example: the home network region always starts Out-IE
        // (it sits behind the protective gateway).
        let cfg = PolicyConfig::optimistic()
            .with_rule(cidr("171.64.0.0/16"), Strategy::Pessimistic)
            .with_rule(cidr("18.0.0.0/8"), Strategy::Fixed(OutMode::DE));
        let mut p = Policy::new(cfg);
        assert_eq!(p.mode_for(ip("171.64.7.7")), OutMode::IE);
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DE);
        assert_eq!(p.mode_for(ip("128.2.0.1")), OutMode::DH); // default
    }

    #[test]
    fn compiled_rules_preserve_first_match_wins() {
        // Past RULES_LINEAR_MAX the bucketed index takes over; shadowed
        // and overlapping prefixes must still resolve to the *first*
        // matching rule, not the longest.
        let mut cfg = PolicyConfig::optimistic();
        cfg = cfg.with_rule(cidr("10.0.0.0/8"), Strategy::Fixed(OutMode::IE)); // rule 0
        cfg = cfg.with_rule(cidr("10.1.0.0/16"), Strategy::Fixed(OutMode::DE)); // shadowed by 0
        for i in 0..16u32 {
            cfg = cfg.with_rule(
                cidr(&format!("172.{}.0.0/16", 16 + i)),
                Strategy::Pessimistic,
            );
        }
        cfg = cfg.with_rule(cidr("172.16.0.0/12"), Strategy::Fixed(OutMode::DE)); // shadowed
        let mut p = Policy::new(cfg.clone());
        assert!(p.rule_match_compiled(ip("9.9.9.9")).is_none());
        // Every destination agrees with the linear reference scan.
        for dst in [
            "10.1.2.3",
            "10.200.0.1",
            "172.16.5.5",
            "172.31.0.1",
            "172.15.0.1",
            "8.8.8.8",
        ] {
            assert_eq!(
                p.rule_match_compiled(ip(dst)),
                rule_match_reference(&cfg.rules, ip(dst)),
                "compiled diverged from first-match at {dst}"
            );
        }
        // The shadowed /16 never wins over the /8 that precedes it.
        assert_eq!(p.mode_for(ip("10.1.2.3")), OutMode::IE);
    }

    #[test]
    fn config_replacement_invalidates_compiled_state() {
        let mut p = Policy::new(
            PolicyConfig::optimistic().with_rule(cidr("18.0.0.0/8"), Strategy::Pessimistic),
        );
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
        // Replace the whole config through the public field, as the
        // experiments do — the fingerprint must notice.
        p.config = PolicyConfig::fixed(OutMode::DE).without_dt_ports();
        p.clear_cache();
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DE);
        assert!(!p.use_dt_for_port(80));
        // And growing the rule list in place is noticed too.
        let mut p = Policy::new(PolicyConfig::optimistic());
        assert_eq!(p.mode_for(ip("171.64.7.7")), OutMode::DH);
        p.config
            .rules
            .push((cidr("171.64.0.0/16"), Strategy::Pessimistic));
        p.clear_cache();
        assert_eq!(p.mode_for(ip("171.64.7.7")), OutMode::IE);
    }

    #[test]
    fn privacy_forces_indirect_everywhere() {
        let mut p = Policy::new(PolicyConfig::optimistic().with_privacy());
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
        assert!(!p.use_dt_for_port(80), "privacy disables DT heuristics too");
        // And no amount of success promotes away from IE.
        for _ in 0..100 {
            assert!(p.record_feedback(ip("18.26.0.5"), false).is_none());
        }
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
    }

    #[test]
    fn port_heuristics_default_to_http_and_dns() {
        let p = Policy::new(PolicyConfig::default());
        assert!(p.use_dt_for_port(80));
        assert!(p.use_dt_for_port(53));
        assert!(!p.use_dt_for_port(23));
        assert!(!p.use_dt_for_port(65535));
        let p = Policy::new(PolicyConfig::default().without_dt_ports());
        assert!(!p.use_dt_for_port(80));
    }

    #[test]
    fn repeated_retransmissions_demote_step_by_step() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::DH);
        assert_eq!(p.record_feedback(ch, true), None); // 1 of 2
        assert_eq!(
            p.record_feedback(ch, true),
            Some(Transition::Demoted {
                from: OutMode::DH,
                to: OutMode::DE
            })
        );
        assert_eq!(p.mode_for(ch), OutMode::DE);
        p.record_feedback(ch, true);
        assert_eq!(
            p.record_feedback(ch, true),
            Some(Transition::Demoted {
                from: OutMode::DE,
                to: OutMode::IE
            })
        );
        assert_eq!(p.mode_for(ch), OutMode::IE);
        // IE is the floor.
        p.record_feedback(ch, true);
        assert_eq!(p.record_feedback(ch, true), None);
        assert_eq!(p.mode_for(ch), OutMode::IE);
        assert_eq!(p.entry(ch).unwrap().demotions, 2);
        assert!(p.entry(ch).unwrap().has_failed(OutMode::DH));
        assert!(p.entry(ch).unwrap().has_failed(OutMode::DE));
    }

    #[test]
    fn success_resets_failure_count() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        let ch = ip("18.26.0.5");
        p.mode_for(ch);
        p.record_feedback(ch, true); // 1 failure
        p.record_feedback(ch, false); // success resets
        p.record_feedback(ch, true); // 1 failure again
        assert_eq!(p.mode_for(ch), OutMode::DH, "no demotion below threshold");
    }

    #[test]
    fn pessimistic_promotes_after_sustained_success() {
        let mut p = Policy::new(PolicyConfig::pessimistic());
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::IE);
        let mut transitions = Vec::new();
        for _ in 0..16 {
            if let Some(t) = p.record_feedback(ch, false) {
                transitions.push(t);
            }
        }
        assert_eq!(
            transitions,
            vec![
                Transition::Promoted {
                    from: OutMode::IE,
                    to: OutMode::DE
                },
                Transition::Promoted {
                    from: OutMode::DE,
                    to: OutMode::DH
                },
            ]
        );
        assert_eq!(p.mode_for(ch), OutMode::DH);
    }

    #[test]
    fn failed_mode_is_never_reprobed() {
        let mut p = Policy::new(PolicyConfig::pessimistic());
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::IE); // create the cache entry
                                                 // Climb to DH, fail there, drop to DE.
        for _ in 0..16 {
            p.record_feedback(ch, false);
        }
        assert_eq!(p.mode_for(ch), OutMode::DH);
        p.record_feedback(ch, true);
        p.record_feedback(ch, true);
        assert_eq!(p.mode_for(ch), OutMode::DE);
        // Sustained success at DE must NOT climb back into DH.
        for _ in 0..100 {
            p.record_feedback(ch, false);
        }
        assert_eq!(p.mode_for(ch), OutMode::DE);
        assert_eq!(p.entry(ch).unwrap().promotions, 2); // only the original climb
    }

    #[test]
    fn fixed_strategy_never_moves() {
        let mut p = Policy::new(PolicyConfig {
            feedback_demotion: true,
            ..PolicyConfig::fixed(OutMode::DH)
        });
        let ch = ip("18.26.0.5");
        p.mode_for(ch);
        for _ in 0..10 {
            assert!(p.record_feedback(ch, true).is_none());
        }
        assert_eq!(p.mode_for(ch), OutMode::DH);
    }

    #[test]
    fn cache_is_per_correspondent() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        let ch1 = ip("18.26.0.5");
        let ch2 = ip("128.2.0.1");
        p.mode_for(ch1);
        p.mode_for(ch2);
        p.record_feedback(ch1, true);
        p.record_feedback(ch1, true);
        assert_eq!(p.mode_for(ch1), OutMode::DE);
        assert_eq!(p.mode_for(ch2), OutMode::DH, "ch2 unaffected");
        p.clear_cache();
        assert_eq!(p.mode_for(ch1), OutMode::DH, "cleared after move");
    }

    #[test]
    fn audit_trail_explains_every_decision_and_transition() {
        let mut p = Policy::new(
            PolicyConfig::optimistic().with_rule(cidr("171.64.0.0/16"), Strategy::Pessimistic),
        );
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::DH); // first contact: default strategy
        assert_eq!(p.mode_for(ch), OutMode::DH); // second lookup: cache hit
        p.record_feedback(ch, true);
        p.record_feedback(ch, true); // demotes DH → DE
        assert_eq!(p.mode_for(ch), OutMode::DE);
        assert_eq!(
            p.audit.decisions_for(ch),
            vec![OutMode::DH, OutMode::DH, OutMode::DE]
        );
        assert_eq!(
            p.audit.last_decision(ch),
            Some((OutMode::DE, DecisionReason::CacheHit))
        );
        let reasons: Vec<DecisionReason> = p
            .audit
            .for_correspondent(ch)
            .filter_map(|e| match e.event {
                AuditEvent::Decision { reason, .. } => Some(reason),
                _ => None,
            })
            .collect();
        assert_eq!(
            reasons,
            vec![
                DecisionReason::Default,
                DecisionReason::CacheHit,
                DecisionReason::CacheHit
            ]
        );
        let transitions = p.audit.transitions();
        assert_eq!(transitions.len(), 1);
        assert!(matches!(
            transitions[0].event,
            AuditEvent::Demoted {
                from: OutMode::DH,
                to: OutMode::DE,
                ..
            }
        ));

        // A rule-covered correspondent records its source as Rule.
        p.mode_for(ip("171.64.7.7"));
        assert_eq!(
            p.audit.last_decision(ip("171.64.7.7")),
            Some((OutMode::IE, DecisionReason::Rule))
        );

        // Clearing the cache leaves a visible mark.
        p.clear_cache();
        assert!(p
            .audit
            .entries()
            .any(|e| matches!(e.event, AuditEvent::CacheCleared { entries: 2 })));
    }

    #[test]
    fn cache_evicts_lru_at_cap_instead_of_resetting() {
        let mut p = Policy::new(PolicyConfig {
            cache_cap: 4,
            ..PolicyConfig::optimistic()
        });
        for i in 0..4u32 {
            p.mode_for(Ipv4Addr(0x0A00_0000 | i));
        }
        // Re-touch .0 so .1 becomes the coldest.
        p.mode_for(Ipv4Addr(0x0A00_0000));
        // A fifth distinct correspondent evicts exactly the LRU entry.
        p.mode_for(Ipv4Addr(0x0A00_0004));
        assert!(p.entry(Ipv4Addr(0x0A00_0001)).is_none(), "LRU evicted");
        for keep in [0u32, 2, 3, 4] {
            assert!(
                p.entry(Ipv4Addr(0x0A00_0000 | keep)).is_some(),
                "hot entry .{keep} must survive"
            );
        }
        assert_eq!(p.cache_stats().evictions, 1);
        assert!(p.audit.entries().any(|e| matches!(
            e.event,
            AuditEvent::Evicted {
                correspondent: Ipv4Addr(0x0A00_0001),
                ..
            }
        )));
    }

    #[test]
    fn flash_crowd_preserves_hot_history() {
        // Hot correspondents with learned demotion history keep it through
        // a flash crowd twice the cache capacity, because every storm
        // entry is colder than the continually re-touched hot set.
        let cap = 64usize;
        let mut p = Policy::new(PolicyConfig {
            cache_cap: cap,
            ..PolicyConfig::optimistic()
        });
        let hot: Vec<Ipv4Addr> = (0..8u32).map(|i| Ipv4Addr(0xC000_0200 | i)).collect();
        for &h in &hot {
            p.mode_for(h);
            p.record_feedback(h, true);
            p.record_feedback(h, true); // DH → DE, one demotion of history
        }
        // The storm: 2× cap distinct cold correspondents, with the hot set
        // touched between bursts (it is actively conversing).
        for burst in 0..(2 * cap as u32) {
            p.mode_for(Ipv4Addr(0x0B00_0000 | burst));
            if burst % 16 == 0 {
                for &h in &hot {
                    p.record_feedback(h, false);
                }
            }
        }
        for &h in &hot {
            let e = p.entry(h).expect("hot correspondent survived the storm");
            assert_eq!(e.demotions, 1, "demotion history preserved");
            assert_eq!(e.mode, OutMode::DE);
        }
        let stats = p.cache_stats();
        assert_eq!(stats.len as usize, cap);
        assert!(stats.evictions >= cap as u64, "storm evicted cold entries");
    }

    #[test]
    fn ttl_expires_stale_entries() {
        let mut p =
            Policy::new(PolicyConfig::optimistic().with_cache_ttl(SimDuration::from_secs(60)));
        let ch = ip("18.26.0.5");
        p.audit.set_now(SimTime(0));
        assert_eq!(p.mode_for(ch), OutMode::DH);
        p.record_feedback(ch, true);
        p.record_feedback(ch, true); // demoted to DE
        assert_eq!(p.mode_for(ch), OutMode::DE);
        // Within the TTL the conclusion holds…
        p.audit.set_now(SimTime(59_000_000));
        assert_eq!(p.mode_for(ch), OutMode::DE);
        // …but after a minute of silence it ages out and the next contact
        // decides afresh from the (optimistic) default.
        p.audit.set_now(SimTime(59_000_000 + 61_000_000));
        assert_eq!(p.mode_for(ch), OutMode::DH, "stale history discarded");
        assert_eq!(p.cache_stats().expiries, 1);
        assert!(p
            .audit
            .entries()
            .any(|e| matches!(e.event, AuditEvent::Expired { .. })));
    }

    #[test]
    fn feedback_for_unknown_correspondent_is_ignored() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        assert_eq!(p.record_feedback(ip("9.9.9.9"), true), None);
        assert!(p.entry(ip("9.9.9.9")).is_none());
        // Before any eviction the drop is silent (nothing was lost).
        assert!(!p
            .audit
            .entries()
            .any(|e| matches!(e.event, AuditEvent::FeedbackIgnored { .. })));
    }

    #[test]
    fn feedback_after_eviction_leaves_a_mark() {
        let mut p = Policy::new(PolicyConfig {
            cache_cap: 2,
            ..PolicyConfig::optimistic()
        });
        let evicted = Ipv4Addr(0x0A00_0001);
        for i in 1..=3u32 {
            p.mode_for(Ipv4Addr(0x0A00_0000 | i)); // third insert evicts .1
        }
        assert!(p.entry(evicted).is_none());
        assert_eq!(p.record_feedback(evicted, true), None);
        assert!(
            p.audit.entries().any(|e| matches!(
                e.event,
                AuditEvent::FeedbackIgnored {
                    correspondent: Ipv4Addr(0x0A00_0001)
                }
            )),
            "post-eviction feedback loss must be visible in the trail"
        );
    }

    #[test]
    fn slab_backfill_keeps_index_and_lru_coherent() {
        // Exercise remove()'s backfill path hard: interleaved inserts,
        // touches and evictions over a tiny cap, checking every survivor
        // stays findable and the reported LRU victim is always the true
        // least-recently-used.
        let cap = 8usize;
        let mut p = Policy::new(PolicyConfig {
            cache_cap: cap,
            ..PolicyConfig::optimistic()
        });
        let addr = |i: u32| Ipv4Addr(0x0D00_0000 | i);
        let mut model: Vec<u32> = Vec::new(); // most-recent-first
        for step in 0..512u32 {
            let i = (step * 7) % 24;
            p.mode_for(addr(i));
            model.retain(|&m| m != i);
            model.insert(0, i);
            if model.len() > cap {
                model.pop();
            }
            for &m in &model {
                assert!(p.entry(addr(m)).is_some(), "step {step}: {m} lost");
            }
            assert_eq!(p.cache_stats().len as usize, model.len());
        }
    }
}
