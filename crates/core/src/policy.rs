//! The mobility policy: which outgoing mode to use for each correspondent.
//!
//! Implements the §7.1 machinery:
//!
//! * a **per-correspondent method cache** — "the mobile host keeps a cache
//!   of the currently selected delivery method associated with each target
//!   IP address … and allows it to build up a history, for each
//!   correspondent host, of which communication methods have proven to be
//!   successful and which have not";
//! * **probing strategies** — optimistic (start at Out-DH, fall back) and
//!   pessimistic (start at Out-IE, tentatively upgrade), both of which the
//!   paper describes and finds individually wasteful;
//! * **user rules** — "specify rules stating which addresses Mobile IP
//!   should begin using in an optimistic mode and which … in a pessimistic
//!   mode … specified similarly to the way routing table entries are
//!   currently specified, as an address and a mask value" (§7.1.2);
//! * **port heuristics** — "connections to port 80 are likely to be HTTP
//!   requests and can safely use Out-DT. Similarly, UDP packets addressed
//!   to UDP port 53 are likely to be DNS requests" (§7.1.1);
//! * **privacy mode** — "mobile users may not wish to reveal their current
//!   location to the correspondent host … sending all outgoing packets
//!   indirectly via the home agent may be the method the user wants" (§4);
//! * **failure detection via transmission feedback** — the §7.1.2 proposal
//!   ("we have not yet implemented this"), implemented here: repeated
//!   retransmission signals demote the method one step toward Out-IE.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use netsim::{Ipv4Addr, Ipv4Cidr};

use crate::audit::{AuditEvent, AuditTrail, DecisionReason};
use crate::modes::OutMode;

/// How to pick the first home-address delivery method for a correspondent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Start with Out-DH; demote on failure signals.
    Optimistic,
    /// Start with Out-IE; tentatively promote after sustained success.
    Pessimistic,
    /// Always use exactly this mode (no probing).
    Fixed(OutMode),
}

impl Strategy {
    fn initial(self) -> OutMode {
        match self {
            Strategy::Optimistic => OutMode::DH,
            Strategy::Pessimistic => OutMode::IE,
            Strategy::Fixed(m) => m,
        }
    }

    fn probes(self) -> bool {
        !matches!(self, Strategy::Fixed(_))
    }
}

/// Static policy configuration.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// Strategy for correspondents no rule covers.
    pub default_strategy: Strategy,
    /// Address/mask rules, first match wins (§7.1.2). E.g. "the entire home
    /// network is a region where Out-IE should always be used" (resources
    /// behind the home firewall).
    pub rules: Vec<(Ipv4Cidr, Strategy)>,
    /// Destination ports for which plain Out-DT is safe (§7.1.1).
    pub dt_ports: Vec<u16>,
    /// Force Out-IE for everything, hiding the mobile's location (§4).
    pub privacy: bool,
    /// Act on the §7.1.2 transmission-feedback signal.
    pub feedback_demotion: bool,
    /// Failure signals (retransmissions, either direction) before demoting.
    pub demote_threshold: u32,
    /// Success signals before a pessimistic upgrade probe.
    pub promote_after: u32,
    /// Method-cache entries kept before the cache resets. A mobile that
    /// talks to more correspondents than this (a flash crowd) forgets its
    /// history rather than growing without bound — mirroring the paper's
    /// framing of the cache as an LRU-ish scarce resource. Reset (not
    /// per-entry eviction) keeps behaviour deterministic regardless of
    /// hash-map iteration order.
    pub cache_cap: usize,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            default_strategy: Strategy::Pessimistic,
            rules: Vec::new(),
            dt_ports: vec![80, 53],
            privacy: false,
            feedback_demotion: true,
            demote_threshold: 2,
            promote_after: 8,
            cache_cap: 4096,
        }
    }
}

impl PolicyConfig {
    /// Start every correspondent at Out-DH (aggressive).
    pub fn optimistic() -> Self {
        PolicyConfig {
            default_strategy: Strategy::Optimistic,
            ..PolicyConfig::default()
        }
    }

    /// Start every correspondent at Out-IE (conservative; the default).
    pub fn pessimistic() -> Self {
        PolicyConfig::default()
    }

    /// Pin every correspondent to one mode; no probing, no DT ports.
    pub fn fixed(mode: OutMode) -> Self {
        PolicyConfig {
            default_strategy: Strategy::Fixed(mode),
            feedback_demotion: false,
            dt_ports: Vec::new(),
            ..PolicyConfig::default()
        }
    }

    /// Append a §7.1.2 address/mask rule (first match wins).
    pub fn with_rule(mut self, prefix: Ipv4Cidr, strategy: Strategy) -> Self {
        self.rules.push((prefix, strategy));
        self
    }

    /// Force Out-IE everywhere, concealing the care-of address (§4).
    pub fn with_privacy(mut self) -> Self {
        self.privacy = true;
        self
    }

    /// Disable the §7.1.1 port heuristics.
    pub fn without_dt_ports(mut self) -> Self {
        self.dt_ports.clear();
        self
    }

    fn strategy_with_source(&self, correspondent: Ipv4Addr) -> (Strategy, DecisionReason) {
        if self.privacy {
            return (Strategy::Fixed(OutMode::IE), DecisionReason::Privacy);
        }
        match self.rules.iter().find(|(p, _)| p.contains(correspondent)) {
            Some(&(_, s)) => (s, DecisionReason::Rule),
            None => (self.default_strategy, DecisionReason::Default),
        }
    }
}

/// One correspondent's state in the method cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodEntry {
    /// The method currently selected for this correspondent.
    pub mode: OutMode,
    strategy: Strategy,
    fail_signals: u32,
    success_signals: u32,
    /// Modes that were demoted away from; never re-probed for this
    /// correspondent (the "history of which communication methods have
    /// proven … not" successful).
    failed_modes: Vec<OutMode>,
    /// Times the method was demoted for this correspondent.
    pub demotions: u32,
    /// Times the method was promoted for this correspondent.
    pub promotions: u32,
}

/// A method change, reported for stats/experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Failure signals pushed the method toward the conservative end.
    /// Failure signals pushed the method toward the conservative end.
    Demoted {
        /// The method that was failing.
        from: OutMode,
        /// The more conservative replacement.
        to: OutMode,
    },
    /// Sustained success probed a more aggressive method.
    /// Sustained success probed a more aggressive method.
    Promoted {
        /// The method that kept succeeding.
        from: OutMode,
        /// The more aggressive probe now in effect.
        to: OutMode,
    },
}

/// The per-correspondent method cache plus the decision logic.
#[derive(Debug)]
pub struct Policy {
    /// The static policy configuration (rules, ports, thresholds).
    pub config: PolicyConfig,
    cache: HashMap<Ipv4Addr, MethodEntry>,
    /// The why-was-this-mode-chosen event trail.
    pub audit: AuditTrail,
}

impl Policy {
    /// A policy with an empty method cache.
    pub fn new(config: PolicyConfig) -> Policy {
        Policy {
            config,
            cache: HashMap::new(),
            audit: AuditTrail::new(),
        }
    }

    /// Should a conversation to this destination port skip Mobile IP
    /// entirely (Out-DT/In-DT)?
    pub fn use_dt_for_port(&self, port: u16) -> bool {
        !self.config.privacy && self.config.dt_ports.contains(&port)
    }

    /// The mode to use right now for `correspondent`, creating a cache
    /// entry on first contact.
    pub fn mode_for(&mut self, correspondent: Ipv4Addr) -> OutMode {
        let (strategy, source) = self.config.strategy_with_source(correspondent);
        if self.cache.len() >= self.config.cache_cap && !self.cache.contains_key(&correspondent) {
            self.clear_cache();
        }
        let (mode, reason) = match self.cache.entry(correspondent) {
            Entry::Occupied(e) => (e.get().mode, DecisionReason::CacheHit),
            Entry::Vacant(v) => (
                v.insert(MethodEntry {
                    mode: strategy.initial(),
                    strategy,
                    fail_signals: 0,
                    success_signals: 0,
                    failed_modes: Vec::new(),
                    demotions: 0,
                    promotions: 0,
                })
                .mode,
                source,
            ),
        };
        self.audit.record(AuditEvent::Decision {
            correspondent,
            mode,
            reason,
        });
        mode
    }

    /// Peek at a cache entry.
    pub fn entry(&self, correspondent: Ipv4Addr) -> Option<&MethodEntry> {
        self.cache.get(&correspondent)
    }

    /// Forget everything (e.g. after moving to a different network, where
    /// the filtering situation may be different).
    pub fn clear_cache(&mut self) {
        if !self.cache.is_empty() {
            self.audit.record(AuditEvent::CacheCleared {
                entries: self.cache.len(),
            });
        }
        self.cache.clear();
    }

    /// Feed in one §7.1.2 transmission-feedback event for `correspondent`.
    /// `retransmission` covers both directions: our retransmissions suggest
    /// our packets are lost; the peer's suggest our acknowledgements are.
    pub fn record_feedback(
        &mut self,
        correspondent: Ipv4Addr,
        retransmission: bool,
    ) -> Option<Transition> {
        if !self.config.feedback_demotion {
            return None;
        }
        let demote_threshold = self.config.demote_threshold;
        let promote_after = self.config.promote_after;
        let e = self.cache.get_mut(&correspondent)?;
        if retransmission {
            e.fail_signals += 1;
            e.success_signals = 0;
            if e.fail_signals >= demote_threshold && e.strategy.probes() {
                let from = e.mode;
                let to = from.demote();
                if to != from {
                    e.failed_modes.push(from);
                    e.mode = to;
                    e.fail_signals = 0;
                    e.demotions += 1;
                    self.audit.record(AuditEvent::Demoted {
                        correspondent,
                        from,
                        to,
                    });
                    return Some(Transition::Demoted { from, to });
                }
            }
        } else {
            e.success_signals += 1;
            e.fail_signals = 0;
            // Pessimistic upgrade probing: after sustained success,
            // tentatively try the next more aggressive mode, unless it
            // already failed for this correspondent.
            if e.strategy == Strategy::Pessimistic && e.success_signals >= promote_after {
                let from = e.mode;
                let to = from.promote();
                if to != from && !e.failed_modes.contains(&to) {
                    e.mode = to;
                    e.success_signals = 0;
                    e.promotions += 1;
                    self.audit.record(AuditEvent::Promoted {
                        correspondent,
                        from,
                        to,
                    });
                    return Some(Transition::Promoted { from, to });
                }
                e.success_signals = 0; // ceiling reached; keep counting fresh
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }
    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn optimistic_starts_aggressive_pessimistic_starts_safe() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DH);
        let mut p = Policy::new(PolicyConfig::pessimistic());
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
        let mut p = Policy::new(PolicyConfig::fixed(OutMode::DE));
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DE);
    }

    #[test]
    fn rules_override_default_strategy() {
        // §7.1.2's example: the home network region always starts Out-IE
        // (it sits behind the protective gateway).
        let cfg = PolicyConfig::optimistic()
            .with_rule(cidr("171.64.0.0/16"), Strategy::Pessimistic)
            .with_rule(cidr("18.0.0.0/8"), Strategy::Fixed(OutMode::DE));
        let mut p = Policy::new(cfg);
        assert_eq!(p.mode_for(ip("171.64.7.7")), OutMode::IE);
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::DE);
        assert_eq!(p.mode_for(ip("128.2.0.1")), OutMode::DH); // default
    }

    #[test]
    fn privacy_forces_indirect_everywhere() {
        let mut p = Policy::new(PolicyConfig::optimistic().with_privacy());
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
        assert!(!p.use_dt_for_port(80), "privacy disables DT heuristics too");
        // And no amount of success promotes away from IE.
        for _ in 0..100 {
            assert!(p.record_feedback(ip("18.26.0.5"), false).is_none());
        }
        assert_eq!(p.mode_for(ip("18.26.0.5")), OutMode::IE);
    }

    #[test]
    fn port_heuristics_default_to_http_and_dns() {
        let p = Policy::new(PolicyConfig::default());
        assert!(p.use_dt_for_port(80));
        assert!(p.use_dt_for_port(53));
        assert!(!p.use_dt_for_port(23));
        let p = Policy::new(PolicyConfig::default().without_dt_ports());
        assert!(!p.use_dt_for_port(80));
    }

    #[test]
    fn repeated_retransmissions_demote_step_by_step() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::DH);
        assert_eq!(p.record_feedback(ch, true), None); // 1 of 2
        assert_eq!(
            p.record_feedback(ch, true),
            Some(Transition::Demoted {
                from: OutMode::DH,
                to: OutMode::DE
            })
        );
        assert_eq!(p.mode_for(ch), OutMode::DE);
        p.record_feedback(ch, true);
        assert_eq!(
            p.record_feedback(ch, true),
            Some(Transition::Demoted {
                from: OutMode::DE,
                to: OutMode::IE
            })
        );
        assert_eq!(p.mode_for(ch), OutMode::IE);
        // IE is the floor.
        p.record_feedback(ch, true);
        assert_eq!(p.record_feedback(ch, true), None);
        assert_eq!(p.mode_for(ch), OutMode::IE);
        assert_eq!(p.entry(ch).unwrap().demotions, 2);
    }

    #[test]
    fn success_resets_failure_count() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        let ch = ip("18.26.0.5");
        p.mode_for(ch);
        p.record_feedback(ch, true); // 1 failure
        p.record_feedback(ch, false); // success resets
        p.record_feedback(ch, true); // 1 failure again
        assert_eq!(p.mode_for(ch), OutMode::DH, "no demotion below threshold");
    }

    #[test]
    fn pessimistic_promotes_after_sustained_success() {
        let mut p = Policy::new(PolicyConfig::pessimistic());
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::IE);
        let mut transitions = Vec::new();
        for _ in 0..16 {
            if let Some(t) = p.record_feedback(ch, false) {
                transitions.push(t);
            }
        }
        assert_eq!(
            transitions,
            vec![
                Transition::Promoted {
                    from: OutMode::IE,
                    to: OutMode::DE
                },
                Transition::Promoted {
                    from: OutMode::DE,
                    to: OutMode::DH
                },
            ]
        );
        assert_eq!(p.mode_for(ch), OutMode::DH);
    }

    #[test]
    fn failed_mode_is_never_reprobed() {
        let mut p = Policy::new(PolicyConfig::pessimistic());
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::IE); // create the cache entry
                                                 // Climb to DH, fail there, drop to DE.
        for _ in 0..16 {
            p.record_feedback(ch, false);
        }
        assert_eq!(p.mode_for(ch), OutMode::DH);
        p.record_feedback(ch, true);
        p.record_feedback(ch, true);
        assert_eq!(p.mode_for(ch), OutMode::DE);
        // Sustained success at DE must NOT climb back into DH.
        for _ in 0..100 {
            p.record_feedback(ch, false);
        }
        assert_eq!(p.mode_for(ch), OutMode::DE);
        assert_eq!(p.entry(ch).unwrap().promotions, 2); // only the original climb
    }

    #[test]
    fn fixed_strategy_never_moves() {
        let mut p = Policy::new(PolicyConfig {
            feedback_demotion: true,
            ..PolicyConfig::fixed(OutMode::DH)
        });
        let ch = ip("18.26.0.5");
        p.mode_for(ch);
        for _ in 0..10 {
            assert!(p.record_feedback(ch, true).is_none());
        }
        assert_eq!(p.mode_for(ch), OutMode::DH);
    }

    #[test]
    fn cache_is_per_correspondent() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        let ch1 = ip("18.26.0.5");
        let ch2 = ip("128.2.0.1");
        p.mode_for(ch1);
        p.mode_for(ch2);
        p.record_feedback(ch1, true);
        p.record_feedback(ch1, true);
        assert_eq!(p.mode_for(ch1), OutMode::DE);
        assert_eq!(p.mode_for(ch2), OutMode::DH, "ch2 unaffected");
        p.clear_cache();
        assert_eq!(p.mode_for(ch1), OutMode::DH, "cleared after move");
    }

    #[test]
    fn audit_trail_explains_every_decision_and_transition() {
        let mut p = Policy::new(
            PolicyConfig::optimistic().with_rule(cidr("171.64.0.0/16"), Strategy::Pessimistic),
        );
        let ch = ip("18.26.0.5");
        assert_eq!(p.mode_for(ch), OutMode::DH); // first contact: default strategy
        assert_eq!(p.mode_for(ch), OutMode::DH); // second lookup: cache hit
        p.record_feedback(ch, true);
        p.record_feedback(ch, true); // demotes DH → DE
        assert_eq!(p.mode_for(ch), OutMode::DE);
        assert_eq!(
            p.audit.decisions_for(ch),
            vec![OutMode::DH, OutMode::DH, OutMode::DE]
        );
        assert_eq!(
            p.audit.last_decision(ch),
            Some((OutMode::DE, DecisionReason::CacheHit))
        );
        let reasons: Vec<DecisionReason> = p
            .audit
            .for_correspondent(ch)
            .filter_map(|e| match e.event {
                AuditEvent::Decision { reason, .. } => Some(reason),
                _ => None,
            })
            .collect();
        assert_eq!(
            reasons,
            vec![
                DecisionReason::Default,
                DecisionReason::CacheHit,
                DecisionReason::CacheHit
            ]
        );
        let transitions = p.audit.transitions();
        assert_eq!(transitions.len(), 1);
        assert!(matches!(
            transitions[0].event,
            AuditEvent::Demoted {
                from: OutMode::DH,
                to: OutMode::DE,
                ..
            }
        ));

        // A rule-covered correspondent records its source as Rule.
        p.mode_for(ip("171.64.7.7"));
        assert_eq!(
            p.audit.last_decision(ip("171.64.7.7")),
            Some((OutMode::IE, DecisionReason::Rule))
        );

        // Clearing the cache leaves a visible mark.
        p.clear_cache();
        assert!(p
            .audit
            .entries()
            .any(|e| matches!(e.event, AuditEvent::CacheCleared { entries: 2 })));
    }

    #[test]
    fn cache_resets_at_cap_instead_of_growing() {
        let mut p = Policy::new(PolicyConfig {
            cache_cap: 4,
            ..PolicyConfig::optimistic()
        });
        for i in 0..4u32 {
            p.mode_for(Ipv4Addr(0x0a00_0000 | i));
        }
        assert!(p.entry(Ipv4Addr(0x0a00_0000)).is_some());
        // A fifth distinct correspondent trips the reset; history is gone
        // but the table never exceeds the cap.
        p.mode_for(Ipv4Addr(0x0a00_0004));
        assert!(p.entry(Ipv4Addr(0x0a00_0000)).is_none());
        assert!(p.entry(Ipv4Addr(0x0a00_0004)).is_some());
        // Re-touching a cached correspondent at the cap does not reset.
        for i in 0..3u32 {
            p.mode_for(Ipv4Addr(0x0a00_0000 | i));
        }
        p.mode_for(Ipv4Addr(0x0a00_0004));
        assert!(p.entry(Ipv4Addr(0x0a00_0000)).is_some());
    }

    #[test]
    fn feedback_for_unknown_correspondent_is_ignored() {
        let mut p = Policy::new(PolicyConfig::optimistic());
        assert_eq!(p.record_feedback(ip("9.9.9.9"), true), None);
        assert!(p.entry(ip("9.9.9.9")).is_none());
    }
}
