//! The mobile host's mobility layer.
//!
//! A [`MobileHost`] hook gives an ordinary `netsim` host the paper's full
//! machinery:
//!
//! * a **virtual home interface** holding the permanent home address, so
//!   transport endpoints keep working wherever the physical interface is
//!   plugged in (§2);
//! * the **route-override** implementing all four outgoing modes of §4 —
//!   Out-IE (reverse tunnel via the home agent), Out-DE (tunnel direct to
//!   the correspondent), Out-DH (plain packets, home source address),
//!   Out-DT (plain packets, care-of source address);
//! * **source-address selection** at connection setup (§7.1.1): explicit
//!   binds are honoured, port heuristics may pick the care-of address, and
//!   everything else uses the home address;
//! * acceptance of all four incoming modes of §5 (tunnelled via the home
//!   agent, tunnelled directly, plain to the home address on the local
//!   segment, plain to the care-of address);
//! * the **registration protocol** with retransmission and lifetime
//!   refresh, and deregistration + gratuitous ARP on returning home;
//! * the §7.1.2 **transmission-feedback** loop driving the per-
//!   correspondent method cache in [`crate::policy`].
//!
//! Movement itself ([`move_to`]/[`return_home`]) is a physical act —
//! re-plugging the interface — orchestrated at the [`World`] level.

use std::any::Any;
use std::collections::HashMap;

use bytes::Bytes;

use netsim::device::host::{EncapLayer, MobilityHook, RouteDecision};
use netsim::device::TxMeta;
use netsim::wire::encap::{encapsulate, EncapFormat};
use netsim::wire::ethernet::MacAddr;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::wire::udp::UdpDatagram;
use netsim::{
    FeedbackEvent, Host, IfaceAddr, IfaceNo, NetCtx, NodeId, SegmentId, SimDuration, SimTime,
    TimerHandle, TransformKind, World,
};

use crate::audit::{AuditEvent, AuditTrail};
use crate::modes::{InMode, OutMode};
use crate::policy::{Policy, PolicyConfig, Transition};
use crate::registration::{RegistrationReply, RegistrationRequest, ReplyCode, REGISTRATION_PORT};

/// Where the mobile host currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Attached to the home network; Mobile IP is dormant.
    AtHome,
    /// Attached to a visited network under this care-of address.
    /// Attached to a visited network under this care-of address.
    Away {
        /// The temporary address obtained on the visited network.
        care_of: Ipv4Addr,
    },
}

/// Registration protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegState {
    /// No current registration.
    Unregistered,
    /// Request sent; awaiting the reply matching `ident`.
    /// Request sent; awaiting the reply matching `ident`.
    Pending {
        /// Identification matching the awaited reply.
        ident: u64,
        /// Attempts made so far.
        tries: u32,
    },
    /// The home agent accepted; binding valid until `expires`.
    /// The home agent accepted; binding valid until `expires`.
    Registered {
        /// When the binding lapses unless refreshed.
        expires: SimTime,
    },
    /// Deregistration sent (returning home); awaiting confirmation.
    /// Deregistration sent (returning home); awaiting confirmation.
    Deregistering {
        /// Identification matching the awaited confirmation.
        ident: u64,
    },
}

/// Mobile-host counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MhStats {
    /// Packets sent Out-IE (reverse tunnel via the home agent).
    pub sent_out_ie: u64,
    /// Packets sent Out-DE (tunnelled directly to the correspondent).
    pub sent_out_de: u64,
    /// Packets sent Out-DH (plain, home source address).
    pub sent_out_dh: u64,
    /// Packets sent Out-DT (plain, care-of source address).
    pub sent_out_dt: u64,
    /// Packets received In-IE (via the home-agent tunnel).
    pub recv_in_ie: u64,
    /// Packets received In-DE (tunnelled directly by the sender).
    pub recv_in_de: u64,
    /// Packets received In-DH (plain, to the home address on-link).
    pub recv_in_dh: u64,
    /// Packets received In-DT (plain, to the care-of address).
    pub recv_in_dt: u64,
    /// Registration requests transmitted (including refreshes).
    pub registrations_sent: u64,
    /// Registration retransmissions.
    pub registration_retries: u64,
    /// Registrations abandoned (denied or unanswered).
    pub registration_failures: u64,
    /// Location changes recorded.
    pub handoffs: u64,
    /// Method-cache demotions driven by §7.1.2 feedback.
    pub demotions: u64,
    /// Method-cache upgrade probes that took effect.
    pub promotions: u64,
}

serde::impl_serialize!(MhStats {
    sent_out_ie,
    sent_out_de,
    sent_out_dh,
    sent_out_dt,
    recv_in_ie,
    recv_in_de,
    recv_in_dh,
    recv_in_dt,
    registrations_sent,
    registration_retries,
    registration_failures,
    handoffs,
    demotions,
    promotions
});

impl MhStats {
    /// Packets sent using the given outgoing mode.
    pub fn sent_by(&self, m: OutMode) -> u64 {
        match m {
            OutMode::IE => self.sent_out_ie,
            OutMode::DE => self.sent_out_de,
            OutMode::DH => self.sent_out_dh,
            OutMode::DT => self.sent_out_dt,
        }
    }

    /// Packets received via the given incoming mode.
    pub fn recv_by(&self, m: InMode) -> u64 {
        match m {
            InMode::IE => self.recv_in_ie,
            InMode::DE => self.recv_in_de,
            InMode::DH => self.recv_in_dh,
            InMode::DT => self.recv_in_dt,
        }
    }
}

/// Static mobile-host configuration.
#[derive(Debug, Clone)]
pub struct MobileHostConfig {
    /// Permanent home address and home-network prefix.
    pub home: IfaceAddr,
    /// The home agent's address.
    pub home_agent: Ipv4Addr,
    /// The physical interface that gets re-plugged on movement.
    pub phys_iface: IfaceNo,
    /// Tunnel format for Out-IE/Out-DE.
    pub encap: EncapFormat,
    /// The §7.1 method-selection policy.
    pub policy: PolicyConfig,
    /// Requested binding lifetime, seconds.
    pub reg_lifetime: u16,
    /// Gap between registration retransmissions.
    pub reg_retry: SimDuration,
    /// Registration attempts before giving up.
    pub reg_max_tries: u32,
    /// When set, operate through this foreign agent: register via it, use
    /// its address as the care-of address, and receive the final hop from
    /// it at the link layer. The paper's own stack avoids this mode —
    /// "foreign agents … restrict the freedom of the mobile host to choose
    /// from the full range of possible optimizations" (§2) — and the
    /// restriction is reproduced: only Out-DH is available.
    pub register_via: Option<Ipv4Addr>,
}

impl MobileHostConfig {
    /// Configuration with sane defaults (IP-in-IP, 300 s lifetime, default policy).
    pub fn new(home: &str, home_agent: Ipv4Addr) -> MobileHostConfig {
        MobileHostConfig {
            home: IfaceAddr::parse(home),
            home_agent,
            phys_iface: 0,
            encap: EncapFormat::IpInIp,
            policy: PolicyConfig::default(),
            reg_lifetime: 300,
            reg_retry: SimDuration::from_millis(1_000),
            reg_max_tries: 5,
            register_via: None,
        }
    }

    /// Replace the method-selection policy.
    pub fn with_policy(mut self, p: PolicyConfig) -> Self {
        self.policy = p;
        self
    }

    /// Select the tunnel format.
    pub fn with_encap(mut self, e: EncapFormat) -> Self {
        self.encap = e;
        self
    }
}

// Hook-timer payloads.
pub(crate) const TIMER_KICK: u64 = 0;
const TIMER_REG_RETRY: u64 = 1;
const TIMER_REG_REFRESH: u64 = 2;

/// The mobile host mobility hook.
pub struct MobileHost {
    config: MobileHostConfig,
    location: Location,
    reg: RegState,
    /// The pending registration-lifecycle timer (retry while `Pending`,
    /// refresh while `Registered`) — cancelled in the scheduler whenever
    /// the state that armed it is resolved. The state guards in
    /// [`MobileHost::on_timer`] remain for same-instant races.
    reg_timer: Option<TimerHandle>,
    policy: Policy,
    next_ident: u64,
    /// Last incoming mode seen per correspondent (diagnostics/experiments).
    pub last_in_mode: HashMap<Ipv4Addr, InMode>,
    /// Counters for experiments.
    pub stats: MhStats,
}

impl MobileHost {
    /// A mobility layer starting at home, unregistered.
    pub fn new(config: MobileHostConfig) -> MobileHost {
        let policy = Policy::new(config.policy.clone());
        MobileHost {
            config,
            location: Location::AtHome,
            reg: RegState::Unregistered,
            reg_timer: None,
            policy,
            next_ident: 1,
            last_in_mode: HashMap::new(),
            stats: MhStats::default(),
        }
    }

    /// Install the mobility layer on `node`: adds the virtual home
    /// interface, enables decapsulation, and sets the hook. The physical
    /// interface (index 0) must already exist.
    pub fn install(world: &mut World, node: NodeId, config: MobileHostConfig) {
        let home = config.home;
        let host = world.host_mut(node);
        host.set_decap_capable(true);
        // The virtual home interface: never attached to a segment; exists
        // so the home address is local for transport demultiplexing.
        let vif = host.add_iface(MacAddr::from_index(0x00f0_0000 + node.0 as u32));
        host.set_iface_addr(
            vif,
            Some(IfaceAddr {
                addr: home.addr,
                prefix: netsim::Ipv4Cidr::host(home.addr),
            }),
        );
        host.set_hook(Box::new(MobileHost::new(config)));
    }

    /// Where the mobile currently is.
    pub fn location(&self) -> Location {
        self.location
    }

    /// The static configuration.
    pub fn config(&self) -> &MobileHostConfig {
        &self.config
    }

    /// Current registration-protocol state.
    pub fn registration_state(&self) -> RegState {
        self.reg
    }

    /// Is there a live binding at the home agent?
    pub fn is_registered(&self) -> bool {
        matches!(self.reg, RegState::Registered { .. })
    }

    /// The current care-of address, when away.
    pub fn care_of(&self) -> Option<Ipv4Addr> {
        match self.location {
            Location::Away { care_of } => Some(care_of),
            Location::AtHome => None,
        }
    }

    /// The outgoing mode the policy would use for `correspondent` right now.
    pub fn mode_for(&mut self, correspondent: Ipv4Addr) -> OutMode {
        self.policy.mode_for(correspondent)
    }

    /// Direct access to the policy (experiments tweak rules at runtime).
    pub fn policy_mut(&mut self) -> &mut Policy {
        &mut self.policy
    }

    /// Method-cache hit/miss/eviction/expiry counts since construction —
    /// the decision-quality numbers scale experiments report under cache
    /// pressure.
    pub fn policy_cache_stats(&self) -> crate::policy::CacheStats {
        self.policy.cache_stats()
    }

    /// The mode-decision audit trail: why each method was chosen, every
    /// cache transition, registration step and handoff, timestamped.
    pub fn audit(&self) -> &AuditTrail {
        &self.policy.audit
    }

    /// Record a change of location (the physical re-plugging is the
    /// caller's job — see [`move_to`] and [`crate::dhcp`]). Resets
    /// registration state and the per-correspondent method cache, since
    /// "the permissiveness of the networks over which the packets travel"
    /// has just changed.
    pub fn note_moved(&mut self, location: Location) {
        self.location = location;
        self.reg = RegState::Unregistered;
        self.policy.audit.record(AuditEvent::Handoff {
            care_of: match location {
                Location::Away { care_of } => Some(care_of),
                Location::AtHome => None,
            },
        });
        self.policy.clear_cache();
        self.stats.handoffs += 1;
    }

    fn home(&self) -> Ipv4Addr {
        self.config.home.addr
    }

    fn count_out(&mut self, m: OutMode) {
        match m {
            OutMode::IE => self.stats.sent_out_ie += 1,
            OutMode::DE => self.stats.sent_out_de += 1,
            OutMode::DH => self.stats.sent_out_dh += 1,
            OutMode::DT => self.stats.sent_out_dt += 1,
        }
    }

    fn count_in(&mut self, m: InMode, from: Ipv4Addr) {
        match m {
            InMode::IE => self.stats.recv_in_ie += 1,
            InMode::DE => self.stats.recv_in_de += 1,
            InMode::DH => self.stats.recv_in_dh += 1,
            InMode::DT => self.stats.recv_in_dt += 1,
        }
        self.last_in_mode.insert(from, m);
    }

    fn send_registration(&mut self, lifetime: u16, host: &mut Host, ctx: &mut NetCtx) {
        let (src, care_of, dst) = match (self.location, self.config.register_via) {
            // "Our Mobile IP support software itself communicates using the
            // temporary address when registering" (§6.4).
            (Location::Away { care_of }, None) => (care_of, care_of, self.config.home_agent),
            // Foreign-agent mode: the mobile has no address of its own; it
            // registers through the agent, whose address is the care-of
            // address.
            (Location::Away { .. }, Some(fa)) => (self.home(), fa, fa),
            // Deregistration from home uses the home address itself.
            (Location::AtHome, _) => (self.home(), self.home(), self.config.home_agent),
        };
        let ident = self.next_ident;
        self.next_ident += 1;
        let req = RegistrationRequest {
            lifetime,
            home_address: self.home(),
            home_agent: self.config.home_agent,
            care_of,
            ident,
        };
        let dgram = UdpDatagram::new(
            REGISTRATION_PORT,
            REGISTRATION_PORT,
            Bytes::from(req.emit()),
        );
        let mut pkt = Ipv4Packet::new(src, dst, IpProtocol::Udp, Bytes::from(dgram.emit(src, dst)));
        pkt.ident = host.alloc_ident();
        self.stats.registrations_sent += 1;
        self.policy.audit.set_now(ctx.now);
        self.policy
            .audit
            .record(AuditEvent::RegistrationSent { care_of, lifetime });
        self.reg = if lifetime == 0 {
            RegState::Deregistering { ident }
        } else {
            match self.reg {
                RegState::Pending { tries, .. } => RegState::Pending {
                    ident,
                    tries: tries + 1,
                },
                _ => RegState::Pending { ident, tries: 0 },
            }
        };
        host.send_ip(
            ctx,
            pkt,
            TxMeta {
                skip_override: true,
                ..TxMeta::default()
            },
        );
        if let Some(h) = self.reg_timer.take() {
            ctx.cancel_timer(h);
        }
        self.reg_timer = Some(host.request_hook_timer(ctx, self.config.reg_retry, TIMER_REG_RETRY));
    }

    fn handle_registration_reply(
        &mut self,
        pkt: &Ipv4Packet,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> bool {
        let from_agent =
            pkt.src == self.config.home_agent || Some(pkt.src) == self.config.register_via;
        if pkt.protocol != IpProtocol::Udp || !from_agent {
            return false;
        }
        let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return false;
        };
        if dgram.src_port != REGISTRATION_PORT || dgram.dst_port != REGISTRATION_PORT {
            return false;
        }
        let Ok(reply) = RegistrationReply::parse(&dgram.payload) else {
            return true;
        };
        self.policy.audit.set_now(ctx.now);
        match self.reg {
            RegState::Pending { ident, .. } if reply.ident == ident => match reply.code {
                ReplyCode::Accepted => {
                    let expires = ctx.now + SimDuration::from_secs(u64::from(reply.lifetime));
                    self.reg = RegState::Registered { expires };
                    self.policy.audit.record(AuditEvent::RegistrationAccepted {
                        lifetime: reply.lifetime,
                    });
                    // The pending retry is obsolete; replace it with a
                    // refresh at 80% of the granted lifetime.
                    if let Some(h) = self.reg_timer.take() {
                        ctx.cancel_timer(h);
                    }
                    let refresh = SimDuration::from_secs(u64::from(reply.lifetime) * 4 / 5);
                    self.reg_timer = Some(host.request_hook_timer(ctx, refresh, TIMER_REG_REFRESH));
                }
                ReplyCode::Denied => {
                    self.reg = RegState::Unregistered;
                    self.stats.registration_failures += 1;
                    self.policy.audit.record(AuditEvent::RegistrationDenied);
                    // A denied registration is an anomaly: under flow
                    // sampling, promote the registration conversation to
                    // full capture.
                    ctx.flag_anomaly(self.home(), self.config.home_agent, IpProtocol::Udp);
                    if let Some(h) = self.reg_timer.take() {
                        ctx.cancel_timer(h);
                    }
                }
            },
            RegState::Deregistering { ident } if reply.ident == ident => {
                self.reg = RegState::Unregistered;
                if let Some(h) = self.reg_timer.take() {
                    ctx.cancel_timer(h);
                }
            }
            _ => {} // stale or unsolicited
        }
        true
    }

    /// Encapsulate with the configured format, falling back to IP-in-IP
    /// for fragments (which Minimal Encapsulation cannot carry, RFC 2004).
    /// The fallback must never be "send unencapsulated": that would leak
    /// the home source address onto a possibly-filtered path.
    fn encap_with_fallback(
        &mut self,
        outer_src: Ipv4Addr,
        outer_dst: Ipv4Addr,
        pkt: Ipv4Packet,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> Ipv4Packet {
        let ident = host.alloc_ident();
        let mut outer = encapsulate(self.config.encap, outer_src, outer_dst, &pkt, ident)
            .unwrap_or_else(|| {
                encapsulate(EncapFormat::IpInIp, outer_src, outer_dst, &pkt, ident)
                    .expect("IP-in-IP carries anything")
            });
        outer.ttl = netsim::wire::ipv4::DEFAULT_TTL;
        let format = EncapFormat::from_protocol(outer.protocol).unwrap_or(self.config.encap);
        ctx.trace_transform(TransformKind::Encapsulated(format), Some(&pkt), &outer);
        outer
    }

    fn record_transition(&mut self, t: Option<Transition>) {
        match t {
            Some(Transition::Demoted { .. }) => self.stats.demotions += 1,
            Some(Transition::Promoted { .. }) => self.stats.promotions += 1,
            None => {}
        }
    }
}

impl MobilityHook for MobileHost {
    fn route_outgoing(
        &mut self,
        pkt: Ipv4Packet,
        _meta: TxMeta,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> RouteDecision {
        self.policy.audit.set_now(ctx.now);
        let Location::Away { care_of } = self.location else {
            // At home the mobile host "functions like a normal non-mobile
            // Internet host" (§2).
            return RouteDecision::Continue(pkt);
        };

        // Packets already using the care-of address (or still unaddressed,
        // e.g. DHCP) are plain Out-DT traffic: honour them untouched.
        if pkt.src == care_of || pkt.src.is_unspecified() {
            self.count_out(OutMode::DT);
            return RouteDecision::Continue(pkt);
        }

        // Foreign-agent mode: no care-of address of our own, so neither
        // Out-IE nor Out-DE (their outer source would be the agent's
        // address, which we may not use) nor Out-DT exists. Only Out-DH —
        // exactly the §2 restriction.
        if self.config.register_via.is_some() {
            self.count_out(OutMode::DH);
            return RouteDecision::Continue(pkt);
        }

        // Home-address traffic: choose among the three home-address methods.
        // On-link destinations take the single-hop path regardless of the
        // policy cache (§6.3: same-segment delivery involves no routers).
        if host
            .nic()
            .addr(self.config.phys_iface)
            .is_some_and(|a| a.prefix.contains(pkt.dst))
        {
            self.count_out(OutMode::DH);
            return RouteDecision::Continue(pkt);
        }

        let mode = self.policy.mode_for(pkt.dst);
        match mode {
            OutMode::DH | OutMode::DT => {
                self.count_out(OutMode::DH);
                RouteDecision::Continue(pkt)
            }
            OutMode::DE => {
                self.count_out(OutMode::DE);
                let dst = pkt.dst;
                let outer = self.encap_with_fallback(care_of, dst, pkt, host, ctx);
                RouteDecision::Continue(outer)
            }
            OutMode::IE => {
                self.count_out(OutMode::IE);
                let ha = self.config.home_agent;
                let outer = self.encap_with_fallback(care_of, ha, pkt, host, ctx);
                RouteDecision::Continue(outer)
            }
        }
    }

    fn select_source(
        &mut self,
        dst: Ipv4Addr,
        dst_port: Option<u16>,
        bound: Option<Ipv4Addr>,
        host: &Host,
    ) -> Option<Ipv4Addr> {
        let Location::Away { care_of } = self.location else {
            return None; // at home: normal behaviour
        };
        // §7.1.1: an explicit bind is the application stating its wishes.
        if let Some(b) = bound {
            return Some(b);
        }
        // Foreign-agent mode: the home address is the only address we have.
        if self.config.register_via.is_some() {
            return Some(self.home());
        }
        // Privacy mode conceals the care-of address entirely.
        if self.policy.config.privacy {
            return Some(self.home());
        }
        // Port heuristics: HTTP/DNS-style conversations forgo Mobile IP.
        if let Some(port) = dst_port {
            if self.policy.use_dt_for_port(port) {
                self.policy.audit.record(AuditEvent::DtPortShortCircuit {
                    correspondent: dst,
                    port,
                });
                return Some(care_of);
            }
        }
        let _ = (dst, host);
        Some(self.home())
    }

    fn incoming(
        &mut self,
        pkt: Ipv4Packet,
        layers: &[EncapLayer],
        _iface: IfaceNo,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> Option<Ipv4Packet> {
        if self.handle_registration_reply(&pkt, host, ctx) {
            return None;
        }
        if let Location::Away { care_of } = self.location {
            let mode = if let Some(outermost) = layers.first() {
                if outermost.outer_src == self.config.home_agent {
                    InMode::IE
                } else {
                    InMode::DE
                }
            } else if pkt.dst == self.home() {
                InMode::DH
            } else if pkt.dst == care_of {
                InMode::DT
            } else {
                return Some(pkt); // broadcast/multicast etc.
            };
            self.count_in(mode, pkt.src);
        }
        Some(pkt)
    }

    fn on_timer(&mut self, payload: u64, host: &mut Host, ctx: &mut NetCtx) {
        if matches!(payload, TIMER_REG_RETRY | TIMER_REG_REFRESH) {
            // The stored handle is the timer now firing; drop it so a later
            // cancellation doesn't touch a recycled slot.
            self.reg_timer = None;
        }
        match payload {
            TIMER_KICK => match self.location {
                Location::Away { .. } => {
                    self.reg = RegState::Unregistered;
                    self.send_registration(self.config.reg_lifetime, host, ctx);
                }
                Location::AtHome => {
                    // Reclaim the home address on the wire, then tell the
                    // home agent to stand down.
                    host.send_gratuitous_arp(ctx, self.config.phys_iface, self.home());
                    self.send_registration(0, host, ctx);
                }
            },
            TIMER_REG_RETRY => {
                if let RegState::Pending { tries, .. } = self.reg {
                    if tries + 1 >= self.config.reg_max_tries {
                        self.reg = RegState::Unregistered;
                        self.stats.registration_failures += 1;
                        self.policy.audit.set_now(ctx.now);
                        self.policy.audit.record(AuditEvent::RegistrationTimeout);
                        // Retry exhaustion is an anomaly: promote the
                        // registration conversation under flow sampling.
                        ctx.flag_anomaly(self.home(), self.config.home_agent, IpProtocol::Udp);
                    } else {
                        self.stats.registration_retries += 1;
                        self.send_registration(self.config.reg_lifetime, host, ctx);
                    }
                }
            }
            TIMER_REG_REFRESH
                if matches!(self.reg, RegState::Registered { .. })
                    && matches!(self.location, Location::Away { .. }) =>
            {
                self.send_registration(self.config.reg_lifetime, host, ctx);
            }
            _ => {}
        }
    }

    fn feedback(&mut self, event: FeedbackEvent, now: SimTime) {
        if matches!(self.location, Location::Away { .. }) {
            self.policy.audit.set_now(now);
            let t = self
                .policy
                .record_feedback(event.peer, event.retransmission);
            self.record_transition(t);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ---- movement orchestration ---------------------------------------------------

/// Plug the mobile host into `segment` with the given care-of address and
/// default gateway, then register with the home agent. This is the §2
/// "obtains a temporary 'guest' connection … and registers its new location
/// with its home agent" sequence (address pre-assigned; see [`crate::dhcp`]
/// for automatic assignment).
pub fn move_to(
    world: &mut World,
    node: NodeId,
    segment: SegmentId,
    care_of: &str,
    gateway: Ipv4Addr,
) {
    let coa = IfaceAddr::parse(care_of);
    let phys = {
        let host = world.host_mut(node);
        let hook = host.hook_as::<MobileHost>().expect("MobileHost installed");
        // The filtering landscape differs per network; old conclusions are
        // stale (§7.1.2's history is per-correspondent *and* per-location).
        hook.note_moved(Location::Away { care_of: coa.addr });
        hook.config.phys_iface
    };
    world.reattach(node, phys, segment);
    let host = world.host_mut(node);
    host.set_iface_addr(phys, Some(coa));
    host.clear_routes();
    host.add_route(netsim::Ipv4Cidr::default_route(), phys, Some(gateway));
    // Trigger registration from inside the event loop.
    world.host_do(node, |h, ctx| {
        h.request_hook_timer(ctx, SimDuration::ZERO, TIMER_KICK)
    });
}

/// Plug the mobile host into `segment` served by a foreign agent at
/// `fa_addr`: the mobile gets no address of its own, registers through the
/// agent, and receives tunnelled traffic from it over the final link-layer
/// hop. `gateway` is the segment's ordinary router for outgoing (Out-DH)
/// traffic.
pub fn move_via_foreign_agent(
    world: &mut World,
    node: NodeId,
    segment: SegmentId,
    fa_addr: Ipv4Addr,
    gateway: Ipv4Addr,
) {
    let phys = {
        let host = world.host_mut(node);
        let hook = host.hook_as::<MobileHost>().expect("MobileHost installed");
        hook.config.register_via = Some(fa_addr);
        hook.note_moved(Location::Away { care_of: fa_addr });
        hook.config.phys_iface
    };
    world.reattach(node, phys, segment);
    let host = world.host_mut(node);
    host.set_iface_addr(phys, None); // no guest address at all
    host.clear_routes();
    host.add_route(netsim::Ipv4Cidr::default_route(), phys, Some(gateway));
    world.host_do(node, |h, ctx| {
        h.request_hook_timer(ctx, SimDuration::ZERO, TIMER_KICK)
    });
}

/// Plug the mobile host back into its home segment: restore the home
/// address on the physical interface, deregister, and reclaim the address
/// with gratuitous ARP.
pub fn return_home(
    world: &mut World,
    node: NodeId,
    home_segment: SegmentId,
    home_gateway: Option<Ipv4Addr>,
) {
    let (phys, home) = {
        let host = world.host_mut(node);
        let hook = host.hook_as::<MobileHost>().expect("MobileHost installed");
        hook.config.register_via = None;
        hook.note_moved(Location::AtHome);
        (hook.config.phys_iface, hook.config.home)
    };
    world.reattach(node, phys, home_segment);
    let host = world.host_mut(node);
    host.set_iface_addr(phys, Some(home));
    host.clear_routes();
    if let Some(gw) = home_gateway {
        host.add_route(netsim::Ipv4Cidr::default_route(), phys, Some(gw));
    }
    world.host_do(node, |h, ctx| {
        h.request_hook_timer(ctx, SimDuration::ZERO, TIMER_KICK)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home_agent::{HomeAgent, HomeAgentConfig};
    use crate::policy::Strategy;
    use netsim::wire::icmp::IcmpMessage;
    use netsim::{HostConfig, LinkConfig, RouterConfig};
    use transport::apps::{KeystrokeSession, TcpEchoServer};
    use transport::{tcp, udp};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Canonical little internet:
    ///   home 171.64.15.0/24:   ha(.1) server(.7) gw(.254)   [+ mh at .9]
    ///   visited-a 36.186.0.0/24: gw(.254)                    [coa .99]
    ///   visited-b 128.2.0.0/24:  gw(.254)                    [coa .99]
    ///   ch-net 18.26.0.0/24:   ch(.5) gw(.254)
    /// All joined by one backbone segment.
    struct Net {
        w: World,
        home_seg: SegmentId,
        visited_a: SegmentId,
        visited_b: SegmentId,
        mh: NodeId,
        ha: NodeId,
        ch: NodeId,
        server: NodeId,
    }

    fn build(ch_config: HostConfig) -> Net {
        let mut w = World::new(23);
        let home_seg = w.add_segment(LinkConfig::lan());
        let visited_a = w.add_segment(LinkConfig::lan());
        let visited_b = w.add_segment(LinkConfig::lan());
        let ch_seg = w.add_segment(LinkConfig::lan());
        let backbone = w.add_segment(LinkConfig::wan(15));

        let ha = w.add_host(HostConfig::agent("ha"));
        let server = w.add_host(HostConfig::conventional("server"));
        let ch = w.add_host(ch_config);
        let mh = w.add_host(HostConfig::conventional("mh"));

        let rh = w.add_router(RouterConfig::named("home-gw"));
        let ra = w.add_router(RouterConfig::named("visited-a-gw"));
        let rb = w.add_router(RouterConfig::named("visited-b-gw"));
        let rc = w.add_router(RouterConfig::named("ch-gw"));

        let ha_if = w.attach(ha, home_seg, Some("171.64.15.1/24"));
        w.attach(server, home_seg, Some("171.64.15.7/24"));
        w.attach(rh, home_seg, Some("171.64.15.254/24"));
        w.attach(rh, backbone, Some("192.168.0.1/24"));
        w.attach(ra, visited_a, Some("36.186.0.254/24"));
        w.attach(ra, backbone, Some("192.168.0.2/24"));
        w.attach(rb, visited_b, Some("128.2.0.254/24"));
        w.attach(rb, backbone, Some("192.168.0.3/24"));
        w.attach(rc, ch_seg, Some("18.26.0.254/24"));
        w.attach(rc, backbone, Some("192.168.0.4/24"));
        w.attach(ch, ch_seg, Some("18.26.0.5/24"));
        // MH starts at home.
        w.attach(mh, home_seg, Some("171.64.15.9/24"));
        w.compute_routes();

        HomeAgent::install(
            &mut w,
            ha,
            HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if),
        );
        MobileHost::install(
            &mut w,
            mh,
            MobileHostConfig::new("171.64.15.9/24", ip("171.64.15.1"))
                .with_policy(PolicyConfig::fixed(crate::modes::OutMode::IE)),
        );
        for n in [mh, ch, server] {
            udp::install(w.host_mut(n));
            tcp::install(w.host_mut(n));
        }
        Net {
            w,
            home_seg,
            visited_a,
            visited_b,
            mh,
            ha,
            ch,
            server,
        }
    }

    fn registered(net: &mut Net) -> bool {
        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .is_registered()
    }

    #[test]
    fn moving_away_registers_with_home_agent() {
        let mut net = build(HostConfig::conventional("ch"));
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        assert!(registered(&mut net));
        let hook = net.w.host_mut(net.ha).hook_as::<HomeAgent>().unwrap();
        assert_eq!(
            hook.binding(ip("171.64.15.9")).unwrap().care_of,
            ip("36.186.0.99")
        );
    }

    #[test]
    fn ping_to_home_address_follows_the_mobile() {
        let mut net = build(HostConfig::conventional("ch"));
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        // Conventional CH pings the home address (Figure 1).
        net.w.host_do(net.ch, |h, ctx| {
            h.send_ping(ctx, ip("18.26.0.5"), ip("171.64.15.9"), 1)
        });
        net.w.run_for(SimDuration::from_secs(2));
        assert!(net.w.host(net.ch).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::EchoReply { seq: 1, .. }
        ) && e.from == ip("171.64.15.9")));
        // Incoming was In-IE (via home agent tunnel).
        let hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(hook.stats.recv_in_ie >= 1);
        // Outgoing used the configured Out-IE.
        assert!(hook.stats.sent_out_ie >= 1);
    }

    #[test]
    fn tcp_session_survives_movement_between_networks() {
        // The headline claim (§2): connection durability. A telnet-like
        // session keeps running while the mobile host moves from one
        // visited network to another and back home.
        let mut net = build(HostConfig::conventional("ch"));
        net.w
            .host_mut(net.ch)
            .add_app(Box::new(TcpEchoServer::new(23)));
        net.w.poll_soon(net.ch);

        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        assert!(registered(&mut net));

        // Start a keystroke session typing every 500 ms.
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(KeystrokeSession::new(
                (ip("18.26.0.5"), 23),
                SimDuration::from_millis(500),
                40,
            )));
        net.w.poll_soon(net.mh);
        net.w.run_for(SimDuration::from_secs(5));

        // Mid-session handoff to visited network B.
        move_to(
            &mut net.w,
            net.mh,
            net.visited_b,
            "128.2.0.99/24",
            ip("128.2.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(8));

        // And back home again, mid-session.
        return_home(&mut net.w, net.mh, net.home_seg, Some(ip("171.64.15.254")));
        net.w.run_for(SimDuration::from_secs(30));

        let sess = net
            .w
            .host_mut(net.mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        assert!(sess.broken.is_none(), "session broke: {:?}", sess.broken);
        assert!(
            sess.all_echoed(),
            "typed {} echoed {}",
            sess.typed(),
            sess.echoed
        );
        let hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert_eq!(hook.stats.handoffs, 3);
        assert_eq!(hook.location(), Location::AtHome);
    }

    #[test]
    fn port_heuristic_uses_care_of_address_for_http() {
        let mut net = build(HostConfig::conventional("ch"));
        // Default policy has the port-80 heuristic; switch from Fixed(IE).
        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .policy = Policy::new(PolicyConfig::default());
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        let srv = tcp::listen(net.w.host_mut(net.ch), None, 80);
        let mh = net.mh;
        let conn = net
            .w
            .host_do(mh, |h, ctx| {
                tcp::connect(h, ctx, (ip("18.26.0.5"), 80), None)
            })
            .unwrap();
        net.w.run_for(SimDuration::from_secs(2));
        // The endpoint is the care-of address: plain Out-DT, no Mobile IP.
        assert_eq!(
            tcp::local_endpoint(net.w.host_mut(mh), conn).0,
            ip("36.186.0.99")
        );
        assert_eq!(
            tcp::state(net.w.host_mut(mh), conn),
            tcp::TcpState::Established
        );
        let accepted = tcp::accept(net.w.host_mut(net.ch), srv).unwrap();
        assert_eq!(
            tcp::remote_endpoint(net.w.host_mut(net.ch), accepted).0,
            ip("36.186.0.99")
        );
        // Telnet (23) still gets the home address.
        let conn2 = net
            .w
            .host_do(mh, |h, ctx| {
                tcp::connect(h, ctx, (ip("18.26.0.5"), 23), None)
            })
            .unwrap();
        assert_eq!(
            tcp::local_endpoint(net.w.host_mut(mh), conn2).0,
            ip("171.64.15.9")
        );
        let hook = net.w.host_mut(mh).hook_as::<MobileHost>().unwrap();
        assert!(hook.stats.sent_out_dt >= 1);
    }

    #[test]
    fn explicit_bind_overrides_heuristics() {
        let mut net = build(HostConfig::conventional("ch"));
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        let mh = net.mh;
        // Bind explicitly to the home address even for port 80.
        let c = net
            .w
            .host_do(mh, |h, ctx| {
                tcp::connect(h, ctx, (ip("18.26.0.5"), 80), Some(ip("171.64.15.9")))
            })
            .unwrap();
        assert_eq!(
            tcp::local_endpoint(net.w.host_mut(mh), c).0,
            ip("171.64.15.9")
        );
        // And to the care-of address for port 23.
        let c2 = net
            .w
            .host_do(mh, |h, ctx| {
                tcp::connect(h, ctx, (ip("18.26.0.5"), 23), Some(ip("36.186.0.99")))
            })
            .unwrap();
        assert_eq!(
            tcp::local_endpoint(net.w.host_mut(mh), c2).0,
            ip("36.186.0.99")
        );
    }

    #[test]
    fn privacy_mode_tunnels_everything_through_home() {
        let mut net = build(HostConfig::conventional("ch"));
        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .policy = Policy::new(PolicyConfig::default().with_privacy());
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        net.w
            .host_mut(net.ch)
            .add_app(Box::new(TcpEchoServer::new(80)));
        net.w.poll_soon(net.ch);
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(KeystrokeSession::new(
                (ip("18.26.0.5"), 80), // even the "safe DT" port
                SimDuration::from_millis(100),
                5,
            )));
        net.w.poll_soon(net.mh);
        net.w.run_for(SimDuration::from_secs(5));
        let sess = net
            .w
            .host_mut(net.mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        assert!(sess.all_echoed());
        // The correspondent never saw the care-of address on any packet it
        // received: every packet it got came from the home address.
        let coa = ip("36.186.0.99");
        let ch_deliveries = net.w.trace.events().iter().filter(|e| {
            e.node == net.ch && matches!(e.kind, netsim::TraceEventKind::DeliveredLocal)
        });
        for e in ch_deliveries {
            assert_ne!(e.packet.src, coa, "care-of address leaked to CH");
        }
        let hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(hook.stats.sent_out_ie > 0);
        assert_eq!(hook.stats.sent_out_dt, 0);
        assert_eq!(hook.stats.sent_out_dh, 0);
    }

    #[test]
    fn same_segment_correspondent_gets_single_hop_replies() {
        // Row C (§6.3): CH sits on the visited segment with the MH.
        let mut net = build(HostConfig::conventional("ch"));
        let local_ch = net.w.add_host(HostConfig::conventional("local-ch"));
        net.w.attach(local_ch, net.visited_a, Some("36.186.0.5/24"));
        net.w.compute_routes();
        udp::install(net.w.host_mut(local_ch));
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        // MH pings the local CH from its home address: must go Out-DH
        // directly on the wire, not through the distant home agent.
        net.w.trace.clear();
        let mh = net.mh;
        net.w.host_do(mh, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.9"), ip("36.186.0.5"), 7)
        });
        net.w.run_for(SimDuration::from_secs(1));
        assert!(net
            .w
            .host(mh)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 7, .. })));
        // Outgoing leg took exactly one wire traversal.
        assert_eq!(
            net.w
                .trace
                .hops(|s| s.dst == ip("36.186.0.5") && s.protocol == IpProtocol::Icmp),
            1
        );
        let hook = net.w.host_mut(mh).hook_as::<MobileHost>().unwrap();
        assert!(hook.stats.sent_out_dh >= 1);
        assert!(hook.stats.sent_out_ie == 0);
    }

    #[test]
    fn registration_retries_then_gives_up_without_home_agent() {
        let mut net = build(HostConfig::conventional("ch"));
        // Sabotage: remove the HA hook so registrations go unanswered.
        net.w.host_mut(net.ha).clear_hook();
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(30));
        let hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(!hook.is_registered());
        assert_eq!(hook.registration_state(), RegState::Unregistered);
        assert!(hook.stats.registration_retries >= 1);
        assert_eq!(hook.stats.registration_failures, 1);
        assert_eq!(
            hook.stats.registrations_sent,
            u64::from(hook.config.reg_max_tries)
        );
    }

    #[test]
    fn binding_refresh_keeps_long_sessions_alive() {
        let mut net = build(HostConfig::conventional("ch"));
        // Short lifetime to force refreshes.
        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .config
            .reg_lifetime = 10;
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(35));
        // Still registered after several lifetimes.
        assert!(registered(&mut net));
        let hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(hook.stats.registrations_sent >= 3, "refreshes happened");
        // And the binding still works.
        net.w.host_do(net.server, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.7"), ip("171.64.15.9"), 2)
        });
        net.w.run_for(SimDuration::from_secs(2));
        assert!(net
            .w
            .host(net.server)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 2, .. })));
    }

    #[test]
    fn returning_home_restores_conventional_operation() {
        let mut net = build(HostConfig::conventional("ch"));
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        return_home(&mut net.w, net.mh, net.home_seg, Some(ip("171.64.15.254")));
        net.w.run_for(SimDuration::from_secs(2));

        // HA stood down.
        assert!(!net.w.host(net.ha).intercepts(ip("171.64.15.9")));
        // Direct on-segment ping works and takes one hop each way.
        net.w.trace.clear();
        net.w.host_do(net.server, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.7"), ip("171.64.15.9"), 9)
        });
        net.w.run_for(SimDuration::from_secs(1));
        assert!(net
            .w
            .host(net.server)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 9, .. })));
        assert_eq!(
            net.w.trace.hops(|s| s.dst == ip("171.64.15.9")),
            1,
            "no tunnel involved once home"
        );
    }

    #[test]
    fn feedback_demotion_recovers_when_filters_eat_out_dh() {
        // Optimistic MH behind an egress source filter: Out-DH silently
        // fails; the §7.1.2 feedback must demote to Out-DE (also filtered
        // here? no — DE uses the care-of source, which passes) and traffic
        // must flow.
        let mut net = build(HostConfig::decap_capable("ch"));
        // Visited-A's gateway egress-filters foreign sources. Node order in
        // build(): hosts ha=0, server=1, ch=2, mh=3; routers rh=4, ra=5,
        // rb=6, rc=7. ra's iface 0 is the visited LAN, iface 1 the backbone.
        let ra = netsim::NodeId(5);
        let inside: netsim::Ipv4Cidr = "36.186.0.0/24".parse().unwrap();
        net.w
            .router_mut(ra)
            .filters
            .push(netsim::FilterRule::egress_source_filter(1, inside));

        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .policy = Policy::new(PolicyConfig {
            default_strategy: Strategy::Optimistic,
            dt_ports: vec![],
            ..PolicyConfig::default()
        });
        move_to(
            &mut net.w,
            net.mh,
            net.visited_a,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        net.w
            .host_mut(net.ch)
            .add_app(Box::new(TcpEchoServer::new(23)));
        net.w.poll_soon(net.ch);
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(KeystrokeSession::new(
                (ip("18.26.0.5"), 23),
                SimDuration::from_millis(200),
                10,
            )));
        net.w.poll_soon(net.mh);
        net.w.run_for(SimDuration::from_secs(60));

        let sess = net
            .w
            .host_mut(net.mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        assert!(sess.broken.is_none(), "{:?}", sess.broken);
        assert!(
            sess.all_echoed(),
            "typed {} echoed {}",
            sess.typed(),
            sess.echoed
        );
        let hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(hook.stats.demotions >= 1, "feedback demoted the mode");
        assert_eq!(hook.policy.mode_for(ip("18.26.0.5")), OutMode::DE);
        assert!(hook.stats.sent_out_dh >= 1, "DH was tried first");
        assert!(hook.stats.sent_out_de >= 1, "DE carried the recovery");
    }
}
