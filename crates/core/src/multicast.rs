//! IP multicast and the mobile host (§6.4).
//!
//! "One of the goals of IP multicast is to reduce unnecessary replication
//! of network traffic. Tunneling multicast packets from the home network to
//! the visited network is therefore a little self-defeating. It would be
//! better if the multicast application were able to join the multicast
//! group through its real physical interface on the current local network,
//! rather than through its virtual interface on its distant home network."
//!
//! Two ways for an away mobile to receive a group:
//!
//! * [`join_via_home_agent`] — the home agent joins on the home segment and
//!   tunnels every group packet to the care-of address (unicast, across the
//!   whole backbone, once per subscribed mobile);
//! * [`join_local`] — the mobile joins on its current physical interface
//!   and receives the group natively where it is.
//!
//! Experiment E12 measures the backbone bytes each approach costs.

use std::any::Any;

use netsim::{App, Host, IfaceNo, Ipv4Addr, NetCtx, NodeId, SimDuration, SimTime, World};
use transport::udp;

use crate::home_agent::HomeAgent;

/// A periodic multicast sender (an MBone-session-like source), run as an
/// [`App`].
pub struct MulticastSource {
    /// The multicast group (class-D address).
    pub group: Ipv4Addr,
    /// UDP port to listen on.
    pub port: u16,
    /// Gap between transmissions.
    pub interval: SimDuration,
    /// Packets to send in total.
    pub count: u32,
    /// Bytes per datagram.
    pub payload_len: usize,
    sock: Option<udp::UdpHandle>,
    sent: u32,
    next_at: SimTime,
}

impl MulticastSource {
    /// A source sending `count` datagrams to `group` every `interval`.
    pub fn new(group: Ipv4Addr, port: u16, interval: SimDuration, count: u32) -> MulticastSource {
        assert!(group.is_multicast());
        MulticastSource {
            group,
            port,
            interval,
            count,
            payload_len: 512,
            sock: None,
            sent: 0,
            next_at: SimTime::ZERO,
        }
    }

    /// Delay the first transmission until `at`.
    pub fn starting_at(mut self, at: SimTime) -> MulticastSource {
        self.next_at = at;
        self
    }
}

impl App for MulticastSource {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        if self.sent >= self.count {
            return;
        }
        let sock = *self.sock.get_or_insert_with(|| udp::bind(host, None, 0));
        if ctx.now >= self.next_at {
            let mut payload = vec![0u8; self.payload_len];
            payload[..4].copy_from_slice(&self.sent.to_be_bytes());
            udp::send_to(host, ctx, sock, (self.group, self.port), payload);
            self.sent += 1;
            self.next_at = ctx.now + self.interval;
        }
        if self.sent < self.count {
            host.request_wakeup(ctx, self.interval);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts group datagrams received (however they arrived — natively or via
/// a home-agent tunnel), run as an [`App`].
pub struct MulticastListener {
    /// UDP port to listen on.
    pub port: u16,
    sock: Option<udp::UdpHandle>,
    /// Group datagrams delivered to the listener.
    pub received: u64,
    /// Distinct sequence numbers seen (deduplicates tunnel copies).
    pub distinct: std::collections::HashSet<u32>,
}

impl MulticastListener {
    /// A listener counting group datagrams on `port`.
    pub fn new(port: u16) -> MulticastListener {
        MulticastListener {
            port,
            sock: None,
            received: 0,
            distinct: std::collections::HashSet::new(),
        }
    }
}

impl App for MulticastListener {
    fn poll(&mut self, host: &mut Host, _ctx: &mut NetCtx) {
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, None, self.port));
        while let Some(got) = udp::recv(host, sock) {
            self.received += 1;
            if got.payload.len() >= 4 {
                self.distinct
                    .insert(u32::from_be_bytes(got.payload[..4].try_into().unwrap()));
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Join `group` on a host's physical interface — the §6.4 recommendation.
pub fn join_local(world: &mut World, node: NodeId, iface: IfaceNo, group: Ipv4Addr) {
    world.host_mut(node).join_multicast(iface, group);
}

/// Join `group` "through the virtual interface on the distant home
/// network": the home agent (at `ha_node`, home interface `ha_iface`) joins
/// on the home segment and tunnels the traffic to the mobile registered
/// with home address `home`.
pub fn join_via_home_agent(
    world: &mut World,
    ha_node: NodeId,
    ha_iface: IfaceNo,
    group: Ipv4Addr,
    home: Ipv4Addr,
) {
    let host = world.host_mut(ha_node);
    host.join_multicast(ha_iface, group);
    host.hook_as::<HomeAgent>()
        .expect("home agent installed")
        .subscribe_multicast(group, home);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home_agent::HomeAgentConfig;
    use crate::mobile_host::{move_to, MobileHost, MobileHostConfig};
    use netsim::{HostConfig, LinkConfig, RouterConfig, SegmentId};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    const GROUP: &str = "224.2.0.1";
    const PORT: u16 = 9875;

    struct Net {
        w: World,
        visited: SegmentId,
        backbone: SegmentId,
        mh: NodeId,
        ha: NodeId,
        ha_if: IfaceNo,
    }

    /// Sources on both the home and the visited segment (an MBone-like
    /// session present in both places).
    fn build() -> Net {
        let mut w = World::new(71);
        let home = w.add_segment(LinkConfig::lan());
        let visited = w.add_segment(LinkConfig::lan());
        let backbone = w.add_segment(LinkConfig::wan(20));
        let ha = w.add_host(HostConfig::agent("ha"));
        let mh = w.add_host(HostConfig::conventional("mh"));
        let src_home = w.add_host(HostConfig::conventional("src-home"));
        let src_visited = w.add_host(HostConfig::conventional("src-visited"));
        let rh = w.add_router(RouterConfig::named("rh"));
        let rv = w.add_router(RouterConfig::named("rv"));
        let ha_if = w.attach(ha, home, Some("171.64.15.1/24"));
        w.attach(mh, home, Some("171.64.15.9/24"));
        w.attach(src_home, home, Some("171.64.15.8/24"));
        w.attach(src_visited, visited, Some("36.186.0.8/24"));
        w.attach(rh, home, Some("171.64.15.254/24"));
        w.attach(rh, backbone, Some("192.168.0.1/30"));
        w.attach(rv, backbone, Some("192.168.0.2/30"));
        w.attach(rv, visited, Some("36.186.0.254/24"));
        w.compute_routes();
        HomeAgent::install(
            &mut w,
            ha,
            HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if),
        );
        MobileHost::install(
            &mut w,
            mh,
            MobileHostConfig::new("171.64.15.9/24", ip("171.64.15.1")),
        );
        for n in [ha, mh, src_home, src_visited] {
            udp::install(w.host_mut(n));
        }
        // Both sources emit 10 packets of the same session, starting after
        // the mobile has settled (t = 3 s).
        let start = SimTime::ZERO + SimDuration::from_secs(3);
        w.host_mut(src_home).add_app(Box::new(
            MulticastSource::new(ip(GROUP), PORT, SimDuration::from_millis(500), 10)
                .starting_at(start),
        ));
        w.host_mut(src_visited).add_app(Box::new(
            MulticastSource::new(ip(GROUP), PORT, SimDuration::from_millis(500), 10)
                .starting_at(start),
        ));
        w.poll_soon(src_home);
        w.poll_soon(src_visited);
        Net {
            w,
            visited,
            backbone,
            mh,
            ha,
            ha_if,
        }
    }

    #[test]
    fn tunneled_join_delivers_but_crosses_the_backbone() {
        let mut net = build();
        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(1));
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(MulticastListener::new(PORT)));
        join_via_home_agent(&mut net.w, net.ha, net.ha_if, ip(GROUP), ip("171.64.15.9"));
        net.w.poll_soon(net.mh);
        let backbone_before = net.w.segment_stats(net.backbone).bytes;
        net.w.run_for(SimDuration::from_secs(10));
        let listener = net
            .w
            .host_mut(net.mh)
            .app_as::<MulticastListener>(app)
            .unwrap();
        assert_eq!(listener.received, 10, "got every home-segment packet");
        let backbone_bytes = net.w.segment_stats(net.backbone).bytes - backbone_before;
        // Each ~550-byte packet crossed the backbone inside a tunnel.
        assert!(
            backbone_bytes > 10 * 500,
            "tunnelled multicast must burden the backbone (got {backbone_bytes})"
        );
    }

    #[test]
    fn local_join_delivers_with_zero_backbone_cost() {
        let mut net = build();
        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(1));
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(MulticastListener::new(PORT)));
        join_local(&mut net.w, net.mh, 0, ip(GROUP));
        net.w.poll_soon(net.mh);
        let backbone_before = net.w.segment_stats(net.backbone).bytes;
        net.w.run_for(SimDuration::from_secs(10));
        let listener = net
            .w
            .host_mut(net.mh)
            .app_as::<MulticastListener>(app)
            .unwrap();
        assert_eq!(listener.received, 10, "got every visited-segment packet");
        let backbone_bytes = net.w.segment_stats(net.backbone).bytes - backbone_before;
        // Only registration chatter (if any) crosses; no multicast does.
        assert!(
            backbone_bytes < 500,
            "local join must not burden the backbone (got {backbone_bytes})"
        );
    }

    #[test]
    fn at_home_group_reception_is_native() {
        let mut net = build();
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(MulticastListener::new(PORT)));
        join_local(&mut net.w, net.mh, 0, ip(GROUP));
        net.w.poll_soon(net.mh);
        net.w.run_for(SimDuration::from_secs(10));
        let listener = net
            .w
            .host_mut(net.mh)
            .app_as::<MulticastListener>(app)
            .unwrap();
        assert_eq!(listener.received, 10);
    }
}
