//! Canonical topologies for examples, integration tests and experiments.
//!
//! One parameterized "little Internet" matching the paper's figures:
//!
//! ```text
//!  home 171.64.15.0/24          ch-net 18.26.0.0/24
//!  [ha .1][server .7][mh .9]    [ch .5]
//!        |gw .254|                 |gw .254|
//!        +--------- backbone ----------+
//!        |gw .254|                 |gw .254|
//!  visited-a 36.186.0.0/24      visited-b 128.2.0.0/24
//!  (coa .99, dns .53, fa .10)   (coa .99)
//! ```
//!
//! Knobs: backbone latency (Figure 4's "Japan vs MIT" distance), the §3.1
//! filtering policies at each boundary, the correspondent's awareness level
//! (rows A/B of Figure 10), where the correspondent sits (putting it on
//! visited-a reproduces rows C and Figure 4), redirects, encapsulation
//! format, and the mobile's policy.

use netsim::wire::encap::EncapFormat;
use netsim::{
    FilterRule, HostConfig, IfaceNo, Ipv4Addr, Ipv4Cidr, LinkConfig, NodeId, RouterConfig,
    SegmentId, SimDuration, World,
};
use transport::{tcp, udp};

use crate::correspondent::MobileAwareCh;
use crate::home_agent::{HomeAgent, HomeAgentConfig};
use crate::mobile_host::{self, MobileHost, MobileHostConfig};
use crate::policy::PolicyConfig;

/// Well-known addresses of the canonical topology.
pub mod addrs {
    /// The home agent's address.
    pub const HA: &str = "171.64.15.1";
    /// A conventional server on the home segment.
    pub const SERVER: &str = "171.64.15.7";
    /// The mobile host's permanent home address.
    pub const MH_HOME: &str = "171.64.15.9";
    /// The home address with its on-link prefix.
    pub const MH_HOME_CIDR: &str = "171.64.15.9/24";
    /// The home network.
    pub const HOME_PREFIX: &str = "171.64.15.0/24";
    /// The home network's boundary router.
    pub const HOME_GW: &str = "171.64.15.254";
    /// Care-of address on visited network A.
    pub const COA_A: &str = "36.186.0.99";
    /// Care-of address A with its on-link prefix.
    pub const COA_A_CIDR: &str = "36.186.0.99/24";
    /// Visited network A.
    pub const VISITED_A_PREFIX: &str = "36.186.0.0/24";
    /// Visited network A's boundary router.
    pub const VISITED_A_GW: &str = "36.186.0.254";
    /// Care-of address on visited network B.
    pub const COA_B: &str = "128.2.0.99";
    /// Care-of address B with its on-link prefix.
    pub const COA_B_CIDR: &str = "128.2.0.99/24";
    /// Visited network B.
    pub const VISITED_B_PREFIX: &str = "128.2.0.0/24";
    /// Visited network B's boundary router.
    pub const VISITED_B_GW: &str = "128.2.0.254";
    /// The correspondent host's address in its own domain.
    pub const CH: &str = "18.26.0.5";
    /// The correspondent's network.
    pub const CH_PREFIX: &str = "18.26.0.0/24";
    /// The correspondent when placed on visited network A.
    pub const CH_ON_VISITED: &str = "36.186.0.5";
    /// The DNS server (present when `with_dns` is set).
    pub const DNS: &str = "171.64.15.53";
    /// The mobile host's name in the simulated DNS.
    pub const MH_NAME: &str = "mh.mosquitonet.stanford.edu";
}

/// How mobile-aware the correspondent is (the row of Figure 10 available).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChKind {
    /// Row A only: plain IP stack.
    Conventional,
    /// Row A with Out-DE usable: can decapsulate but has no binding cache.
    DecapCapable,
    /// Rows B/C: full binding cache ([`MobileAwareCh`]).
    MobileAware,
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Deterministic RNG seed for the world.
    pub seed: u64,
    /// One-way backbone latency in milliseconds (Figure 4 sweeps this).
    pub backbone_ms: u64,
    /// Home boundary ingress-filters spoofed home sources (Figure 2).
    pub home_ingress_filter: bool,
    /// Visited-network boundaries egress-filter foreign sources (§3.1).
    pub visited_egress_filter: bool,
    /// The correspondent's mobility-awareness level.
    pub ch_kind: ChKind,
    /// Place the correspondent on visited-a instead of its own domain
    /// (Figure 4 / row C geometry).
    pub ch_on_visited: bool,
    /// Home agent sends ICMP Mobile Host Redirects (Figure 5).
    pub ha_redirects: bool,
    /// Tunnel format for both agents and the mobile.
    pub encap: EncapFormat,
    /// The mobile's method-selection policy.
    pub mh_policy: PolicyConfig,
    /// Add a DNS server ([`addrs::DNS`]) on the home segment, pre-loaded
    /// with the mobile's A record, and a [`crate::dns::TaRegistrar`] app on
    /// the mobile publishing its care-of address (§3.2's DNS mechanism).
    pub with_dns: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 4,
            backbone_ms: 25,
            home_ingress_filter: false,
            visited_egress_filter: false,
            ch_kind: ChKind::Conventional,
            ch_on_visited: false,
            ha_redirects: false,
            encap: EncapFormat::IpInIp,
            mh_policy: PolicyConfig::default(),
            with_dns: false,
        }
    }
}

/// The built scenario: the world plus everything an experiment needs to
/// reference.
pub struct Scenario {
    /// The simulated internetwork.
    pub world: World,
    /// The configuration this scenario was built from.
    pub cfg: ScenarioConfig,
    /// The home Ethernet segment.
    pub home_seg: SegmentId,
    /// Visited network A.
    pub visited_a: SegmentId,
    /// Visited network B.
    pub visited_b: SegmentId,
    /// The correspondent's segment.
    pub ch_seg: SegmentId,
    /// The wide-area backbone joining all domains.
    pub backbone: SegmentId,
    /// The home agent.
    pub ha: NodeId,
    /// The conventional home-segment server.
    pub server: NodeId,
    /// The mobile host.
    pub mh: NodeId,
    /// The correspondent host.
    pub ch: NodeId,
    /// The home network's boundary router.
    pub home_gw: NodeId,
    /// Visited A's boundary router.
    pub visited_a_gw: NodeId,
    /// Visited B's boundary router.
    pub visited_b_gw: NodeId,
    /// The correspondent network's boundary router.
    pub ch_gw: NodeId,
    /// The home agent's interface on the home segment.
    pub ha_home_iface: IfaceNo,
    /// DNS server node, when [`ScenarioConfig::with_dns`] was set.
    pub dns: Option<NodeId>,
}

/// Parse a dotted-quad literal (panics on bad input; test/experiment helper).
pub fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// Parse a CIDR literal (panics on bad input; test/experiment helper).
pub fn cidr(s: &str) -> Ipv4Cidr {
    s.parse().unwrap()
}

/// Build the canonical topology.
pub fn build(cfg: ScenarioConfig) -> Scenario {
    let mut w = World::new(cfg.seed);
    let home_seg = w.add_segment(LinkConfig::lan());
    let visited_a = w.add_segment(LinkConfig::lan());
    let visited_b = w.add_segment(LinkConfig::lan());
    let ch_seg = w.add_segment(LinkConfig::lan());
    let backbone = w.add_segment(LinkConfig::wan(cfg.backbone_ms));

    let ha = w.add_host(HostConfig::agent("ha"));
    let server = w.add_host(HostConfig::conventional("server"));
    let mh = w.add_host(HostConfig::conventional("mh"));
    let ch = w.add_host(match cfg.ch_kind {
        ChKind::Conventional => HostConfig::conventional("ch"),
        ChKind::DecapCapable => HostConfig::decap_capable("ch"),
        ChKind::MobileAware => HostConfig::decap_capable("ch"),
    });

    let home_gw = w.add_router(RouterConfig::named("home-gw"));
    let visited_a_gw = w.add_router(RouterConfig::named("visited-a-gw"));
    let visited_b_gw = w.add_router(RouterConfig::named("visited-b-gw"));
    let ch_gw = w.add_router(RouterConfig::named("ch-gw"));

    let ha_home_iface = w.attach(ha, home_seg, Some("171.64.15.1/24"));
    w.attach(server, home_seg, Some("171.64.15.7/24"));
    w.attach(mh, home_seg, Some(addrs::MH_HOME_CIDR));
    if cfg.ch_on_visited {
        w.attach(ch, visited_a, Some("36.186.0.5/24"));
    } else {
        w.attach(ch, ch_seg, Some("18.26.0.5/24"));
    }

    // Routers: iface 0 = their LAN, iface 1 = backbone.
    w.attach(home_gw, home_seg, Some("171.64.15.254/24"));
    w.attach(home_gw, backbone, Some("192.168.0.1/24"));
    w.attach(visited_a_gw, visited_a, Some("36.186.0.254/24"));
    w.attach(visited_a_gw, backbone, Some("192.168.0.2/24"));
    w.attach(visited_b_gw, visited_b, Some("128.2.0.254/24"));
    w.attach(visited_b_gw, backbone, Some("192.168.0.3/24"));
    w.attach(ch_gw, ch_seg, Some("18.26.0.254/24"));
    w.attach(ch_gw, backbone, Some("192.168.0.4/24"));
    w.compute_routes();

    // §3.1 policies.
    if cfg.home_ingress_filter {
        w.router_mut(home_gw)
            .filters
            .push(FilterRule::ingress_source_filter(
                1,
                cidr(addrs::HOME_PREFIX),
            ));
    }
    if cfg.visited_egress_filter {
        w.router_mut(visited_a_gw)
            .filters
            .push(FilterRule::egress_source_filter(
                1,
                cidr(addrs::VISITED_A_PREFIX),
            ));
        w.router_mut(visited_b_gw)
            .filters
            .push(FilterRule::egress_source_filter(
                1,
                cidr(addrs::VISITED_B_PREFIX),
            ));
    }

    // Agents and hooks.
    let mut ha_cfg = HomeAgentConfig::new(ip(addrs::HA), cidr(addrs::HOME_PREFIX), ha_home_iface)
        .with_encap(cfg.encap);
    if cfg.ha_redirects {
        ha_cfg = ha_cfg.with_redirects();
    }
    HomeAgent::install(&mut w, ha, ha_cfg);
    MobileHost::install(
        &mut w,
        mh,
        MobileHostConfig::new(addrs::MH_HOME_CIDR, ip(addrs::HA))
            .with_policy(cfg.mh_policy.clone())
            .with_encap(cfg.encap),
    );
    if cfg.ch_kind == ChKind::MobileAware {
        MobileAwareCh::install(&mut w, ch);
    }

    for n in [mh, ch, server] {
        udp::install(w.host_mut(n));
        tcp::install(w.host_mut(n));
    }

    let dns = if cfg.with_dns {
        let ns = w.add_host(HostConfig::conventional("ns"));
        w.attach(ns, home_seg, Some("171.64.15.53/24"));
        w.compute_routes();
        udp::install(w.host_mut(ns));
        w.host_mut(ns).add_app(Box::new(
            crate::dns::DnsServer::new().with_a(addrs::MH_NAME, ip(addrs::MH_HOME)),
        ));
        w.poll_soon(ns);
        // The mobile keeps its TA record current.
        w.host_mut(mh)
            .add_app(Box::new(crate::dns::TaRegistrar::new(
                ip(addrs::DNS),
                addrs::MH_NAME,
            )));
        w.poll_soon(mh);
        Some(ns)
    } else {
        None
    };

    Scenario {
        world: w,
        cfg,
        home_seg,
        visited_a,
        visited_b,
        ch_seg,
        backbone,
        ha,
        server,
        mh,
        ch,
        home_gw,
        visited_a_gw,
        visited_b_gw,
        ch_gw,
        ha_home_iface,
        dns,
    }
}

impl Scenario {
    /// Move the mobile host to visited network A and let registration
    /// settle.
    pub fn roam_to_a(&mut self) {
        mobile_host::move_to(
            &mut self.world,
            self.mh,
            self.visited_a,
            addrs::COA_A_CIDR,
            ip(addrs::VISITED_A_GW),
        );
        self.world.run_for(SimDuration::from_secs(2));
    }

    /// Move the mobile host to visited network B and let registration
    /// settle.
    pub fn roam_to_b(&mut self) {
        mobile_host::move_to(
            &mut self.world,
            self.mh,
            self.visited_b,
            addrs::COA_B_CIDR,
            ip(addrs::VISITED_B_GW),
        );
        self.world.run_for(SimDuration::from_secs(2));
    }

    /// Bring the mobile host home and let deregistration settle.
    pub fn go_home(&mut self) {
        mobile_host::return_home(
            &mut self.world,
            self.mh,
            self.home_seg,
            Some(ip(addrs::HOME_GW)),
        );
        self.world.run_for(SimDuration::from_secs(2));
    }

    /// The correspondent's address (depends on placement).
    pub fn ch_addr(&self) -> Ipv4Addr {
        if self.cfg.ch_on_visited {
            ip(addrs::CH_ON_VISITED)
        } else {
            ip(addrs::CH)
        }
    }

    /// The mobile's hook.
    pub fn mh_hook(&mut self) -> &mut MobileHost {
        self.world
            .host_mut(self.mh)
            .hook_as::<MobileHost>()
            .expect("mobile host installed")
    }

    /// Whether the mobile is currently registered.
    pub fn mh_registered(&mut self) -> bool {
        self.mh_hook().is_registered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::wire::icmp::IcmpMessage;

    #[test]
    fn default_scenario_roams_and_registers() {
        let mut s = build(ScenarioConfig::default());
        s.roam_to_a();
        assert!(s.mh_registered());
        s.roam_to_b();
        assert!(s.mh_registered());
        s.go_home();
        assert!(!s.mh_registered());
    }

    #[test]
    fn filtered_scenario_installs_filters() {
        let mut s = build(ScenarioConfig {
            home_ingress_filter: true,
            visited_egress_filter: true,
            ..ScenarioConfig::default()
        });
        s.roam_to_a();
        assert!(s.mh_registered(), "Out-DT registration passes the filters");
        // An Out-DH probe from the mobile is eaten by the visited filter.
        let mh = s.mh;
        let ch_addr = s.ch_addr();
        s.world.trace.clear();
        s.mh_hook().policy_mut().config = PolicyConfig::fixed(crate::modes::OutMode::DH);
        s.world.host_do(mh, |h, ctx| {
            h.send_ping(ctx, ip(addrs::MH_HOME), ch_addr, 1)
        });
        s.world.run_for(SimDuration::from_secs(1));
        let drops = s.world.trace.drops(|p| p.dst == ch_addr);
        assert!(
            drops
                .iter()
                .any(|(_, r)| *r == netsim::DropReason::SourceAddressFilter),
            "expected a source-address-filter drop, got {drops:?}"
        );
    }

    #[test]
    fn ch_on_visited_places_correspondent_with_mobile() {
        let mut s = build(ScenarioConfig {
            ch_on_visited: true,
            ..ScenarioConfig::default()
        });
        s.roam_to_a();
        let mh = s.mh;
        let ch_addr = s.ch_addr();
        s.world.host_do(mh, |h, ctx| {
            h.send_ping(ctx, ip(addrs::MH_HOME), ch_addr, 1)
        });
        s.world.run_for(SimDuration::from_secs(1));
        assert!(s
            .world
            .host(mh)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { .. })));
    }
}
