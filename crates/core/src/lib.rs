#![warn(missing_docs)]
//! # mip-core — Internet Mobility 4x4
//!
//! A reproduction of the system described in *Internet Mobility 4x4*
//! (Stuart Cheshire and Mary Baker, SIGCOMM '96): a Mobile IP stack in
//! which the routing mode for every packet is chosen per conversation —
//! and, when conditions change, per packet — from the paper's 4x4 grid of
//! incoming × outgoing delivery methods.
//!
//! The crate provides:
//!
//! * [`modes`] — the taxonomy itself: [`modes::OutMode`], [`modes::InMode`],
//!   and the Figure 10 classification [`modes::classify`];
//! * [`addr`] — home- vs care-of-address newtypes;
//! * [`registration`] — the MH↔HA registration protocol (UDP 434);
//! * [`home_agent`] — proxy-ARP capture, tunnelling, ICMP Mobile Host
//!   Redirects, reverse-tunnel termination, multicast relay;
//! * [`mobile_host`] — the mobile host's mobility layer: virtual home
//!   interface, the route-override implementing Out-IE/DE/DH/DT, source
//!   selection with §7.1.1 bind semantics and port heuristics, registration
//!   client, and handoff orchestration;
//! * [`policy`] — the per-correspondent method cache with optimistic /
//!   pessimistic / rule-driven probing and §7.1.2 feedback demotion;
//! * [`correspondent`] — mobile-aware correspondent hosts with a binding
//!   cache fed by ICMP redirects, tunnel observation, and DNS;
//! * [`dns`] — a DNS server/resolver with the paper's proposed temporary-
//!   address record extension (§3.2);
//! * [`dhcp`] — minimal automatic address assignment on visited networks;
//! * [`foreign_agent`] — the optional IETF foreign agent (the paper's own
//!   stack avoids it; provided so its restrictions can be measured);
//! * [`multicast`] — §6.4's trade-off: join via home tunnel vs join on the
//!   local interface;
//! * [`scenario`] — canonical topologies used by the examples, integration
//!   tests and experiment drivers.
//!
//! Everything runs on the deterministic `netsim` simulator with real wire
//! formats, so every claim in the paper can be *measured*, not asserted —
//! see the `bench` crate and `EXPERIMENTS.md` at the repository root.

pub mod addr;
pub mod audit;
pub mod correspondent;
pub mod dhcp;
pub mod dns;
pub mod foreign_agent;
pub mod home_agent;
pub mod mobile_host;
pub mod modes;
pub mod multicast;
pub mod policy;
pub mod registration;
pub mod scenario;

pub use addr::{CareOfAddress, HomeAddress};
pub use audit::{AuditEntry, AuditEvent, AuditTrail, DecisionReason};
pub use correspondent::{BindingSource, ChBinding, ChStats, MobileAwareCh};
pub use home_agent::{Binding, HaStats, HomeAgent, HomeAgentConfig};
pub use mobile_host::{
    move_to, move_via_foreign_agent, return_home, Location, MhStats, MobileHost, MobileHostConfig,
    RegState,
};
pub use modes::{best_combination, classify, CellClass, Combination, Environment, InMode, OutMode};
pub use policy::{CacheStats, MethodEntry, Policy, PolicyConfig, Strategy, Transition};
pub use registration::{RegistrationReply, RegistrationRequest, ReplyCode, REGISTRATION_PORT};
