//! Mobile-aware correspondent hosts.
//!
//! §5/§7.2: a correspondent that knows a mobile host's care-of address can
//! bypass the home agent — encapsulating packets itself and sending them
//! directly (In-DE, Figure 5), or, when the mobile is on the same segment,
//! delivering in a single link-layer hop (In-DH). This hook maintains the
//! **binding cache** that makes those choices, fed three ways:
//!
//! 1. ICMP Mobile Host Redirects from the home agent (§3.2, first
//!    mechanism);
//! 2. observation of tunnels arriving *from* the mobile host (a host that
//!    receives Out-DE traffic has just been told the binding — the \[Joh96\]
//!    optimization);
//! 3. explicit installation, e.g. from a DNS temporary-address lookup
//!    (§3.2, second mechanism; see [`crate::dns`]).

use std::any::Any;
use std::collections::HashMap;

use netsim::device::host::{EncapLayer, MobilityHook, RouteDecision};
use netsim::device::TxMeta;
use netsim::wire::encap::{encapsulate, EncapFormat};
use netsim::wire::icmp::IcmpMessage;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::{Host, IfaceNo, NetCtx, NodeId, SimDuration, SimTime, TransformKind, World};

/// Where a cache entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingSource {
    /// ICMP Mobile Host Redirect from the home agent.
    Redirect,
    /// Outer source of a tunnel the mobile host sent us (Out-DE traffic).
    ObservedTunnel,
    /// DNS temporary-address record.
    Dns,
    /// Installed by the application/operator.
    Manual,
}

/// One binding-cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChBinding {
    /// Where tunnelled packets should be sent.
    pub care_of: Ipv4Addr,
    /// When this entry stops being believed.
    pub expires: SimTime,
    /// How the entry was learned.
    pub source: BindingSource,
}

/// Correspondent-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChStats {
    /// Packets sent In-DE (tunnelled directly to the care-of address).
    pub sent_in_de: u64,
    /// Packets sent In-DH (single link-layer hop).
    pub sent_in_dh: u64,
    /// Packets sent the ordinary way (no binding available).
    pub sent_conventional: u64,
    /// Binding-cache entries installed.
    pub bindings_learned: u64,
    /// Bindings dropped because their lifetime ran out.
    pub bindings_expired: u64,
}

serde::impl_serialize!(ChStats {
    sent_in_de,
    sent_in_dh,
    sent_conventional,
    bindings_learned,
    bindings_expired
});

/// The mobile-aware correspondent hook.
pub struct MobileAwareCh {
    cache: HashMap<Ipv4Addr, ChBinding>,
    /// Tunnel format used when encapsulating.
    pub encap: EncapFormat,
    /// Learn bindings from arriving tunnels (mechanism 2). On by default;
    /// §6.1 cautions that automatic decapsulation trades away some firewall
    /// protection, so a paranoid host may disable learning.
    pub learn_from_tunnels: bool,
    /// Accept ICMP redirects (mechanism 1).
    pub accept_redirects: bool,
    /// Lifetime for observed/learned bindings without an explicit one.
    pub default_lifetime: SimDuration,
    /// Counters for experiments.
    pub stats: ChStats,
}

impl Default for MobileAwareCh {
    fn default() -> Self {
        MobileAwareCh::new()
    }
}

impl MobileAwareCh {
    /// A correspondent hook with default settings and an empty cache.
    pub fn new() -> MobileAwareCh {
        MobileAwareCh {
            cache: HashMap::new(),
            encap: EncapFormat::IpInIp,
            learn_from_tunnels: true,
            accept_redirects: true,
            default_lifetime: SimDuration::from_secs(300),
            stats: ChStats::default(),
        }
    }

    /// Install a mobile-aware correspondent hook on `node` (and enable the
    /// decapsulation its row-B role requires).
    pub fn install(world: &mut World, node: NodeId) {
        let host = world.host_mut(node);
        host.set_decap_capable(true);
        host.set_hook(Box::new(MobileAwareCh::new()));
    }

    /// Look up the cached binding for a mobile's home address.
    pub fn binding(&self, home: Ipv4Addr) -> Option<&ChBinding> {
        self.cache.get(&home)
    }

    /// Explicitly install a binding (DNS lookup result, operator action).
    pub fn set_binding(
        &mut self,
        home: Ipv4Addr,
        care_of: Ipv4Addr,
        expires: SimTime,
        source: BindingSource,
    ) {
        self.stats.bindings_learned += 1;
        self.cache.insert(
            home,
            ChBinding {
                care_of,
                expires,
                source,
            },
        );
    }

    /// Drop a cached binding (tests and operator action).
    pub fn clear_binding(&mut self, home: Ipv4Addr) {
        self.cache.remove(&home);
    }

    fn valid_binding(&mut self, home: Ipv4Addr, now: SimTime) -> Option<ChBinding> {
        match self.cache.get(&home).copied() {
            Some(b) if now <= b.expires => Some(b),
            Some(_) => {
                self.cache.remove(&home);
                self.stats.bindings_expired += 1;
                None
            }
            None => None,
        }
    }
}

impl MobilityHook for MobileAwareCh {
    fn route_outgoing(
        &mut self,
        pkt: Ipv4Packet,
        _meta: TxMeta,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> RouteDecision {
        let Some(binding) = self.valid_binding(pkt.dst, ctx.now) else {
            self.stats.sent_conventional += 1;
            return RouteDecision::Continue(pkt);
        };

        // Row C: if the care-of address is on one of our own links, deliver
        // in a single link-layer hop with the IP destination untouched
        // (In-DH): "the IP packet need not pass through any Internet
        // routers at all" (§5).
        for iface in 0..host.nic().iface_count() {
            if let Some(a) = host.nic().addr(iface) {
                if a.prefix.contains(binding.care_of) && host.nic().segment(iface).is_some() {
                    self.stats.sent_in_dh += 1;
                    return RouteDecision::OnLink {
                        iface,
                        next_hop: binding.care_of,
                        pkt,
                    };
                }
            }
        }

        // Row B: encapsulate ourselves and send directly (In-DE, Figure 5).
        let ident = host.alloc_ident();
        match encapsulate(self.encap, pkt.src, binding.care_of, &pkt, ident) {
            Some(mut outer) => {
                outer.ttl = netsim::wire::ipv4::DEFAULT_TTL;
                ctx.trace_transform(TransformKind::Encapsulated(self.encap), Some(&pkt), &outer);
                self.stats.sent_in_de += 1;
                RouteDecision::Continue(outer)
            }
            None => {
                self.stats.sent_conventional += 1;
                RouteDecision::Continue(pkt)
            }
        }
    }

    fn incoming(
        &mut self,
        pkt: Ipv4Packet,
        layers: &[EncapLayer],
        _iface: IfaceNo,
        _host: &mut Host,
        ctx: &mut NetCtx,
    ) -> Option<Ipv4Packet> {
        // Mechanism 1: ICMP Mobile Host Redirect.
        if self.accept_redirects && pkt.protocol == IpProtocol::Icmp {
            if let Ok(IcmpMessage::MobileHostRedirect {
                home,
                care_of,
                lifetime_secs,
            }) = IcmpMessage::parse(&pkt.payload)
            {
                self.set_binding(
                    home,
                    care_of,
                    ctx.now + SimDuration::from_secs(u64::from(lifetime_secs)),
                    BindingSource::Redirect,
                );
                return None; // consumed
            }
        }

        // Mechanism 2: observe tunnels from the mobile host. The outermost
        // layer's source is the care-of address; the inner source is the
        // home address.
        if self.learn_from_tunnels {
            if let Some(outer) = layers.first() {
                if outer.outer_src != pkt.src && !pkt.src.is_unspecified() {
                    let care_of = outer.outer_src;
                    let home = pkt.src;
                    let expires = ctx.now + self.default_lifetime;
                    // Refresh without inflating the learned counter.
                    if self.cache.get(&home).map(|b| b.care_of) != Some(care_of) {
                        self.set_binding(home, care_of, expires, BindingSource::ObservedTunnel);
                    } else if let Some(b) = self.cache.get_mut(&home) {
                        b.expires = expires;
                    }
                }
            }
        }
        Some(pkt)
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home_agent::{HomeAgent, HomeAgentConfig};
    use crate::mobile_host::{move_to, MobileHost, MobileHostConfig};
    use crate::modes::OutMode;
    use crate::policy::PolicyConfig;
    use netsim::wire::icmp::IcmpMessage;
    use netsim::{HostConfig, LinkConfig, RouterConfig, SegmentId};
    use transport::apps::{KeystrokeSession, TcpEchoServer};
    use transport::{tcp, udp};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    struct Net {
        w: World,
        visited: SegmentId,
        mh: NodeId,
        ch: NodeId,
    }

    /// home — backbone — visited, CH in its own domain; HA sends redirects.
    fn build() -> Net {
        let mut w = World::new(31);
        let home = w.add_segment(LinkConfig::lan());
        let visited = w.add_segment(LinkConfig::lan());
        let ch_seg = w.add_segment(LinkConfig::lan());
        let backbone = w.add_segment(LinkConfig::wan(25));

        let ha = w.add_host(HostConfig::agent("ha"));
        let mh = w.add_host(HostConfig::conventional("mh"));
        let ch = w.add_host(HostConfig::conventional("ch"));
        let rh = w.add_router(RouterConfig::named("rh"));
        let rv = w.add_router(RouterConfig::named("rv"));
        let rc = w.add_router(RouterConfig::named("rc"));

        let ha_if = w.attach(ha, home, Some("171.64.15.1/24"));
        w.attach(mh, home, Some("171.64.15.9/24"));
        w.attach(ch, ch_seg, Some("18.26.0.5/24"));
        w.attach(rh, home, Some("171.64.15.254/24"));
        w.attach(rh, backbone, Some("192.168.0.1/24"));
        w.attach(rv, visited, Some("36.186.0.254/24"));
        w.attach(rv, backbone, Some("192.168.0.2/24"));
        w.attach(rc, ch_seg, Some("18.26.0.254/24"));
        w.attach(rc, backbone, Some("192.168.0.3/24"));
        w.compute_routes();

        HomeAgent::install(
            &mut w,
            ha,
            HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if)
                .with_redirects(),
        );
        MobileHost::install(
            &mut w,
            mh,
            MobileHostConfig::new("171.64.15.9/24", ip("171.64.15.1"))
                .with_policy(PolicyConfig::fixed(OutMode::DH).without_dt_ports()),
        );
        MobileAwareCh::install(&mut w, ch);
        for n in [mh, ch] {
            udp::install(w.host_mut(n));
            tcp::install(w.host_mut(n));
        }
        Net { w, visited, mh, ch }
    }

    #[test]
    fn redirect_populates_binding_cache_and_enables_in_de() {
        let mut net = build();
        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        // First packet goes conventionally (via HA), which triggers the
        // redirect (Figure 5's learning step).
        net.w.host_do(net.ch, |h, ctx| {
            h.send_ping(ctx, ip("18.26.0.5"), ip("171.64.15.9"), 1)
        });
        net.w.run_for(SimDuration::from_secs(2));
        {
            let hook = net.w.host_mut(net.ch).hook_as::<MobileAwareCh>().unwrap();
            let b = hook.binding(ip("171.64.15.9")).expect("binding learned");
            assert_eq!(b.care_of, ip("36.186.0.99"));
            assert_eq!(b.source, BindingSource::Redirect);
            assert_eq!(hook.stats.sent_conventional, 1);
        }

        // Second packet is tunnelled directly by the CH (In-DE): it never
        // appears on the home segment.
        net.w.trace.clear();
        net.w.host_do(net.ch, |h, ctx| {
            h.send_ping(ctx, ip("18.26.0.5"), ip("171.64.15.9"), 2)
        });
        net.w.run_for(SimDuration::from_secs(2));
        let hook = net.w.host_mut(net.ch).hook_as::<MobileAwareCh>().unwrap();
        assert_eq!(hook.stats.sent_in_de, 1);
        // The request traveled as a CH-sourced tunnel...
        assert!(
            net.w
                .trace
                .matching(|s| s.protocol == IpProtocol::IpInIp
                    && s.src == ip("18.26.0.5")
                    && s.dst == ip("36.186.0.99"))
                .count()
                > 0
        );
        // ...and the mobile host saw In-DE.
        let mh_hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(mh_hook.stats.recv_in_de >= 1);
        // The reply reached CH (Out-DH allowed in this unfiltered world).
        assert!(net
            .w
            .host(net.ch)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 2, .. })));
    }

    #[test]
    fn tunnel_observation_learns_binding_without_redirects() {
        let mut net = build();
        // Disable redirects at the CH; it must learn from Out-DE tunnels.
        net.w
            .host_mut(net.ch)
            .hook_as::<MobileAwareCh>()
            .unwrap()
            .accept_redirects = false;
        // MH uses Out-DE toward this CH.
        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .policy_mut()
            .config = PolicyConfig::fixed(OutMode::DE).without_dt_ports();

        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        // MH pings CH with Out-DE; CH decapsulates and learns the binding.
        net.w.host_do(net.mh, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.9"), ip("18.26.0.5"), 5)
        });
        net.w.run_for(SimDuration::from_secs(2));
        let hook = net.w.host_mut(net.ch).hook_as::<MobileAwareCh>().unwrap();
        let b = hook
            .binding(ip("171.64.15.9"))
            .expect("learned from tunnel");
        assert_eq!(b.care_of, ip("36.186.0.99"));
        assert_eq!(b.source, BindingSource::ObservedTunnel);
        // The echo *reply* from CH already went In-DE, directly.
        assert_eq!(hook.stats.sent_in_de, 1);
        let mh_hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(mh_hook.stats.recv_in_de >= 1);
    }

    #[test]
    fn in_de_out_de_tcp_conversation_avoids_home_agent_entirely() {
        let mut net = build();
        net.w
            .host_mut(net.mh)
            .hook_as::<MobileHost>()
            .unwrap()
            .policy_mut()
            .config = PolicyConfig::fixed(OutMode::DE).without_dt_ports();
        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));

        net.w
            .host_mut(net.ch)
            .add_app(Box::new(TcpEchoServer::new(23)));
        net.w.poll_soon(net.ch);
        let app = net
            .w
            .host_mut(net.mh)
            .add_app(Box::new(KeystrokeSession::new(
                (ip("18.26.0.5"), 23),
                SimDuration::from_millis(100),
                10,
            )));
        net.w.poll_soon(net.mh);
        net.w.trace.clear();
        net.w.run_for(SimDuration::from_secs(10));

        let sess = net
            .w
            .host_mut(net.mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        assert!(
            sess.all_echoed(),
            "typed {} echoed {}",
            sess.typed(),
            sess.echoed
        );
        // After the CH learns the binding (first segment), no TCP-carrying
        // packet crosses the home segment: nothing in the trace is
        // delivered at or forwarded by the home agent node (node 0).
        let ha_involvement = net.w.trace.events().iter().filter(|e| {
            e.node == netsim::NodeId(0)
                && matches!(
                    e.kind,
                    netsim::TraceEventKind::Forwarded | netsim::TraceEventKind::Sent
                )
                && e.packet
                    .inner
                    .map(|(_, _, p)| p == IpProtocol::Tcp)
                    .unwrap_or(e.packet.protocol == IpProtocol::Tcp)
        });
        // The very first SYN may arrive before the CH has learned the
        // binding (it goes via the HA); everything after is direct.
        assert!(
            ha_involvement.count() <= 2,
            "home agent stayed in the TCP path"
        );
    }

    #[test]
    fn same_segment_binding_gives_single_hop_in_dh() {
        let mut net = build();
        // Put a mobile-aware CH on the visited segment itself.
        let local_ch = net.w.add_host(HostConfig::conventional("local-ch"));
        net.w.attach(local_ch, net.visited, Some("36.186.0.5/24"));
        net.w.compute_routes();
        MobileAwareCh::install(&mut net.w, local_ch);
        udp::install(net.w.host_mut(local_ch));

        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        // Manually install the binding (e.g. from DNS).
        let far_future = net.w.now() + SimDuration::from_secs(600);
        net.w
            .host_mut(local_ch)
            .hook_as::<MobileAwareCh>()
            .unwrap()
            .set_binding(
                ip("171.64.15.9"),
                ip("36.186.0.99"),
                far_future,
                BindingSource::Dns,
            );

        net.w.trace.clear();
        net.w.host_do(local_ch, |h, ctx| {
            h.send_ping(ctx, ip("36.186.0.5"), ip("171.64.15.9"), 3)
        });
        net.w.run_for(SimDuration::from_secs(1));

        // Request: exactly one wire traversal, no encapsulation, IP dst is
        // the home address (In-DH as drawn in Figure 8).
        assert_eq!(
            net.w
                .trace
                .hops(|s| s.dst == ip("171.64.15.9") && s.protocol == IpProtocol::Icmp),
            1
        );
        let hook = net.w.host_mut(local_ch).hook_as::<MobileAwareCh>().unwrap();
        assert_eq!(hook.stats.sent_in_dh, 1);
        assert_eq!(hook.stats.sent_in_de, 0);
        // MH recorded In-DH and replied; reply received.
        let mh_hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(mh_hook.stats.recv_in_dh >= 1);
        assert!(net
            .w
            .host(local_ch)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 3, .. })));
    }

    #[test]
    fn expired_binding_falls_back_to_conventional() {
        let mut net = build();
        move_to(
            &mut net.w,
            net.mh,
            net.visited,
            "36.186.0.99/24",
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(2));
        let soon = net.w.now() + SimDuration::from_secs(1);
        net.w
            .host_mut(net.ch)
            .hook_as::<MobileAwareCh>()
            .unwrap()
            .set_binding(
                ip("171.64.15.9"),
                ip("36.186.0.99"),
                soon,
                BindingSource::Manual,
            );
        net.w.run_for(SimDuration::from_secs(5));
        // Binding now expired: next send is conventional and purges it.
        net.w.host_do(net.ch, |h, ctx| {
            h.send_ping(ctx, ip("18.26.0.5"), ip("171.64.15.9"), 4)
        });
        net.w.run_for(SimDuration::from_secs(2));
        let hook = net.w.host_mut(net.ch).hook_as::<MobileAwareCh>().unwrap();
        assert_eq!(hook.stats.bindings_expired, 1);
        assert!(hook.stats.sent_conventional >= 1);
    }
}
