//! Mode-decision audit trail.
//!
//! The paper's §7.1 machinery makes a *decision* for every outgoing packet
//! — which of the four delivery methods to use — and revises it from
//! transmission feedback. The policy code records what it decided; this
//! module records *why*, with a timestamped, machine-readable event for
//! every policy-table lookup, method-cache transition, registration step
//! and handoff, so experiments can assert causal sequences ("the first
//! lookup missed the cache and chose Out-DH from the optimistic default;
//! two retransmission signals later it was demoted to Out-DE") instead of
//! eyeballing counters.
//!
//! The trail is a bounded ring buffer: recording never allocates without
//! bound, and shed entries are counted so a truncated history is visible
//! as such.

use std::collections::VecDeque;

use netsim::{Ipv4Addr, SimTime};
use serde::{Serialize, Value};

use crate::modes::OutMode;

/// Where a freshly decided mode came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Privacy mode forces Out-IE for everything (§4).
    Privacy,
    /// A §7.1.2 address/mask rule matched the correspondent.
    Rule,
    /// No rule matched; the configured default strategy applied.
    Default,
    /// An existing method-cache entry was reused ("the mobile host keeps a
    /// cache of the currently selected delivery method", §7.1).
    CacheHit,
}

impl DecisionReason {
    fn as_str(self) -> &'static str {
        match self {
            DecisionReason::Privacy => "privacy",
            DecisionReason::Rule => "rule",
            DecisionReason::Default => "default",
            DecisionReason::CacheHit => "cache-hit",
        }
    }
}

/// One recorded policy-layer happening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEvent {
    /// A policy-table lookup chose `mode` for `correspondent`.
    Decision {
        /// The destination being decided for.
        correspondent: Ipv4Addr,
        /// The method selected.
        mode: OutMode,
        /// Why this method: cache hit, rule, default, or privacy.
        reason: DecisionReason,
    },
    /// The §7.1.1 port heuristic sent a conversation Out-DT, bypassing the
    /// method cache entirely.
    DtPortShortCircuit {
        /// The destination of the conversation.
        correspondent: Ipv4Addr,
        /// The destination port that matched (e.g. 80, 53).
        port: u16,
    },
    /// Failure signals demoted the method one step toward Out-IE (§7.1.2).
    Demoted {
        /// The correspondent whose method moved.
        correspondent: Ipv4Addr,
        /// The method that was failing.
        from: OutMode,
        /// The more conservative replacement.
        to: OutMode,
    },
    /// Sustained success probed a more aggressive method.
    Promoted {
        /// The correspondent whose method moved.
        correspondent: Ipv4Addr,
        /// The method that kept succeeding.
        from: OutMode,
        /// The more aggressive probe now in effect.
        to: OutMode,
    },
    /// The method cache was emptied (normally on movement: the filtering
    /// landscape has changed, so old conclusions are stale).
    CacheCleared {
        /// How many entries were discarded.
        entries: usize,
    },
    /// The method cache was at capacity and the LRU discipline displaced
    /// its coldest correspondent to admit a new one. Learned history for
    /// `correspondent` is gone; its next contact decides afresh.
    Evicted {
        /// The correspondent whose entry was displaced.
        correspondent: Ipv4Addr,
        /// The method that was in effect when the entry was displaced.
        mode: OutMode,
    },
    /// A TTL'd method-cache entry sat untouched past its lifetime and was
    /// discarded on its next lookup.
    Expired {
        /// The correspondent whose stale entry was discarded.
        correspondent: Ipv4Addr,
    },
    /// Transmission feedback arrived for a correspondent absent from the
    /// method cache after evictions have occurred: the signal may concern
    /// history the LRU displaced, and is dropped.
    FeedbackIgnored {
        /// The correspondent the feedback concerned.
        correspondent: Ipv4Addr,
    },
    /// A registration request left the mobile host.
    RegistrationSent {
        /// The care-of address being registered.
        care_of: Ipv4Addr,
        /// Requested binding lifetime, seconds; 0 deregisters.
        lifetime: u16,
    },
    /// The home agent accepted a registration.
    RegistrationAccepted {
        /// The granted binding lifetime, seconds.
        lifetime: u16,
    },
    /// The home agent denied a registration.
    RegistrationDenied,
    /// Registration abandoned after exhausting retries.
    RegistrationTimeout,
    /// The mobile host changed location. `None` means it returned home.
    Handoff {
        /// The new care-of address, or `None` at home.
        care_of: Option<Ipv4Addr>,
    },
}

impl AuditEvent {
    /// The short machine-readable tag identifying the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditEvent::Decision { .. } => "decision",
            AuditEvent::DtPortShortCircuit { .. } => "dt-port",
            AuditEvent::Demoted { .. } => "demoted",
            AuditEvent::Promoted { .. } => "promoted",
            AuditEvent::CacheCleared { .. } => "cache-cleared",
            AuditEvent::Evicted { .. } => "evicted",
            AuditEvent::Expired { .. } => "expired",
            AuditEvent::FeedbackIgnored { .. } => "feedback-ignored",
            AuditEvent::RegistrationSent { .. } => "registration-sent",
            AuditEvent::RegistrationAccepted { .. } => "registration-accepted",
            AuditEvent::RegistrationDenied => "registration-denied",
            AuditEvent::RegistrationTimeout => "registration-timeout",
            AuditEvent::Handoff { .. } => "handoff",
        }
    }

    /// The correspondent this event concerns, when it concerns one.
    pub fn correspondent(&self) -> Option<Ipv4Addr> {
        match *self {
            AuditEvent::Decision { correspondent, .. }
            | AuditEvent::DtPortShortCircuit { correspondent, .. }
            | AuditEvent::Demoted { correspondent, .. }
            | AuditEvent::Promoted { correspondent, .. }
            | AuditEvent::Evicted { correspondent, .. }
            | AuditEvent::Expired { correspondent }
            | AuditEvent::FeedbackIgnored { correspondent } => Some(correspondent),
            _ => None,
        }
    }
}

impl Serialize for AuditEvent {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("kind".into(), Value::Str(self.kind().into()))];
        let mut put = |k: &str, v: Value| fields.push((k.into(), v));
        match *self {
            AuditEvent::Decision {
                correspondent,
                mode,
                reason,
            } => {
                put("correspondent", Value::Str(correspondent.to_string()));
                put("mode", Value::Str(mode.to_string()));
                put("reason", Value::Str(reason.as_str().into()));
            }
            AuditEvent::DtPortShortCircuit {
                correspondent,
                port,
            } => {
                put("correspondent", Value::Str(correspondent.to_string()));
                put("port", Value::U64(port.into()));
            }
            AuditEvent::Demoted {
                correspondent,
                from,
                to,
            }
            | AuditEvent::Promoted {
                correspondent,
                from,
                to,
            } => {
                put("correspondent", Value::Str(correspondent.to_string()));
                put("from", Value::Str(from.to_string()));
                put("to", Value::Str(to.to_string()));
            }
            AuditEvent::CacheCleared { entries } => {
                put("entries", Value::U64(entries as u64));
            }
            AuditEvent::Evicted {
                correspondent,
                mode,
            } => {
                put("correspondent", Value::Str(correspondent.to_string()));
                put("mode", Value::Str(mode.to_string()));
            }
            AuditEvent::Expired { correspondent }
            | AuditEvent::FeedbackIgnored { correspondent } => {
                put("correspondent", Value::Str(correspondent.to_string()));
            }
            AuditEvent::RegistrationSent { care_of, lifetime } => {
                put("care_of", Value::Str(care_of.to_string()));
                put("lifetime", Value::U64(lifetime.into()));
            }
            AuditEvent::RegistrationAccepted { lifetime } => {
                put("lifetime", Value::U64(lifetime.into()));
            }
            AuditEvent::RegistrationDenied | AuditEvent::RegistrationTimeout => {}
            AuditEvent::Handoff { care_of } => {
                put(
                    "care_of",
                    match care_of {
                        Some(a) => Value::Str(a.to_string()),
                        None => Value::Null,
                    },
                );
            }
        }
        Value::Object(fields)
    }
}

/// One timestamped entry in the trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEntry {
    /// Simulated time the event was recorded.
    pub at: SimTime,
    /// What happened.
    pub event: AuditEvent,
}

impl Serialize for AuditEntry {
    fn to_value(&self) -> Value {
        let Value::Object(mut fields) = self.event.to_value() else {
            unreachable!("AuditEvent serializes to an object");
        };
        fields.insert(0, ("t_us".into(), Value::U64(self.at.0)));
        Value::Object(fields)
    }
}

/// Default ring capacity: plenty for any experiment's decision history
/// while bounding a long-running simulation.
pub const DEFAULT_AUDIT_CAPACITY: usize = 4096;

/// The bounded, timestamped event trail kept by a [`crate::Policy`].
#[derive(Debug)]
pub struct AuditTrail {
    entries: VecDeque<AuditEntry>,
    capacity: usize,
    shed: u64,
    now: SimTime,
}

impl Default for AuditTrail {
    fn default() -> Self {
        AuditTrail::new()
    }
}

impl AuditTrail {
    /// An empty trail with the default capacity.
    pub fn new() -> AuditTrail {
        AuditTrail::with_capacity(DEFAULT_AUDIT_CAPACITY)
    }

    /// An empty trail keeping at most `capacity` entries (oldest shed).
    pub fn with_capacity(capacity: usize) -> AuditTrail {
        AuditTrail {
            entries: VecDeque::new(),
            capacity,
            shed: 0,
            now: SimTime::ZERO,
        }
    }

    /// Update the clock stamped onto subsequently recorded events. The
    /// policy layer itself has no notion of time; the mobility hook calls
    /// this whenever the simulator hands it the current time.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The clock last set by [`AuditTrail::set_now`]. The policy layer
    /// reads this as its notion of "now" for LRU stamps and TTL expiry,
    /// so cache aging runs on the same sim-time the trail records.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Append one event at the current clock.
    pub(crate) fn record(&mut self, event: AuditEvent) {
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.shed += 1;
        }
        if self.capacity > 0 {
            self.entries.push_back(AuditEntry {
                at: self.now,
                event,
            });
        } else {
            self.shed += 1;
        }
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter()
    }

    /// Retained entries concerning one correspondent, oldest first.
    pub fn for_correspondent(&self, correspondent: Ipv4Addr) -> impl Iterator<Item = &AuditEntry> {
        self.entries
            .iter()
            .filter(move |e| e.event.correspondent() == Some(correspondent))
    }

    /// The modes chosen for `correspondent`, in decision order.
    pub fn decisions_for(&self, correspondent: Ipv4Addr) -> Vec<OutMode> {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                AuditEvent::Decision {
                    correspondent: c,
                    mode,
                    ..
                } if c == correspondent => Some(mode),
                _ => None,
            })
            .collect()
    }

    /// The most recent decision for `correspondent`: the answer to "which
    /// mode is in use, and why?".
    pub fn last_decision(&self, correspondent: Ipv4Addr) -> Option<(OutMode, DecisionReason)> {
        self.entries.iter().rev().find_map(|e| match e.event {
            AuditEvent::Decision {
                correspondent: c,
                mode,
                reason,
            } if c == correspondent => Some((mode, reason)),
            _ => None,
        })
    }

    /// Every demotion/promotion, oldest first.
    pub fn transitions(&self) -> Vec<AuditEntry> {
        self.entries
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    AuditEvent::Demoted { .. } | AuditEvent::Promoted { .. }
                )
            })
            .copied()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the trail empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries shed because the ring was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Total events ever recorded, retained or shed.
    pub fn recorded(&self) -> u64 {
        self.entries.len() as u64 + self.shed
    }

    /// The ring's capacity: the most entries it will retain.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forget everything recorded so far (capacity and clock kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.shed = 0;
    }
}

impl Serialize for AuditTrail {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            (
                "entries".to_string(),
                Value::Array(self.entries.iter().map(|e| e.to_value()).collect()),
            ),
            ("shed".to_string(), Value::U64(self.shed)),
        ];
        if self.shed > 0 {
            // A truncated history must be legible as such: say how big the
            // window was and how much passed through it. Omitted when
            // nothing was shed so untruncated reports stay byte-stable.
            fields.push(("capacity".to_string(), Value::U64(self.capacity as u64)));
            fields.push(("recorded".to_string(), Value::U64(self.recorded())));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn decision(c: &str, mode: OutMode, reason: DecisionReason) -> AuditEvent {
        AuditEvent::Decision {
            correspondent: ip(c),
            mode,
            reason,
        }
    }

    #[test]
    fn records_carry_the_last_set_clock() {
        let mut t = AuditTrail::new();
        t.set_now(SimTime(500));
        t.record(decision("10.0.0.1", OutMode::DH, DecisionReason::Default));
        t.set_now(SimTime(900));
        t.record(AuditEvent::RegistrationDenied);
        let at: Vec<u64> = t.entries().map(|e| e.at.0).collect();
        assert_eq!(at, vec![500, 900]);
    }

    #[test]
    fn ring_sheds_oldest_and_counts() {
        let mut t = AuditTrail::with_capacity(2);
        for i in 0..5u16 {
            t.record(AuditEvent::RegistrationAccepted { lifetime: i });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.shed(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.capacity(), 2);
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"capacity\":2"), "{json}");
        assert!(json.contains("\"recorded\":5"), "{json}");
        let kept: Vec<u16> = t
            .entries()
            .map(|e| match e.event {
                AuditEvent::RegistrationAccepted { lifetime } => lifetime,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn queries_filter_by_correspondent() {
        let mut t = AuditTrail::new();
        t.record(decision("10.0.0.1", OutMode::DH, DecisionReason::Default));
        t.record(decision("10.0.0.2", OutMode::IE, DecisionReason::Rule));
        t.record(AuditEvent::Demoted {
            correspondent: ip("10.0.0.1"),
            from: OutMode::DH,
            to: OutMode::DE,
        });
        t.record(decision("10.0.0.1", OutMode::DE, DecisionReason::CacheHit));
        assert_eq!(
            t.decisions_for(ip("10.0.0.1")),
            vec![OutMode::DH, OutMode::DE]
        );
        assert_eq!(
            t.last_decision(ip("10.0.0.1")),
            Some((OutMode::DE, DecisionReason::CacheHit))
        );
        assert_eq!(
            t.last_decision(ip("10.0.0.2")),
            Some((OutMode::IE, DecisionReason::Rule))
        );
        assert_eq!(t.for_correspondent(ip("10.0.0.1")).count(), 3);
        assert_eq!(t.transitions().len(), 1);
    }

    #[test]
    fn serializes_to_tagged_objects() {
        let mut t = AuditTrail::new();
        t.set_now(SimTime(42));
        t.record(decision("10.0.0.9", OutMode::IE, DecisionReason::Privacy));
        let json = serde_json::to_string(&t).unwrap();
        // Untruncated trails omit the capacity fields: reports from runs
        // that never shed stay byte-identical.
        assert!(!json.contains("capacity"), "{json}");
        assert!(json.contains("\"t_us\":42"), "{json}");
        assert!(json.contains("\"kind\":\"decision\""), "{json}");
        assert!(json.contains("\"mode\":\"Out-IE\""), "{json}");
        assert!(json.contains("\"reason\":\"privacy\""), "{json}");
    }
}
