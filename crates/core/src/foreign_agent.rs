//! The optional IETF foreign agent.
//!
//! §2: "When connecting via a foreign agent, the home agent tunnels packets
//! to this foreign agent, which decapsulates them and delivers the enclosed
//! packet to the mobile host" — over the final link-layer hop, which is the
//! In-DH delivery technique (§5: "this delivery technique is already used
//! when a mobile host operates using a separate foreign agent").
//!
//! The paper's own stack deliberately avoids foreign agents ("It is
//! impractical for mobile hosts to assume that foreign agent services will
//! be available everywhere… they also restrict the freedom of the mobile
//! host to choose from the full range of possible optimizations"). The
//! module exists so that restriction can be *measured*: a mobile host in
//! FA mode (see [`crate::mobile_host::move_via_foreign_agent`]) has only
//! Out-DH available, and experiment E9's ablation compares the two
//! deployments.

use std::any::Any;
use std::collections::HashMap;

use bytes::Bytes;

use netsim::device::host::{EncapLayer, MobilityHook};
use netsim::device::nic::NextHop;
use netsim::device::TxMeta;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::wire::udp::UdpDatagram;
use netsim::{
    Host, IfaceNo, NetCtx, NodeId, SimDuration, SimTime, TimerHandle, TraceEventKind,
    TransformKind, World,
};
use transport::udp;

use crate::registration::{RegistrationReply, RegistrationRequest, REGISTRATION_PORT};

/// UDP port for foreign-agent advertisements (the real protocol piggybacks
/// on ICMP router advertisements; a dedicated port keeps the simulation
/// honest about the information carried).
pub const FA_ADVERTISEMENT_PORT: u16 = 435;

/// Foreign-agent counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaStats {
    /// Registration requests relayed toward home agents.
    pub requests_relayed: u64,
    /// Registration replies relayed back to mobiles.
    pub replies_relayed: u64,
    /// Tunnelled packets delivered over the final hop.
    pub packets_delivered: u64,
    /// Agent advertisements broadcast.
    pub advertisements_sent: u64,
}

serde::impl_serialize!(FaStats {
    requests_relayed,
    replies_relayed,
    packets_delivered,
    advertisements_sent
});

/// Foreign-agent configuration.
#[derive(Debug, Clone)]
pub struct ForeignAgentConfig {
    /// The agent's address — the care-of address its visitors share.
    pub addr: Ipv4Addr,
    /// Interface on the visited segment (for final-hop delivery).
    pub visited_iface: IfaceNo,
    /// Broadcast advertisements this often (`None` = quiet).
    pub advertise_every: Option<SimDuration>,
}

/// The foreign-agent mobility hook.
pub struct ForeignAgent {
    config: ForeignAgentConfig,
    /// Registered visitors: home address → binding expiry.
    visitors: HashMap<Ipv4Addr, SimTime>,
    /// Outstanding relayed registrations: ident → home address.
    pending: HashMap<u64, Ipv4Addr>,
    /// The pending advertisement timer, so [`stop_advertising`] can remove
    /// it from the scheduler instead of letting it fire into a guard.
    adv_timer: Option<TimerHandle>,
    /// Counters for experiments.
    pub stats: FaStats,
}

const TIMER_ADVERTISE: u64 = 100;

impl ForeignAgent {
    /// A foreign-agent hook with no visitors yet.
    pub fn new(config: ForeignAgentConfig) -> ForeignAgent {
        ForeignAgent {
            config,
            visitors: HashMap::new(),
            pending: HashMap::new(),
            adv_timer: None,
            stats: FaStats::default(),
        }
    }

    /// Install a foreign agent on `node` and start its advertisements.
    pub fn install(world: &mut World, node: NodeId, config: ForeignAgentConfig) {
        let advertise = config.advertise_every;
        let host = world.host_mut(node);
        host.set_decap_capable(true);
        host.set_hook(Box::new(ForeignAgent::new(config)));
        if advertise.is_some() {
            let h = world.host_do(node, |h, ctx| {
                h.request_hook_timer(ctx, SimDuration::ZERO, TIMER_ADVERTISE)
            });
            world.host_do(node, move |host, _| {
                if let Some(fa) = host.hook_as::<ForeignAgent>() {
                    fa.adv_timer = Some(h);
                }
            });
        }
    }

    /// Number of currently registered visitors.
    pub fn visitor_count(&self) -> usize {
        self.visitors.len()
    }

    /// Is this home address registered through us?
    pub fn is_visiting(&self, home: Ipv4Addr) -> bool {
        self.visitors.contains_key(&home)
    }

    /// Deliver `pkt` to the visiting mobile in one link-layer hop: the IP
    /// destination stays the home address; ARP resolves it on the segment
    /// (the mobile answers for its own home address).
    fn deliver_final_hop(&mut self, pkt: Ipv4Packet, host: &mut Host, ctx: &mut NetCtx) {
        let home = pkt.dst;
        self.stats.packets_delivered += 1;
        ctx.trace_transform(TransformKind::Relayed, Some(&pkt), &pkt);
        host.nic_mut().send_ip(
            ctx,
            self.config.visited_iface,
            NextHop::Unicast(home),
            pkt,
            TraceEventKind::Forwarded,
        );
    }

    fn handle_registration_traffic(
        &mut self,
        pkt: &Ipv4Packet,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> bool {
        let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return false;
        };
        if dgram.dst_port != REGISTRATION_PORT {
            return false;
        }
        if let Ok(req) = RegistrationRequest::parse(&dgram.payload) {
            // Relay toward the home agent, forcing our address as care-of.
            let relayed = RegistrationRequest {
                care_of: self.config.addr,
                ..req
            };
            self.pending.insert(req.ident, req.home_address);
            let out_dgram = UdpDatagram::new(
                REGISTRATION_PORT,
                REGISTRATION_PORT,
                Bytes::from(relayed.emit()),
            );
            let mut out = Ipv4Packet::new(
                self.config.addr,
                req.home_agent,
                IpProtocol::Udp,
                Bytes::from(out_dgram.emit(self.config.addr, req.home_agent)),
            );
            out.ident = host.alloc_ident();
            self.stats.requests_relayed += 1;
            host.send_ip(
                ctx,
                out,
                TxMeta {
                    skip_override: true,
                    ..TxMeta::default()
                },
            );
            return true;
        }
        if let Ok(reply) = RegistrationReply::parse(&dgram.payload) {
            let Some(home) = self.pending.remove(&reply.ident) else {
                return true; // unsolicited; swallow
            };
            if reply.code == crate::registration::ReplyCode::Accepted {
                if reply.lifetime > 0 {
                    self.visitors.insert(
                        home,
                        ctx.now + SimDuration::from_secs(u64::from(reply.lifetime)),
                    );
                } else {
                    self.visitors.remove(&home);
                }
            }
            // Relay the reply to the mobile over the final hop, sourced
            // from our own address (we are the agent it talked to).
            let out_dgram = UdpDatagram::new(
                REGISTRATION_PORT,
                REGISTRATION_PORT,
                Bytes::from(reply.emit()),
            );
            let mut out = Ipv4Packet::new(
                self.config.addr,
                home,
                IpProtocol::Udp,
                Bytes::from(out_dgram.emit(self.config.addr, home)),
            );
            out.ident = host.alloc_ident();
            self.stats.replies_relayed += 1;
            self.deliver_final_hop(out, host, ctx);
            return true;
        }
        true // ours (port 434) but unparseable; swallow
    }
}

impl MobilityHook for ForeignAgent {
    fn incoming(
        &mut self,
        pkt: Ipv4Packet,
        layers: &[EncapLayer],
        _iface: IfaceNo,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> Option<Ipv4Packet> {
        // Registration relay traffic addressed to us.
        if pkt.dst == self.config.addr
            && pkt.protocol == IpProtocol::Udp
            && self.handle_registration_traffic(&pkt, host, ctx)
        {
            return None;
        }
        // A tunnelled packet whose inner destination is one of our
        // visitors: decapsulation already happened in the host stack;
        // deliver the final hop.
        if !layers.is_empty() {
            if let Some(&expires) = self.visitors.get(&pkt.dst) {
                if ctx.now <= expires {
                    self.deliver_final_hop(pkt, host, ctx);
                } else {
                    self.visitors.remove(&pkt.dst);
                }
                return None;
            }
        }
        Some(pkt)
    }

    fn on_timer(&mut self, payload: u64, host: &mut Host, ctx: &mut NetCtx) {
        if payload != TIMER_ADVERTISE {
            return;
        }
        // This firing consumes the stored handle.
        self.adv_timer = None;
        let Some(every) = self.config.advertise_every else {
            return;
        };
        let mut ad = Vec::with_capacity(4);
        ad.extend_from_slice(&self.config.addr.octets());
        let dgram = UdpDatagram::new(
            FA_ADVERTISEMENT_PORT,
            FA_ADVERTISEMENT_PORT,
            Bytes::from(ad),
        );
        let mut pkt = Ipv4Packet::new(
            self.config.addr,
            Ipv4Addr::BROADCAST,
            IpProtocol::Udp,
            Bytes::from(dgram.emit(self.config.addr, Ipv4Addr::BROADCAST)),
        );
        pkt.ident = host.alloc_ident();
        pkt.ttl = 1;
        self.stats.advertisements_sent += 1;
        host.send_ip(
            ctx,
            pkt,
            TxMeta {
                skip_override: true,
                iface: Some(self.config.visited_iface),
                ..TxMeta::default()
            },
        );
        self.adv_timer = Some(host.request_hook_timer(ctx, every, TIMER_ADVERTISE));
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Silence a foreign agent: cancel its pending advertisement timer in the
/// scheduler and stop re-arming. An agent being decommissioned (or an
/// experiment that wants a quiet phase) no longer leaves a periodic timer
/// ticking forever.
pub fn stop_advertising(world: &mut World, node: NodeId) {
    let handle = world.host_do(node, |host, _| {
        host.hook_as::<ForeignAgent>().and_then(|fa| {
            fa.config.advertise_every = None;
            fa.adv_timer.take()
        })
    });
    if let Some(h) = handle {
        world.host_do(node, move |_, ctx| {
            ctx.cancel_timer(h);
        });
    }
}

/// Parse an advertisement payload (used by discovery-capable mobiles and
/// tests).
pub fn parse_advertisement(payload: &[u8]) -> Option<Ipv4Addr> {
    if payload.len() < 4 {
        return None;
    }
    Some(Ipv4Addr::from_octets([
        payload[0], payload[1], payload[2], payload[3],
    ]))
}

/// Listen for one foreign-agent advertisement on a host (returns via the
/// app's `discovered` field).
pub struct FaDiscovery {
    sock: Option<udp::UdpHandle>,
    /// The advertised agent address, once heard.
    pub discovered: Option<Ipv4Addr>,
}

impl FaDiscovery {
    /// A listener that waits for the first advertisement.
    pub fn new() -> FaDiscovery {
        FaDiscovery {
            sock: None,
            discovered: None,
        }
    }
}

impl Default for FaDiscovery {
    fn default() -> Self {
        FaDiscovery::new()
    }
}

impl netsim::App for FaDiscovery {
    fn poll(&mut self, host: &mut Host, _ctx: &mut NetCtx) {
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, None, FA_ADVERTISEMENT_PORT));
        while let Some(got) = udp::recv(host, sock) {
            if let Some(addr) = parse_advertisement(&got.payload) {
                self.discovered = Some(addr);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home_agent::{HomeAgent, HomeAgentConfig};
    use crate::mobile_host::{move_via_foreign_agent, MobileHost, MobileHostConfig};
    use netsim::wire::icmp::IcmpMessage;
    use netsim::{HostConfig, LinkConfig, RouterConfig, SegmentId};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    struct Net {
        w: World,
        visited: SegmentId,
        mh: NodeId,
        fa: NodeId,
        ch: NodeId,
        ha: NodeId,
    }

    fn build() -> Net {
        let mut w = World::new(61);
        let home = w.add_segment(LinkConfig::lan());
        let visited = w.add_segment(LinkConfig::lan());
        let backbone = w.add_segment(LinkConfig::wan(10));
        let ha = w.add_host(HostConfig::agent("ha"));
        let mh = w.add_host(HostConfig::conventional("mh"));
        let fa = w.add_host(HostConfig::conventional("fa"));
        let ch = w.add_host(HostConfig::conventional("ch"));
        let rh = w.add_router(RouterConfig::named("rh"));
        let rv = w.add_router(RouterConfig::named("rv"));
        let ha_if = w.attach(ha, home, Some("171.64.15.1/24"));
        w.attach(mh, home, Some("171.64.15.9/24"));
        let fa_if = w.attach(fa, visited, Some("36.186.0.10/24"));
        w.attach(ch, home, Some("171.64.15.7/24"));
        w.attach(rh, home, Some("171.64.15.254/24"));
        w.attach(rh, backbone, Some("192.168.0.1/30"));
        w.attach(rv, backbone, Some("192.168.0.2/30"));
        w.attach(rv, visited, Some("36.186.0.254/24"));
        w.compute_routes();
        HomeAgent::install(
            &mut w,
            ha,
            HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if),
        );
        ForeignAgent::install(
            &mut w,
            fa,
            ForeignAgentConfig {
                addr: ip("36.186.0.10"),
                visited_iface: fa_if,
                advertise_every: Some(SimDuration::from_secs(1)),
            },
        );
        MobileHost::install(
            &mut w,
            mh,
            MobileHostConfig::new("171.64.15.9/24", ip("171.64.15.1")),
        );
        udp::install(w.host_mut(mh));
        udp::install(w.host_mut(ch));
        udp::install(w.host_mut(fa));
        Net {
            w,
            visited,
            mh,
            fa,
            ch,
            ha,
        }
    }

    #[test]
    fn registration_relays_through_foreign_agent() {
        let mut net = build();
        move_via_foreign_agent(
            &mut net.w,
            net.mh,
            net.visited,
            ip("36.186.0.10"),
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(3));
        let mh_hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(mh_hook.is_registered(), "registered via FA relay");
        let fa_hook = net.w.host_mut(net.fa).hook_as::<ForeignAgent>().unwrap();
        assert!(fa_hook.is_visiting(ip("171.64.15.9")));
        assert_eq!(fa_hook.stats.requests_relayed, 1);
        assert_eq!(fa_hook.stats.replies_relayed, 1);
        // HA recorded the FA's address as the care-of address.
        let ha_hook = net.w.host_mut(net.ha).hook_as::<HomeAgent>().unwrap();
        assert_eq!(
            ha_hook.binding(ip("171.64.15.9")).unwrap().care_of,
            ip("36.186.0.10")
        );
    }

    #[test]
    fn traffic_flows_home_agent_to_foreign_agent_to_mobile() {
        let mut net = build();
        move_via_foreign_agent(
            &mut net.w,
            net.mh,
            net.visited,
            ip("36.186.0.10"),
            ip("36.186.0.254"),
        );
        net.w.run_for(SimDuration::from_secs(3));
        // CH (home segment) pings the mobile's home address.
        net.w.host_do(net.ch, |h, ctx| {
            h.send_ping(ctx, ip("171.64.15.7"), ip("171.64.15.9"), 1)
        });
        net.w.run_for(SimDuration::from_secs(3));
        assert!(net
            .w
            .host(net.ch)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 1, .. })));
        // The tunnel ran HA→FA (outer dst = FA's address)...
        assert!(
            net.w
                .trace
                .matching(|s| s.protocol == IpProtocol::IpInIp && s.dst == ip("36.186.0.10"))
                .count()
                > 0
        );
        // ...and the final hop was delivered by the FA.
        let fa_hook = net.w.host_mut(net.fa).hook_as::<ForeignAgent>().unwrap();
        assert!(fa_hook.stats.packets_delivered >= 1);
        // The mobile saw it as In-DH (plain packet to its home address).
        let mh_hook = net.w.host_mut(net.mh).hook_as::<MobileHost>().unwrap();
        assert!(mh_hook.stats.recv_in_dh >= 1);
        // And replied with the only mode it has: Out-DH.
        assert!(mh_hook.stats.sent_out_dh >= 1);
        assert_eq!(mh_hook.stats.sent_out_ie, 0);
        assert_eq!(mh_hook.stats.sent_out_de, 0);
    }

    #[test]
    fn advertisements_are_heard_on_the_segment() {
        let mut net = build();
        // A listener host on the visited segment discovers the FA.
        let listener = net.w.add_host(HostConfig::conventional("listener"));
        net.w.attach(listener, net.visited, Some("36.186.0.77/24"));
        udp::install(net.w.host_mut(listener));
        let app = net
            .w
            .host_mut(listener)
            .add_app(Box::new(FaDiscovery::new()));
        net.w.poll_soon(listener);
        net.w.run_for(SimDuration::from_secs(3));
        let disc = net.w.host_mut(listener).app_as::<FaDiscovery>(app).unwrap();
        assert_eq!(disc.discovered, Some(ip("36.186.0.10")));
        let fa_hook = net.w.host_mut(net.fa).hook_as::<ForeignAgent>().unwrap();
        assert!(fa_hook.stats.advertisements_sent >= 2);
    }

    #[test]
    fn advertisement_parsing() {
        assert_eq!(
            parse_advertisement(&[36, 186, 0, 10]),
            Some(ip("36.186.0.10"))
        );
        assert_eq!(parse_advertisement(&[1, 2]), None);
    }
}
