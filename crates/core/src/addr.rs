//! Address newtypes.
//!
//! The whole paper is about *which* of two addresses goes *where* in a
//! packet, so the two roles get distinct types: a [`HomeAddress`] is the
//! permanent, location-independent identity; a [`CareOfAddress`] is the
//! temporary, topologically-correct locator. Mixing them up at compile time
//! is most of the bug surface of a Mobile IP stack.

use std::fmt;

use netsim::Ipv4Addr;

/// The mobile host's permanent home address — "a permanent home IP address
/// that does not change" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HomeAddress(pub Ipv4Addr);

/// A temporary care-of address obtained on a visited network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CareOfAddress(pub Ipv4Addr);

impl HomeAddress {
    /// The raw IPv4 address.
    pub fn ip(self) -> Ipv4Addr {
        self.0
    }

    /// Intern the dotted-quad form, so metrics/trace/audit rows can carry a
    /// 4-byte symbol instead of an owned `String` per event.
    pub fn sym(self) -> netsim::arena::Sym {
        netsim::arena::intern(&self.to_string())
    }
}

impl CareOfAddress {
    /// The raw IPv4 address.
    pub fn ip(self) -> Ipv4Addr {
        self.0
    }

    /// Intern the dotted-quad form (see [`HomeAddress::sym`]).
    pub fn sym(self) -> netsim::arena::Sym {
        netsim::arena::intern(&self.to_string())
    }
}

impl fmt::Display for HomeAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for CareOfAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_display_and_compare() {
        let h = HomeAddress("171.64.15.9".parse().unwrap());
        let c = CareOfAddress("36.186.0.99".parse().unwrap());
        assert_eq!(h.to_string(), "171.64.15.9");
        assert_eq!(c.to_string(), "36.186.0.99");
        assert_ne!(h.ip(), c.ip());
    }

    #[test]
    fn syms_are_stable_and_resolve_back() {
        let h = HomeAddress("171.64.15.9".parse().unwrap());
        assert_eq!(h.sym(), h.sym());
        assert_eq!(netsim::arena::resolve(h.sym()), "171.64.15.9");
        let c = CareOfAddress("36.186.0.99".parse().unwrap());
        assert_ne!(h.sym(), c.sym());
    }
}
