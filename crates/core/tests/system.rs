//! mip-core system tests: cross-module behaviours on the canonical
//! scenario — alternate encapsulation formats end-to-end, one home agent
//! serving several mobiles, stale binding recovery, and registration
//! corner cases.

use mip_core::home_agent::{HomeAgent, HomeAgentConfig};
use mip_core::mobile_host::{move_to, return_home, MobileHost, MobileHostConfig};
use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{AuditEvent, BindingSource, DecisionReason, MobileAwareCh, OutMode, PolicyConfig};
use netsim::wire::encap::EncapFormat;
use netsim::wire::icmp::IcmpMessage;
use netsim::wire::ipv4::IpProtocol;
use netsim::{HostConfig, LinkConfig, RouterConfig, SimDuration, World};
use transport::apps::{KeystrokeSession, TcpEchoServer};
use transport::udp;

/// A TCP session works end-to-end under every encapsulation format, and
/// the right protocol number shows up on the wire.
#[test]
fn every_encapsulation_format_carries_tcp_end_to_end() {
    for (format, proto) in [
        (EncapFormat::IpInIp, IpProtocol::IpInIp),
        (EncapFormat::Minimal, IpProtocol::MinimalEncap),
        (EncapFormat::Gre, IpProtocol::Gre),
    ] {
        let mut s = build(ScenarioConfig {
            ch_kind: ChKind::Conventional,
            encap: format,
            mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
            ..ScenarioConfig::default()
        });
        let ch = s.ch;
        let ch_addr = s.ch_addr();
        s.world
            .host_mut(ch)
            .add_app(Box::new(TcpEchoServer::new(23)));
        s.world.poll_soon(ch);
        s.roam_to_a();
        let mh = s.mh;
        let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
            (ch_addr, 23),
            SimDuration::from_millis(200),
            8,
        )));
        s.world.poll_soon(mh);
        s.world.run_for(SimDuration::from_secs(10));
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        assert!(
            sess.all_echoed() && sess.broken.is_none(),
            "{format:?}: typed {} echoed {} broken {:?}",
            sess.typed(),
            sess.echoed,
            sess.broken
        );
        // The chosen tunnel protocol actually crossed the wire.
        assert!(
            s.world.trace.matching(|p| p.protocol == proto).count() > 0,
            "{format:?}: no {proto} packets observed"
        );
    }
}

/// One home agent serves two mobile hosts at once, tunnelling each to its
/// own care-of address, including when they talk to each other.
#[test]
fn home_agent_serves_multiple_mobiles_including_mobile_to_mobile() {
    let mut w = World::new(41);
    let home = w.add_segment(LinkConfig::lan());
    let visit_a = w.add_segment(LinkConfig::lan());
    let visit_b = w.add_segment(LinkConfig::lan());
    let backbone = w.add_segment(LinkConfig::wan(15));
    let ha = w.add_host(HostConfig::agent("ha"));
    let mh1 = w.add_host(HostConfig::conventional("mh1"));
    let mh2 = w.add_host(HostConfig::conventional("mh2"));
    let rh = w.add_router(RouterConfig::named("rh"));
    let ra = w.add_router(RouterConfig::named("ra"));
    let rb = w.add_router(RouterConfig::named("rb"));
    let ha_if = w.attach(ha, home, Some("171.64.15.1/24"));
    w.attach(mh1, home, Some("171.64.15.9/24"));
    w.attach(mh2, home, Some("171.64.15.10/24"));
    w.attach(rh, home, Some("171.64.15.254/24"));
    w.attach(rh, backbone, Some("192.168.0.1/24"));
    w.attach(ra, visit_a, Some("36.186.0.254/24"));
    w.attach(ra, backbone, Some("192.168.0.2/24"));
    w.attach(rb, visit_b, Some("128.2.0.254/24"));
    w.attach(rb, backbone, Some("192.168.0.3/24"));
    w.compute_routes();
    HomeAgent::install(
        &mut w,
        ha,
        HomeAgentConfig::new(ip("171.64.15.1"), "171.64.15.0/24".parse().unwrap(), ha_if),
    );
    for (mh, home_cidr) in [(mh1, "171.64.15.9/24"), (mh2, "171.64.15.10/24")] {
        MobileHost::install(
            &mut w,
            mh,
            MobileHostConfig::new(home_cidr, ip("171.64.15.1"))
                .with_policy(PolicyConfig::fixed(OutMode::IE).without_dt_ports()),
        );
        udp::install(w.host_mut(mh));
        transport::tcp::install(w.host_mut(mh));
    }
    move_to(&mut w, mh1, visit_a, "36.186.0.99/24", ip("36.186.0.254"));
    move_to(&mut w, mh2, visit_b, "128.2.0.99/24", ip("128.2.0.254"));
    w.run_for(SimDuration::from_secs(3));

    {
        let hook = w.host_mut(ha).hook_as::<HomeAgent>().unwrap();
        assert_eq!(hook.bindings().count(), 2);
        assert_eq!(
            hook.binding(ip("171.64.15.9")).unwrap().care_of,
            ip("36.186.0.99")
        );
        assert_eq!(
            hook.binding(ip("171.64.15.10")).unwrap().care_of,
            ip("128.2.0.99")
        );
    }

    // mh1 pings mh2's *home* address: reverse tunnel to the HA, whose
    // decapsulated inner packet is immediately re-captured and re-tunnelled
    // to mh2's care-of address. Both mobiles far from home, one agent in
    // the middle.
    w.host_do(mh1, |h, ctx| {
        h.send_ping(ctx, ip("171.64.15.9"), ip("171.64.15.10"), 7)
    });
    w.run_for(SimDuration::from_secs(3));
    assert!(w.host(mh1).icmp_log.iter().any(|e| matches!(
        e.message,
        IcmpMessage::EchoReply { seq: 7, .. }
    ) && e.from == ip("171.64.15.10")));
}

/// A mobile-aware correspondent holding a stale binding (the mobile moved)
/// keeps tunnelling to the old address, times nothing out at the IP layer,
/// but the binding expires and the conversation falls back to the home
/// agent and recovers; redirects then re-teach the new address.
#[test]
fn stale_binding_expires_and_is_relearned() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ha_redirects: true,
        ..ScenarioConfig::default()
    });
    s.roam_to_a();
    let ch = s.ch;
    // Install a deliberately short-lived stale-able binding.
    let soon = s.world.now() + SimDuration::from_secs(8);
    s.world
        .host_mut(ch)
        .hook_as::<MobileAwareCh>()
        .unwrap()
        .set_binding(
            ip(addrs::MH_HOME),
            ip(addrs::COA_A),
            soon,
            BindingSource::Manual,
        );

    // The mobile silently moves to B. The CH's binding now points at a
    // dead address.
    s.roam_to_b();
    let mh_home = ip(addrs::MH_HOME);
    let ch_addr = s.ch_addr();

    // While the stale binding lives, pings go to the void.
    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 1));
    s.world.run_for(SimDuration::from_secs(3));
    assert!(!s
        .world
        .host(ch)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 1, .. })));

    // After expiry, the next ping takes the home path, gets through, and
    // the redirect re-teaches the fresh care-of address.
    s.world.run_for(SimDuration::from_secs(6));
    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 2));
    s.world.run_for(SimDuration::from_secs(3));
    assert!(s
        .world
        .host(ch)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 2, .. })));
    let hook = s.world.host_mut(ch).hook_as::<MobileAwareCh>().unwrap();
    assert_eq!(
        hook.binding(mh_home).map(|b| b.care_of),
        Some(ip(addrs::COA_B)),
        "redirect re-taught the new care-of address"
    );
    assert_eq!(hook.stats.bindings_expired, 1);
}

/// Moving between networks without ever passing home keeps exactly one
/// active binding at the home agent (the newest), and the old care-of
/// address stops receiving traffic.
#[test]
fn reregistration_replaces_the_binding() {
    let mut s = build(ScenarioConfig::default());
    s.roam_to_a();
    {
        let ha = s.ha;
        let hook = s.world.host_mut(ha).hook_as::<HomeAgent>().unwrap();
        assert_eq!(
            hook.binding(ip(addrs::MH_HOME)).unwrap().care_of,
            ip(addrs::COA_A)
        );
    }
    s.roam_to_b();
    let ha = s.ha;
    let hook = s.world.host_mut(ha).hook_as::<HomeAgent>().unwrap();
    assert_eq!(hook.bindings().count(), 1, "one binding per home address");
    assert_eq!(
        hook.binding(ip(addrs::MH_HOME)).unwrap().care_of,
        ip(addrs::COA_B)
    );
}

/// Returning home mid-registration-lifetime deregisters; a later roam
/// re-registers; repeated cycles never leak bindings or intercepts.
#[test]
fn repeated_roam_home_cycles_are_clean() {
    let mut s = build(ScenarioConfig::default());
    for round in 0..3 {
        s.roam_to_a();
        assert!(s.mh_registered(), "round {round}: registered");
        assert!(s.world.host(s.ha).intercepts(ip(addrs::MH_HOME)));
        s.go_home();
        assert!(!s.mh_registered(), "round {round}: deregistered");
        assert!(!s.world.host(s.ha).intercepts(ip(addrs::MH_HOME)));
        let ha = s.ha;
        let hook = s.world.host_mut(ha).hook_as::<HomeAgent>().unwrap();
        assert_eq!(hook.bindings().count(), 0, "round {round}: no leak");
    }
    let mh = s.mh;
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    assert_eq!(hook.stats.handoffs, 6);
}

/// The §4 privacy claim, measured at the packet level across the entire
/// run: with privacy mode on, no packet the correspondent ever receives
/// carries the care-of address in any header field it can see.
#[test]
fn privacy_mode_never_reveals_the_care_of_address() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        mh_policy: PolicyConfig::default().with_privacy(),
        ..ScenarioConfig::default()
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);
    s.roam_to_a();
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(150),
        12,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(10));
    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    assert!(sess.all_echoed());
    let coa = ip(addrs::COA_A);
    for e in s.world.trace.events() {
        if e.node == ch {
            assert_ne!(e.packet.src, coa, "outer source leaked the location");
            if let Some((is, _, _)) = e.packet.inner {
                assert_ne!(is, coa, "inner source leaked the location");
            }
        }
    }
}

/// Deregistration when returning home restores plain-IP behaviour even for
/// a correspondent still holding a binding: the binding goes stale, and
/// after expiry traffic flows the ordinary way.
#[test]
fn correspondent_recovers_after_mobile_returns_home() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ha_redirects: true,
        ..ScenarioConfig::default()
    });
    s.roam_to_a();
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    let mh_home = ip(addrs::MH_HOME);
    // Teach the CH the binding via a first exchange.
    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 1));
    s.world.run_for(SimDuration::from_secs(2));
    assert!(s
        .world
        .host_mut(ch)
        .hook_as::<MobileAwareCh>()
        .unwrap()
        .binding(mh_home)
        .is_some());

    // Mobile goes home. The CH's binding (learned with a lifetime) decays;
    // force the issue by clearing it as its expiry would.
    return_home(&mut s.world, s.mh, s.home_seg, Some(ip(addrs::HOME_GW)));
    s.world.run_for(SimDuration::from_secs(2));
    s.world
        .host_mut(ch)
        .hook_as::<MobileAwareCh>()
        .unwrap()
        .clear_binding(mh_home);

    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 2));
    s.world.run_for(SimDuration::from_secs(2));
    assert!(s
        .world
        .host(ch)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 2, .. })));
    // No tunnel was involved this time.
    let tunnels = s.world.trace.matching(|p| {
        p.protocol == IpProtocol::IpInIp && p.inner.map(|(_, d, _)| d) == Some(mh_home)
    });
    let after_home: Vec<_> = tunnels.collect();
    // (Tunnels from the roaming phase are in the trace; assert none are
    // recent by checking the reply came without HA involvement instead.)
    drop(after_home);
}

/// The audit trail explains the optimistic probe-and-fallback sequence
/// end-to-end, in causal order: handoff, registration, the first Out-DH
/// decision from the default strategy, the §7.1.2 demotion to Out-DE, and
/// cache-hit decisions thereafter — all through the query API, no trace
/// spelunking.
#[test]
fn audit_trail_records_cache_hits_and_probe_fallback() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        visited_egress_filter: true,
        mh_policy: PolicyConfig::optimistic().without_dt_ports(),
        ..ScenarioConfig::default()
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);
    s.roam_to_a();
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(200),
        10,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(60));

    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    assert!(
        sess.all_echoed() && sess.broken.is_none(),
        "session survived"
    );

    let audit = s
        .world
        .host_mut(mh)
        .hook_as::<MobileHost>()
        .unwrap()
        .audit();

    // Causal order: the handoff precedes the registration exchange.
    let kinds: Vec<&str> = audit.entries().map(|e| e.event.kind()).collect();
    let handoff = kinds.iter().position(|k| *k == "handoff").expect("handoff");
    let reg_sent = kinds
        .iter()
        .position(|k| *k == "registration-sent")
        .expect("registration sent");
    let reg_ok = kinds
        .iter()
        .position(|k| *k == "registration-accepted")
        .expect("registration accepted");
    assert!(handoff < reg_sent && reg_sent < reg_ok);

    // First contact: a cache miss resolved from the optimistic default.
    let first = audit.for_correspondent(ch_addr).next().expect("decisions");
    assert!(
        matches!(
            first.event,
            AuditEvent::Decision {
                mode: OutMode::DH,
                reason: DecisionReason::Default,
                ..
            }
        ),
        "first decision was {:?}",
        first.event
    );

    // The egress filter ate Out-DH; feedback demoted to Out-DE.
    assert!(
        audit.transitions().iter().any(|t| matches!(
            t.event,
            AuditEvent::Demoted {
                from: OutMode::DH,
                to: OutMode::DE,
                ..
            }
        )),
        "expected a DH→DE demotion"
    );

    // Decisions ran DH… then DE…, and the current answer is a cache hit.
    let decisions = audit.decisions_for(ch_addr);
    assert_eq!(decisions.first(), Some(&OutMode::DH));
    assert_eq!(decisions.last(), Some(&OutMode::DE));
    assert_eq!(
        audit.last_decision(ch_addr),
        Some((OutMode::DE, DecisionReason::CacheHit))
    );

    // Timestamps never run backwards.
    let times: Vec<u64> = audit.entries().map(|e| e.at.0).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
}
