//! Performance benches for the zero-copy forwarding fast path and the
//! parallel experiment runner (the PR-4 optimisation surface):
//!
//! - `forward_fastpath` — in-place TTL/checksum patching of a forwarded
//!   frame vs the parse → mutate → re-emit slow path it replaces.
//! - `route_lookup` — linear [`lpm`] scan vs the bucketed, cached
//!   [`RouteTable`].
//! - `compute_routes` — full route recomputation on a ~50-node topology.
//! - `runner` — the experiment thread pool on synthetic CPU-bound jobs,
//!   serial vs four workers, at two batch sizes.
//! - `scheduler` — the hierarchical timing wheel vs the reference binary
//!   heap on a timer-heavy pop-one/push-one churn (the PR-5 optimisation
//!   surface).
//! - `scale` — hierarchical world construction (routes installed
//!   arithmetically, no shortest-path pass) and the mass-churn driver
//!   (the PR-9 optimisation surface).
//! - `policy` — the method-cache lookup engine (the PR-10 optimisation
//!   surface): hit latency at 1k/100k/1M resident correspondents,
//!   steady-state miss+evict churn at capacity, compiled bucketed-LPM
//!   rule matching vs the linear reference scan at 1/64/1024 rules, and
//!   a full flash-crowd storm with hot-set recovery.
//!
//! Quick CI snapshots: `CRITERION_QUICK=1 CRITERION_JSON=BENCH_pr10.json
//! cargo bench -p bench --bench perf`.

use std::hint::black_box;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use bench::experiments::{pool_map, pool_map_exact, take_runner_telemetry};
use netsim::device::router::{lpm, patch_forwarded_frame, RouteEntry};
use netsim::wire::ethernet::{EtherType, EthernetFrame, MacAddr};
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet};
use netsim::{
    Event, EventKind, EventQueue, HostConfig, LinkConfig, NodeId, RouteTable, RouterConfig,
    SchedulerKind, SimTime, Timer, TimerToken, World,
};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// A UDP-in-IPv4-in-Ethernet frame as a router would receive it.
fn sample_frame(payload_len: usize) -> Bytes {
    let pkt = Ipv4Packet::new(
        ip("10.0.1.10"),
        ip("10.0.2.20"),
        IpProtocol::Udp,
        Bytes::from(vec![0xAB; payload_len]),
    );
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        EtherType::Ipv4,
        pkt.emit(),
    )
    .emit()
}

fn bench_forward_fastpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("forward_fastpath");
    let wire = sample_frame(512);
    let next_hop = MacAddr::from_index(9);
    let out_mac = MacAddr::from_index(3);

    g.bench_function("reparse_512B", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(&wire).unwrap();
            let mut pkt = Ipv4Packet::parse(&eth.payload).unwrap();
            pkt.ttl -= 1;
            let mut out = Vec::with_capacity(wire.len());
            EthernetFrame::emit_header_into(next_hop, out_mac, EtherType::Ipv4, &mut out);
            pkt.emit_into(&mut out);
            black_box(out)
        })
    });
    g.bench_function("patch_in_place_512B", |b| {
        b.iter(|| {
            let mut out = wire.as_slice().to_vec();
            patch_forwarded_frame(&mut out, next_hop, out_mac);
            black_box(out)
        })
    });
    g.finish();
}

fn bench_route_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_lookup");
    let mut routes = Vec::new();
    let mut table = RouteTable::new();
    for i in 0..100u32 {
        let e = RouteEntry {
            prefix: Ipv4Cidr::new(Ipv4Addr((10 << 24) | (i << 16)), 16),
            iface: (i % 4) as usize,
            gateway: None,
        };
        routes.push(e);
        table.add(e);
    }
    // A flow-like mix: sixteen destinations visited over and over.
    let dsts: Vec<Ipv4Addr> = (0..16u32)
        .map(|i| Ipv4Addr((10 << 24) | ((i * 6 + 1) << 16) | 0x0505))
        .collect();

    g.bench_function("linear_lpm_100_routes", |b| {
        b.iter(|| {
            for &d in &dsts {
                black_box(lpm(&routes, d));
            }
        })
    });
    g.bench_function("route_table_100_routes", |b| {
        b.iter(|| {
            for &d in &dsts {
                black_box(table.lookup(d));
            }
        })
    });
    g.finish();
}

/// 24 LANs star-joined by a backbone: 24 routers + 24 hosts = 48 nodes.
fn grid_world() -> World {
    let mut w = World::new(7);
    let backbone = w.add_segment(LinkConfig::wan(5));
    for i in 0..24 {
        let lan = w.add_segment(LinkConfig::lan());
        let r = w.add_router(RouterConfig::named(&format!("r{i}")));
        w.attach(r, lan, Some(&format!("10.{i}.0.1/24")));
        w.attach(r, backbone, Some(&format!("192.168.0.{}/24", i + 1)));
        let h = w.add_host(HostConfig::conventional(&format!("h{i}")));
        w.attach(h, lan, Some(&format!("10.{i}.0.10/24")));
    }
    w
}

fn bench_compute_routes(c: &mut Criterion) {
    let mut g = c.benchmark_group("compute_routes");
    g.sample_size(10);
    let mut w = grid_world();
    g.bench_function("grid_48_nodes", |b| b.iter(|| w.compute_routes()));
    g.finish();
}

/// `count` identical CPU-bound jobs for the pool benches.
fn runner_jobs(count: u64) -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
    (0..count)
        .map(|i| {
            Box::new(move || {
                // black_box keeps the loop from const-folding away.
                let mut acc = black_box(i);
                for k in 0..200_000u64 {
                    acc = acc
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(black_box(k));
                }
                acc
            }) as Box<dyn FnOnce() -> u64 + Send>
        })
        .collect()
}

fn bench_runner(c: &mut Criterion) {
    let mut g = c.benchmark_group("runner");
    g.sample_size(10);
    g.bench_function("pool_8_jobs_serial", |b| {
        b.iter(|| black_box(pool_map(runner_jobs(8), 1)))
    });
    g.bench_function("pool_8_jobs_4_threads", |b| {
        b.iter(|| black_box(pool_map(runner_jobs(8), 4)))
    });
    // A larger batch amortises per-call pool handoff and exercises the
    // resident workers over many claim cycles.
    g.bench_function("pool_32_jobs_serial", |b| {
        b.iter(|| black_box(pool_map(runner_jobs(32), 1)))
    });
    g.bench_function("pool_32_jobs_4_threads", |b| {
        b.iter(|| black_box(pool_map(runner_jobs(32), 4)))
    });
    // `pool_map` silently caps at the core count, so on small CI runners
    // the `_threads` variants above measure the serial path twice. The
    // `_forced` variants bypass the cap: on a single core they quantify
    // pure time-slicing overhead; on a real multicore they show the
    // speedup the capped numbers hide.
    g.bench_function("pool_32_jobs_4_threads_forced", |b| {
        b.iter(|| black_box(pool_map_exact(runner_jobs(32), 4)))
    });
    g.bench_function("pool_32_jobs_8_threads_forced", |b| {
        b.iter(|| black_box(pool_map_exact(runner_jobs(32), 8)))
    });
    // Simulation-shaped jobs (build + route a 48-node world) rather than
    // arithmetic spin: allocation-heavy, cache-heavy, closer to what
    // `all_experiments` actually schedules.
    g.bench_function("world_8_jobs_serial", |b| {
        b.iter(|| black_box(pool_map_exact(world_jobs(8), 1)))
    });
    g.bench_function("world_8_jobs_4_threads_forced", |b| {
        b.iter(|| black_box(pool_map_exact(world_jobs(8), 4)))
    });
    g.finish();

    record_worker_utilization();
}

/// `count` large-world jobs: each builds the 48-node grid and computes
/// full routes, so the pool schedules real simulator work.
fn world_jobs(count: u64) -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
    (0..count)
        .map(|_| {
            Box::new(move || {
                let mut w = grid_world();
                w.compute_routes();
                w.pending_events() as u64
            }) as Box<dyn FnOnce() -> u64 + Send>
        })
        .collect()
}

/// After the timed runner benches, snapshot per-worker utilization for a
/// forced 1/2/4/8-thread sweep into the `CRITERION_JSON` summary
/// (`extras` → `runner_utilization`). This is the flight-recorder data
/// PROFILE_pr6.md cites: it shows directly whether workers overlapped or
/// time-sliced.
fn record_worker_utilization() {
    netsim::profile::set_enabled(true);
    take_runner_telemetry(); // drop anything stale
    let mut batches = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        black_box(pool_map_exact(runner_jobs(32), threads));
        batches.extend(take_runner_telemetry());
    }
    netsim::profile::set_enabled(false);
    netsim::profile::reset();
    match serde_json::to_string(&batches) {
        Ok(json) => criterion::record_extra("runner_utilization", json),
        Err(e) => eprintln!("runner_utilization extra skipped: {e:?}"),
    }
}

/// Timer-heavy churn: prefill `pending` timers, then `ops` rounds of pop
/// the earliest event and re-arm it a short pseudorandom delay later —
/// the shape of a simulation dominated by TCP retransmit/keepalive
/// timers. Returns a checksum so the work cannot be optimised away.
fn scheduler_churn(kind: SchedulerKind, pending: u64, ops: u64) -> u64 {
    let mut q = EventQueue::with_kind(kind);
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut delay = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        // Mostly sub-millisecond, occasionally far out (wheel levels 1+).
        if rng.is_multiple_of(64) {
            1 + rng % 3_000_000
        } else {
            1 + rng % 1_000
        }
    };
    for i in 0..pending {
        q.push(
            SimTime(delay()),
            EventKind::Timer(Timer {
                node: NodeId((i % 16) as usize),
                token: TimerToken(i),
            }),
        );
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let Event { at, kind, .. } = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(at.0);
        q.push(SimTime(at.0 + delay()), kind);
    }
    acc
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    g.bench_function("wheel_128k_timers_churn", |b| {
        b.iter(|| black_box(scheduler_churn(SchedulerKind::Wheel, 131_072, 131_072)))
    });
    g.bench_function("heap_128k_timers_churn", |b| {
        b.iter(|| {
            black_box(scheduler_churn(
                SchedulerKind::ReferenceHeap,
                131_072,
                131_072,
            ))
        })
    });
    g.finish();
}

/// The flight recorder's own cost: a scope enter/exit around trivial work
/// with profiling off (one relaxed atomic load — the tax every hot path
/// pays permanently) vs on (thread-local tree bookkeeping).
fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    g.bench_function("scope_disabled", |b| {
        netsim::profile::set_enabled(false);
        b.iter(|| {
            let _prof = netsim::profile::scope("bench/probe");
            black_box(1u64 + black_box(1))
        })
    });
    g.bench_function("scope_enabled", |b| {
        netsim::profile::set_enabled(true);
        b.iter(|| {
            let _prof = netsim::profile::scope("bench/probe");
            black_box(1u64 + black_box(1))
        });
        netsim::profile::set_enabled(false);
    });
    netsim::profile::reset();
    g.finish();
}

/// The sketch/sampling primitives the scale-ready telemetry layer leans
/// on: Space-Saving offers under heavy key churn (worst case: every key
/// distinct, constant eviction), reservoir offers past capacity, and the
/// per-event flow-sampling hash decision.
fn bench_telemetry(c: &mut Criterion) {
    use netsim::{Reservoir, SpaceSaving};
    let mut g = c.benchmark_group("telemetry");
    g.bench_function("space_saving_offer_churn", |b| {
        b.iter(|| {
            let mut sk: SpaceSaving<u64> = SpaceSaving::new(64);
            for i in 0u64..4096 {
                sk.offer(black_box(i % 512), 1);
            }
            black_box(sk.top().len())
        })
    });
    g.bench_function("reservoir_offer", |b| {
        b.iter(|| {
            let mut r: Reservoir<u64> = Reservoir::new(64, 7);
            for i in 0u64..4096 {
                r.offer(black_box(i));
            }
            black_box(r.items().len())
        })
    });
    g.bench_function("flow_sample_decision", |b| {
        let trace = {
            let mut t = netsim::PacketTrace::new(true);
            t.enable_flow_sampling(8, 0x5eed);
            t
        };
        b.iter(|| {
            let mut kept = 0u64;
            for i in 0u64..4096 {
                if trace.keeps_flow(netsim::FlowId(black_box(i))) {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
    g.finish();
}

/// A multi-domain world for the sharded-execution benches: `domains` LANs
/// star-joined by a 5 ms backbone, each with one router and one host, and
/// a ping workload crossing domain borders (host `i` pings host `i+1`).
/// The backbone's latency is the lookahead the conservative protocol
/// feeds on, so this is the topology sharding is built for.
fn sharded_world(domains: usize, shards: usize) -> (World, Vec<netsim::NodeId>) {
    let mut w = World::with_shards(7, shards);
    let backbone = w.add_segment(LinkConfig::wan(5));
    let mut hosts = Vec::with_capacity(domains);
    for i in 0..domains {
        let lan = w.add_segment(LinkConfig::lan());
        let r = w.add_router(RouterConfig::named(&format!("r{i}")));
        w.attach(r, lan, Some(&format!("10.{i}.0.1/24")));
        w.attach(r, backbone, Some(&format!("192.168.0.{}/24", i + 1)));
        let h = w.add_host(HostConfig::conventional(&format!("h{i}")));
        w.attach(h, lan, Some(&format!("10.{i}.0.10/24")));
        hosts.push(h);
    }
    w.compute_routes();
    (w, hosts)
}

/// Drive the sharded world: every host pings its next-domain neighbour
/// `rounds` times, crossing the backbone (and so every shard border) both
/// ways. Returns the dispatched-event count as the black-box value.
fn sharded_run(domains: usize, shards: usize, rounds: u16) -> u64 {
    let (mut w, hosts) = sharded_world(domains, shards);
    for round in 1..=rounds {
        for (i, &h) in hosts.iter().enumerate() {
            let j = (i + 1) % hosts.len();
            let src = ip(&format!("10.{i}.0.10"));
            let dst = ip(&format!("10.{j}.0.10"));
            w.host_do(h, |host, ctx| host.send_ping(ctx, src, dst, round));
        }
        w.run_for(netsim::SimDuration::from_millis(40));
    }
    w.run_until_idle(2_000_000);
    w.scheduler_stats().dispatched
}

/// Sharded vs serial execution of the same cross-domain workload. On a
/// multi-core host the sharded rows should drop below the 1-shard row;
/// on a single core they bound the synchronization overhead instead
/// (horizon probing, border replay) — both are the numbers this group
/// exists to track.
fn bench_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("shards");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(format!("8_domains_{shards}_shards"), |b| {
            b.iter(|| black_box(sharded_run(8, shards, 8)))
        });
    }
    g.finish();
}

/// Hierarchical world construction and the mass-churn driver. Build cost
/// is dominated by arithmetic route installation (no shortest-path pass
/// at any size), so it should scale linearly in hosts; the churn row
/// exercises the whole handoff/flash/re-registration pipeline on a
/// two-thousand-host world.
fn bench_scale(c: &mut Criterion) {
    use bench::scale::{build_world, run_churn, ChurnParams, ScaleParams};
    let mut g = c.benchmark_group("scale");
    g.sample_size(10);
    for hosts in [2_000usize, 20_000] {
        let params = ScaleParams {
            seed: 1,
            ..ScaleParams::with_hosts(hosts)
        };
        g.bench_function(format!("build_{hosts}_hosts"), |b| {
            b.iter(|| black_box(build_world(&params).1.hosts.len()))
        });
    }
    g.bench_function("churn_2000_hosts", |b| {
        let params = ScaleParams {
            seed: 1,
            ..ScaleParams::with_hosts(2_000)
        };
        let churn = ChurnParams::default();
        b.iter(|| {
            let (mut w, ix) = build_world(&params);
            black_box(run_churn(&mut w, &ix, &churn).events)
        })
    });
    g.finish();
}

/// The policy engine's production-scale claims, measured directly:
///
/// * `hit_*` — a cache hit is one hash probe into the SoA slab plus an
///   LRU touch, so latency must stay flat from 1k to 1M resident
///   correspondents;
/// * `miss_evict_*` — steady-state misses at capacity, where every
///   insert pays an LRU eviction and an index backfill on top of the
///   probe;
/// * `rules_*` — first-match rule lookup, linear reference scan vs the
///   compiled bucketed-LPM index (which deliberately stays linear below
///   nine rules, so the 1-rule rows should tie);
/// * `flash_crowd_*` — the whole E18 storm shape in miniature: a hot
///   set with real feedback history, a 2×-capacity miss storm with the
///   hot set conversing throughout, then a hot-set retention count.
fn bench_policy(c: &mut Criterion) {
    use mip_core::policy::rule_match_reference;
    use mip_core::{AuditTrail, Policy, PolicyConfig, Strategy};

    let mut g = c.benchmark_group("policy");

    for (label, n) in [("1k", 1_000usize), ("100k", 100_000), ("1m", 1_000_000)] {
        let mut p = Policy::new(PolicyConfig {
            cache_cap: n,
            ..PolicyConfig::optimistic()
        });
        // The trail is for explainability; drop it so the rows measure
        // the lookup engine, not ring-buffer bookkeeping.
        p.audit = AuditTrail::with_capacity(0);
        for i in 0..n as u32 {
            p.mode_for(Ipv4Addr(0x1000_0000u32.wrapping_add(i)));
        }
        let step = (n as u32 / 16).max(1);
        let dsts: Vec<Ipv4Addr> = (0..16u32)
            .map(|k| Ipv4Addr(0x1000_0000u32.wrapping_add(k * step)))
            .collect();
        g.bench_function(format!("hit_{label}_entries"), |b| {
            b.iter(|| {
                for &d in &dsts {
                    black_box(p.mode_for(d));
                }
            })
        });
    }

    {
        let cap = 65_536usize;
        let mut p = Policy::new(PolicyConfig {
            cache_cap: cap,
            ..PolicyConfig::optimistic()
        });
        p.audit = AuditTrail::with_capacity(0);
        for i in 0..cap as u32 {
            p.mode_for(Ipv4Addr(0x2000_0000u32 + i));
        }
        // Every lookup is a never-seen correspondent, so the cache stays
        // pinned at capacity and each iteration is a miss + evict.
        let mut next = cap as u32;
        g.bench_function("miss_evict_64k_entries", |b| {
            b.iter(|| {
                for _ in 0..16 {
                    next = next.wrapping_add(1);
                    black_box(p.mode_for(Ipv4Addr(0x2000_0000u32.wrapping_add(next))));
                }
            })
        });
    }

    for nrules in [1usize, 64, 1024] {
        let rules: Vec<(Ipv4Cidr, Strategy)> = (0..nrules as u32)
            .map(|i| {
                let strat = if i % 2 == 0 {
                    Strategy::Pessimistic
                } else {
                    Strategy::Optimistic
                };
                (Ipv4Cidr::new(Ipv4Addr((10 << 24) | (i << 12)), 20), strat)
            })
            .collect();
        // Half the destinations hit rules spread across the list, half
        // miss entirely — the linear scan's worst case.
        let dsts: Vec<Ipv4Addr> = (0..16u32)
            .map(|k| {
                if k % 2 == 0 {
                    Ipv4Addr((10 << 24) | ((k * nrules as u32 / 16) << 12) | 7)
                } else {
                    Ipv4Addr((11 << 24) | k)
                }
            })
            .collect();
        let p = Policy::new(PolicyConfig {
            rules: rules.clone(),
            ..PolicyConfig::optimistic()
        });
        g.bench_function(format!("rules_linear_{nrules}"), |b| {
            b.iter(|| {
                for &d in &dsts {
                    black_box(rule_match_reference(&rules, d));
                }
            })
        });
        g.bench_function(format!("rules_compiled_{nrules}"), |b| {
            b.iter(|| {
                for &d in &dsts {
                    black_box(p.rule_match_compiled(d));
                }
            })
        });
    }

    g.sample_size(10);
    g.bench_function("flash_crowd_2x_cap_4k", |b| {
        b.iter(|| {
            let mut p = Policy::new(PolicyConfig {
                cache_cap: 4_096,
                ..PolicyConfig::optimistic()
            });
            p.audit = AuditTrail::with_capacity(0);
            for i in 0..64u32 {
                let hot = Ipv4Addr(0x0900_0000 + i);
                p.mode_for(hot);
                p.record_feedback(hot, true);
                p.record_feedback(hot, true);
            }
            for i in 0..8_192u32 {
                p.mode_for(Ipv4Addr(0x0A00_0000 + i));
                // The hot set keeps conversing through the storm, so the
                // LRU keeps it off the tail.
                if i % 512 == 511 {
                    for k in 0..64u32 {
                        p.record_feedback(Ipv4Addr(0x0900_0000 + k), false);
                    }
                }
            }
            let mut retained = 0u32;
            for i in 0..64u32 {
                if p.entry(Ipv4Addr(0x0900_0000 + i)).is_some() {
                    retained += 1;
                }
            }
            black_box(retained)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_forward_fastpath,
    bench_route_lookup,
    bench_compute_routes,
    bench_runner,
    bench_scheduler,
    bench_profile,
    bench_telemetry,
    bench_shards,
    bench_scale,
    bench_policy,
);
criterion_main!(benches);
