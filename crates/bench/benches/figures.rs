//! Criterion benches: one group per paper artifact (wrapping the experiment
//! at reduced scale, so `cargo bench` exercises every figure's code path
//! and tracks simulator performance), plus micro-benchmarks of the
//! substrate hot paths (checksum, encapsulation, parsing, event loop).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::experiments::*;
use mip_core::{InMode, OutMode};
use netsim::wire::encap::{decapsulate, encapsulate, EncapFormat};
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::wire::{internet_checksum, tcpseg::TcpSegment};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

// ---- figure/experiment benches (each regenerates a paper artifact) ----

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig01_basic_mobile_ip", |b| {
        b.iter(|| black_box(fig01_basic::run()))
    });
    g.bench_function("fig02_filter_probe_out_dh", |b| {
        b.iter(|| {
            black_box(fig02_filtering::probe(
                OutMode::DH,
                fig02_filtering::FilterConfig {
                    home_ingress: true,
                    visited_egress: false,
                },
                1,
            ))
        })
    });
    g.bench_function("fig03_bitunnel", |b| {
        b.iter(|| black_box(fig03_bitunnel::run()))
    });
    g.bench_function("fig04_triangle_point", |b| {
        b.iter(|| black_box(fig04_triangle::measure(50)))
    });
    g.bench_function("fig05_redirect_series", |b| {
        b.iter(|| black_box(fig05_smart_ch::redirect_series(3)))
    });
    g.bench_function("fig06_formats", |b| {
        b.iter(|| black_box(fig06_formats::run()))
    });
    g.bench_function("fig10_grid_cell_useful", |b| {
        b.iter(|| black_box(fig10_grid::run_cell(InMode::IE, OutMode::IE)))
    });
    g.bench_function("exp_probing_optimistic_open", |b| {
        b.iter(|| {
            black_box(exp_probing::probe(
                "opt",
                mip_core::PolicyConfig::optimistic().without_dt_ports(),
                exp_probing::Env::Open,
            ))
        })
    });
    g.bench_function("exp_http_dt", |b| {
        b.iter(|| {
            black_box(exp_http::browse(
                mip_core::PolicyConfig::default(),
                2,
                false,
            ))
        })
    });
    g.bench_function("exp_handoff_mobile_ip", |b| {
        b.iter(|| black_box(exp_handoff::session(true)))
    });
    g.bench_function("exp_multicast_local", |b| {
        b.iter(|| {
            black_box(exp_multicast::receive_session(
                exp_multicast::JoinMethod::LocalInterface,
            ))
        })
    });
    g.bench_function("exp_feedback_enabled", |b| {
        b.iter(|| black_box(exp_feedback::session(true)))
    });
    g.bench_function("exp_foreign_agent", |b| {
        b.iter(|| black_box(exp_foreign_agent::deployment(true)))
    });
    g.finish();
}

// ---- substrate micro-benches -------------------------------------------

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    let payload = vec![0xa5u8; 1460];
    g.bench_function("internet_checksum_1460B", |b| {
        b.iter(|| black_box(internet_checksum(black_box(&payload), 0)))
    });

    let inner = Ipv4Packet::new(
        ip("171.64.15.9"),
        ip("18.26.0.5"),
        IpProtocol::Udp,
        Bytes::from(vec![0u8; 512]),
    );
    for f in [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre] {
        g.bench_function(format!("encapsulate_{f:?}_512B"), |b| {
            b.iter(|| {
                black_box(
                    encapsulate(
                        f,
                        ip("36.186.0.99"),
                        ip("171.64.15.1"),
                        black_box(&inner),
                        1,
                    )
                    .unwrap(),
                )
            })
        });
        let outer = encapsulate(f, ip("36.186.0.99"), ip("171.64.15.1"), &inner, 1).unwrap();
        g.bench_function(format!("decapsulate_{f:?}_512B"), |b| {
            b.iter(|| black_box(decapsulate(black_box(&outer)).unwrap()))
        });
    }

    let wire = inner.emit();
    g.bench_function("ipv4_parse_512B", |b| {
        b.iter(|| black_box(Ipv4Packet::parse(black_box(&wire)).unwrap()))
    });
    g.bench_function("ipv4_emit_512B", |b| {
        b.iter(|| black_box(black_box(&inner).emit()))
    });

    let seg = TcpSegment {
        src_port: 1000,
        dst_port: 23,
        seq: 1,
        ack: 2,
        flags: netsim::wire::tcpseg::TcpFlags::ack(),
        window: 0xffff,
        mss: None,
        payload: Bytes::from(vec![0u8; 512]),
    };
    let seg_wire = seg.emit(ip("1.1.1.1"), ip("2.2.2.2"));
    g.bench_function("tcp_segment_parse_512B", |b| {
        b.iter(|| {
            black_box(
                TcpSegment::parse(black_box(&seg_wire), ip("1.1.1.1"), ip("2.2.2.2")).unwrap(),
            )
        })
    });

    // Event-loop throughput: a ping across two routers, end to end.
    g.bench_function("world_ping_across_two_routers", |b| {
        b.iter(|| {
            let mut w = netsim::World::new(1);
            let lan_a = w.add_segment(netsim::LinkConfig::lan());
            let mid = w.add_segment(netsim::LinkConfig::wan(10));
            let lan_b = w.add_segment(netsim::LinkConfig::lan());
            let a = w.add_host(netsim::HostConfig::conventional("a"));
            let bb = w.add_host(netsim::HostConfig::conventional("b"));
            let r1 = w.add_router(netsim::RouterConfig::named("r1"));
            let r2 = w.add_router(netsim::RouterConfig::named("r2"));
            w.attach(a, lan_a, Some("10.0.1.10/24"));
            w.attach(r1, lan_a, Some("10.0.1.1/24"));
            w.attach(r1, mid, Some("192.168.0.1/30"));
            w.attach(r2, mid, Some("192.168.0.2/30"));
            w.attach(r2, lan_b, Some("10.0.2.1/24"));
            w.attach(bb, lan_b, Some("10.0.2.10/24"));
            w.compute_routes();
            w.host_do(a, |h, ctx| {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
            });
            w.run_until_idle(100_000);
            black_box(w.trace.events().len())
        })
    });

    g.finish();
}

// ---- metrics registry overhead -----------------------------------------

/// The same end-to-end workload at four observability levels: packet
/// tracing off entirely, tracing on with the metrics registry off (the
/// default), both on, and everything on including the wall-clock flight
/// recorder. The fully-disabled run is the cost every simulation pays for
/// the instrumentation existing at all — the enabled-guard early returns
/// should keep it within noise of the others' recording-free portions,
/// and `profiled` vs `enabled` is the recorder's all-in hot-path tax.
fn bench_metrics_overhead(c: &mut Criterion) {
    fn ping_world() -> (netsim::World, netsim::NodeId) {
        let mut w = netsim::World::new(1);
        let lan_a = w.add_segment(netsim::LinkConfig::lan());
        let mid = w.add_segment(netsim::LinkConfig::wan(10));
        let lan_b = w.add_segment(netsim::LinkConfig::lan());
        let a = w.add_host(netsim::HostConfig::conventional("a"));
        let bb = w.add_host(netsim::HostConfig::conventional("b"));
        let r1 = w.add_router(netsim::RouterConfig::named("r1"));
        let r2 = w.add_router(netsim::RouterConfig::named("r2"));
        w.attach(a, lan_a, Some("10.0.1.10/24"));
        w.attach(r1, lan_a, Some("10.0.1.1/24"));
        w.attach(r1, mid, Some("192.168.0.1/30"));
        w.attach(r2, mid, Some("192.168.0.2/30"));
        w.attach(r2, lan_b, Some("10.0.2.1/24"));
        w.attach(bb, lan_b, Some("10.0.2.10/24"));
        w.compute_routes();
        (w, a)
    }
    fn drive(mut w: netsim::World, a: netsim::NodeId) -> usize {
        for seq in 0..32u16 {
            w.host_do(a, |h, ctx| {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq)
            });
        }
        w.run_until_idle(10_000_000);
        w.trace.events().len()
    }

    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(10);
    for (label, metrics, tracing, profiled) in [
        ("tracing_disabled", false, false, false),
        ("disabled", false, true, false),
        ("enabled", true, true, false),
        ("profiled", true, true, true),
    ] {
        if profiled {
            netsim::profile::set_enabled(true);
        }
        g.bench_function(format!("ping_world_metrics_{label}"), |b| {
            b.iter(|| {
                let (mut w, a) = ping_world();
                if metrics {
                    w.enable_metrics();
                }
                w.trace.set_enabled(tracing);
                black_box(drive(w, a))
            })
        });
        if profiled {
            netsim::profile::set_enabled(false);
            netsim::profile::reset();
        }
    }

    // The scale-ready telemetry paths, measured against `enabled` above:
    // `sampled` pays the per-event flow-sampling hash plus the invariant
    // monitors, `sketched` additionally routes every counter through the
    // collapsed heavy-hitter registry.
    let sampled = netsim::TelemetryConfig {
        sample_flows: Some(8),
        ..netsim::TelemetryConfig::default()
    };
    let sketched = netsim::TelemetryConfig {
        sample_flows: Some(8),
        sketch_node_threshold: 1,
        ..netsim::TelemetryConfig::default()
    };
    for (label, cfg) in [("sampled", sampled), ("sketched", sketched)] {
        g.bench_function(format!("ping_world_metrics_{label}"), |b| {
            b.iter(|| {
                let (mut w, a) = ping_world();
                w.enable_metrics();
                w.apply_telemetry(&cfg);
                w.trace.set_enabled(true);
                black_box(drive(w, a))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures, bench_micro, bench_metrics_overhead);
criterion_main!(benches);
