//! Result-table formatting and small statistics helpers.

use std::fmt;

/// A plain-text aligned table, the output format of every experiment.
/// Serializable so `all_experiments --json` can emit machine-readable
/// results alongside the human tables.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table heading, printed as a markdown section title.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

serde::impl_serialize!(Table {
    title,
    headers,
    rows,
    notes
});

impl Table {
    /// Create an empty table with the given column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Append a free-form footnote line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// All rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The cell at (row, col) — for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                write!(
                    f,
                    " {:<w$} |",
                    cells.get(i).map(String::as_str).unwrap_or(""),
                    w = w
                )?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Format microseconds as milliseconds with 2 decimals.
pub fn ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["mode", "hops"]);
        t.row(&["Out-IE", "5"]);
        t.row(&["Out-DH", "2"]);
        t.note("lower is better");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| Out-IE | 5    |"));
        assert!(s.contains("note: lower is better"));
        assert_eq!(t.cell(1, 1), "2");
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(ms(1234), "1.23");
    }
}
