//! A correspondent hook that *forces* one of the four In-modes of §5,
//! regardless of what would be sensible — the instrument that lets
//! experiment E8 probe all sixteen cells of Figure 10, including the dark
//! ones.
//!
//! A real correspondent host forms a belief about its peer's address and
//! emits transport checksums consistent with that belief. To force a cell,
//! this hook re-addresses outgoing packets between the mobile's home and
//! care-of addresses *and recomputes the transport checksum*, exactly as a
//! (possibly misguided) correspondent transport would have produced them.
//! Whether TCP then survives is measured, not assumed.

use std::any::Any;

use bytes::Bytes;

use mip_core::InMode;
use netsim::device::host::{MobilityHook, RouteDecision};
use netsim::device::TxMeta;
use netsim::wire::encap::{encapsulate, EncapFormat};
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::wire::tcpseg::TcpSegment;
use netsim::wire::udp::UdpDatagram;
use netsim::{Host, NetCtx, TransformKind};

/// Rebuild `pkt` with new addresses, recomputing the TCP/UDP checksum over
/// the new pseudo-header (what the sending transport would have emitted had
/// it believed in these endpoints all along).
pub fn readdress(pkt: &Ipv4Packet, new_src: Ipv4Addr, new_dst: Ipv4Addr) -> Ipv4Packet {
    let payload = match pkt.protocol {
        IpProtocol::Tcp => TcpSegment::parse(&pkt.payload, pkt.src, pkt.dst)
            .map(|seg| Bytes::from(seg.emit(new_src, new_dst)))
            .unwrap_or_else(|_| pkt.payload.clone()),
        IpProtocol::Udp => UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst)
            .map(|d| Bytes::from(d.emit(new_src, new_dst)))
            .unwrap_or_else(|_| pkt.payload.clone()),
        _ => pkt.payload.clone(),
    };
    Ipv4Packet {
        src: new_src,
        dst: new_dst,
        payload,
        ..pkt.clone()
    }
}

/// Forces every packet the correspondent sends toward the mobile (by either
/// address) to use exactly one In-mode.
pub struct ForcedChDelivery {
    /// The mobile's permanent home address.
    pub home: Ipv4Addr,
    /// The mobile's current care-of address.
    pub coa: Ipv4Addr,
    /// The mobile's home agent.
    pub home_agent: Ipv4Addr,
    /// The In-mode every mobile-bound packet is forced into.
    pub mode: InMode,
    /// Tunnel format used when encapsulating.
    pub encap: EncapFormat,
}

impl ForcedChDelivery {
    /// Install the forced-delivery hook on a correspondent host.
    pub fn install(
        world: &mut netsim::World,
        node: netsim::NodeId,
        home: Ipv4Addr,
        coa: Ipv4Addr,
        home_agent: Ipv4Addr,
        mode: InMode,
    ) {
        let host = world.host_mut(node);
        host.set_decap_capable(true);
        host.set_hook(Box::new(ForcedChDelivery {
            home,
            coa,
            home_agent,
            mode,
            encap: EncapFormat::IpInIp,
        }));
    }
}

impl MobilityHook for ForcedChDelivery {
    fn route_outgoing(
        &mut self,
        pkt: Ipv4Packet,
        _meta: TxMeta,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> RouteDecision {
        if pkt.dst != self.home && pkt.dst != self.coa {
            return RouteDecision::Continue(pkt); // not mobile-bound traffic
        }
        match self.mode {
            // Naïve addressing to the permanent home address: the Internet
            // (and the home agent) do the rest.
            InMode::IE => {
                let p = if pkt.dst == self.home {
                    pkt
                } else {
                    readdress(&pkt, pkt.src, self.home)
                };
                RouteDecision::Continue(p)
            }
            // Encapsulate to the care-of address ourselves.
            InMode::DE => {
                let inner = if pkt.dst == self.home {
                    pkt
                } else {
                    readdress(&pkt, pkt.src, self.home)
                };
                let ident = host.alloc_ident();
                match encapsulate(self.encap, inner.src, self.coa, &inner, ident) {
                    Some(mut outer) => {
                        outer.ttl = netsim::wire::ipv4::DEFAULT_TTL;
                        ctx.trace_transform(
                            TransformKind::Encapsulated(self.encap),
                            Some(&inner),
                            &outer,
                        );
                        RouteDecision::Continue(outer)
                    }
                    None => RouteDecision::Continue(inner),
                }
            }
            // Single link-layer hop, destination address untouched (home).
            InMode::DH => {
                let p = if pkt.dst == self.home {
                    pkt
                } else {
                    readdress(&pkt, pkt.src, self.home)
                };
                // Find the interface whose prefix holds the care-of addr.
                for iface in 0..host.nic().iface_count() {
                    if host
                        .nic()
                        .addr(iface)
                        .is_some_and(|a| a.prefix.contains(self.coa))
                    {
                        return RouteDecision::OnLink {
                            iface,
                            next_hop: self.coa,
                            pkt: p,
                        };
                    }
                }
                // Not actually on the mobile's segment: fall back to
                // ordinary routing (the packet will go to the home network).
                RouteDecision::Continue(p)
            }
            // Plain packets to the temporary address.
            InMode::DT => {
                let p = if pkt.dst == self.coa {
                    pkt
                } else {
                    readdress(&pkt, pkt.src, self.coa)
                };
                RouteDecision::Continue(p)
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn readdress_recomputes_tcp_checksum() {
        let seg = TcpSegment {
            src_port: 1000,
            dst_port: 23,
            seq: 1,
            ack: 2,
            flags: netsim::wire::tcpseg::TcpFlags::ack(),
            window: 100,
            mss: None,
            payload: Bytes::from_static(b"payload"),
        };
        let old_src = ip("18.26.0.5");
        let old_dst = ip("36.186.0.99");
        let pkt = Ipv4Packet::new(
            old_src,
            old_dst,
            IpProtocol::Tcp,
            Bytes::from(seg.emit(old_src, old_dst)),
        );
        let new_dst = ip("171.64.15.9");
        let re = readdress(&pkt, old_src, new_dst);
        assert_eq!(re.dst, new_dst);
        // Checksum must verify against the NEW pseudo-header...
        let parsed = TcpSegment::parse(&re.payload, re.src, re.dst).unwrap();
        assert_eq!(parsed.payload, seg.payload);
        // ...and fail against the old one.
        assert!(TcpSegment::parse(&re.payload, old_src, old_dst).is_err());
    }

    #[test]
    fn readdress_recomputes_udp_checksum() {
        let d = UdpDatagram::new(53, 5353, Bytes::from_static(b"answer"));
        let old_src = ip("1.1.1.1");
        let old_dst = ip("2.2.2.2");
        let pkt = Ipv4Packet::new(
            old_src,
            old_dst,
            IpProtocol::Udp,
            Bytes::from(d.emit(old_src, old_dst)),
        );
        let re = readdress(&pkt, ip("3.3.3.3"), ip("4.4.4.4"));
        assert!(UdpDatagram::parse(&re.payload, re.src, re.dst).is_ok());
        assert!(UdpDatagram::parse(&re.payload, old_src, old_dst).is_err());
    }
}
