//! Million-host worlds: a hierarchical topology generator and mass-churn
//! driver.
//!
//! Real deployments of the paper's architecture are not five hosts on two
//! LANs — they are campus networks hanging off transit providers hanging
//! off a backbone, with mobile hosts roaming between stubs. This module
//! builds that shape at parameterized fan-out:
//!
//! ```text
//!   backbone segment (192.168.0.0/24) — one router per backbone domain
//!     └─ transit segment per backbone (192.168.<b+1>.0/24)
//!          └─ transit routers, each serving a fan of stub LANs
//!               └─ stub <sid> = 10.<sid:hi>.<sid:lo>.0/24, hosts .2+
//!   home segment (10.255.0.0/24) off backbone router 0, one home agent
//! ```
//!
//! Stub ids are allocated on power-of-two strides per transit and per
//! backbone, so every transit and backbone domain owns one aggregate CIDR
//! and the routing tables stay *hierarchical*: hosts carry two routes,
//! transit routers `stubs + 2`, backbone routers `transits + backbones + 2`
//! — no table anywhere grows with total world size. Routes are installed
//! directly from the same arithmetic that assigns addresses;
//! `World::compute_routes` (per-node Dijkstra) is never called, which is
//! what makes a 10⁵-host build affordable.
//!
//! Every segment has positive latency, so the PR-8 partitioner is free to
//! shard the world along any domain border; sharded runs stay
//! byte-identical to serial ones.
//!
//! [`run_churn`] then drives the three mass-churn workloads the paper's
//! machinery has to survive at scale: handoff storms (movers re-plug into
//! a neighbouring stub, re-address, announce, and resume traffic), flash
//! crowds (many correspondents converge on one host), and mass
//! re-registration after a home-agent restart loses every binding.

use bytes::Bytes;

use mip_core::{
    HomeAgent, HomeAgentConfig, Policy, PolicyConfig, RegistrationRequest, Strategy,
    REGISTRATION_PORT,
};
use netsim::device::TxMeta;
use netsim::wire::icmp::IcmpMessage;
use netsim::wire::udp::UdpDatagram;
use netsim::{
    HostConfig, IfaceAddr, IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet, LinkConfig, NodeId,
    RouterConfig, SimTime, World,
};

/// Where visiting movers are addressed inside a stub: `.200 + slot`.
/// Resident hosts use `.2 + k`, so residents are capped below this.
const VISITOR_BASE: u32 = 200;

/// Residents per stub must leave the visitor window (`.200`–`.253`) free.
const MAX_HOSTS_PER_STUB: usize = (VISITOR_BASE as usize) - 2;

/// Shape of a hierarchical world. Total host count is the product of the
/// four fan-out knobs; [`ScaleParams::with_hosts`] picks a balanced shape
/// for a target count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleParams {
    /// Backbone domains (routers on the shared backbone segment).
    pub backbones: usize,
    /// Transit routers hanging off each backbone router.
    pub transits_per_backbone: usize,
    /// Stub LANs served by each transit router.
    pub stubs_per_transit: usize,
    /// Resident hosts per stub LAN.
    pub hosts_per_stub: usize,
    /// World RNG seed (drives nothing in the build itself — topology is
    /// pure arithmetic — but seeds the simulation's per-node RNG lanes).
    pub seed: u64,
}

impl ScaleParams {
    /// A balanced shape with at least `hosts` resident hosts.
    pub fn with_hosts(hosts: usize) -> ScaleParams {
        let hosts = hosts.max(1);
        // Fill stubs toward ~196 residents before growing the router tier;
        // a /24 gives room for that plus the visitor window.
        let hosts_per_stub = hosts.div_ceil(512).clamp(2, 196);
        let stubs_needed = hosts.div_ceil(hosts_per_stub);
        let stubs_per_transit = stubs_needed.div_ceil(16).clamp(1, 32);
        let transits_needed = stubs_needed.div_ceil(stubs_per_transit);
        let transits_per_backbone = transits_needed.clamp(1, 8);
        let backbones = transits_needed.div_ceil(transits_per_backbone).max(1);
        ScaleParams {
            backbones,
            transits_per_backbone,
            stubs_per_transit,
            hosts_per_stub,
            seed: 1,
        }
    }

    /// Stub-id stride of one transit domain (power of two, so the domain
    /// owns an aggregate CIDR).
    fn stride_t(&self) -> usize {
        self.stubs_per_transit.next_power_of_two()
    }

    /// Stub-id stride of one backbone domain.
    fn stride_b(&self) -> usize {
        self.transits_per_backbone.next_power_of_two() * self.stride_t()
    }

    /// Stub id of `(backbone, transit, stub)` — the unit of addressing.
    fn sid(&self, b: usize, t: usize, s: usize) -> usize {
        b * self.stride_b() + t * self.stride_t() + s
    }

    /// Total stub LANs.
    pub fn total_stubs(&self) -> usize {
        self.backbones * self.transits_per_backbone * self.stubs_per_transit
    }

    /// Total resident hosts (excludes routers and the home agent).
    pub fn total_hosts(&self) -> usize {
        self.total_stubs() * self.hosts_per_stub
    }

    /// Total nodes of any kind the build will create.
    pub fn total_nodes(&self) -> usize {
        self.backbones + self.backbones * self.transits_per_backbone + self.total_hosts() + 1
    }
}

/// The address of host `k` (0-based resident index) on stub `sid`.
fn stub_host_addr(sid: usize, k: usize) -> Ipv4Addr {
    Ipv4Addr((10 << 24) | ((sid as u32) << 8) | (2 + k as u32))
}

/// The gateway (transit-router) address on stub `sid`.
fn stub_gateway(sid: usize) -> Ipv4Addr {
    Ipv4Addr((10 << 24) | ((sid as u32) << 8) | 1)
}

/// The /24 covering stub `sid`.
fn stub_cidr(sid: usize) -> Ipv4Cidr {
    Ipv4Cidr::new(Ipv4Addr((10 << 24) | ((sid as u32) << 8)), 24)
}

/// The aggregate CIDR covering `count` (a power of two) stub ids starting
/// at the aligned `base`.
fn aggregate_cidr(base: usize, count: usize) -> Ipv4Cidr {
    debug_assert!(count.is_power_of_two() && base.is_multiple_of(count));
    let len = 24 - count.trailing_zeros() as u8;
    Ipv4Cidr::new(Ipv4Addr((10 << 24) | ((base as u32) << 8)), len)
}

/// One stub LAN in the built world.
#[derive(Debug, Clone, Copy)]
pub struct StubInfo {
    /// The stub id — also the middle 16 bits of every address on it.
    pub sid: usize,
    /// The LAN segment.
    pub segment: netsim::SegmentId,
    /// Resident hosts, in address order (`.2`, `.3`, …).
    pub first_host: NodeId,
    /// Resident count.
    pub hosts: usize,
}

/// Index into a built hierarchical world: every id the churn driver (or an
/// experiment) needs to reach without string lookups.
pub struct ScaleIndex {
    /// The shape the world was built from.
    pub params: ScaleParams,
    /// Backbone routers, one per backbone domain.
    pub backbone_routers: Vec<NodeId>,
    /// Transit routers, `backbones × transits_per_backbone`, backbone-major.
    pub transit_routers: Vec<NodeId>,
    /// Stub LANs, backbone-major then transit-major.
    pub stubs: Vec<StubInfo>,
    /// Every resident host, in stub order then address order. NodeIds are
    /// contiguous per stub (see [`StubInfo::first_host`]).
    pub hosts: Vec<NodeId>,
    /// The home agent host on the home segment.
    pub ha: NodeId,
    /// The home agent's address (registration target).
    pub ha_addr: Ipv4Addr,
    /// The home prefix the agent serves (re-registration home addresses).
    pub home_prefix: Ipv4Cidr,
}

impl ScaleIndex {
    /// The stub a (never-moved) host lives on, by index into `hosts`.
    pub fn stub_of(&self, host_ix: usize) -> usize {
        host_ix / self.params.hosts_per_stub
    }
}

/// Build a hierarchical world from `params`. Routes are installed
/// arithmetically (two per host, an aggregate fan per router); no
/// shortest-path computation runs at any size.
pub fn build_world(params: &ScaleParams) -> (World, ScaleIndex) {
    assert!(params.backbones >= 1 && params.backbones <= 253);
    assert!(params.transits_per_backbone >= 1 && params.transits_per_backbone <= 253);
    assert!(
        params.hosts_per_stub >= 1 && params.hosts_per_stub <= MAX_HOSTS_PER_STUB,
        "hosts_per_stub {} outside 1..={MAX_HOSTS_PER_STUB}",
        params.hosts_per_stub
    );
    // Stub ids live in the middle 16 address bits; 10.255.0.0/16 is the
    // home prefix, so the id space must stop short of it.
    assert!(
        params.backbones * params.stride_b() <= 0xFF00,
        "stub id space overflows into the home prefix"
    );

    let mut w = World::with_shards(params.seed, netsim::default_shards());
    w.reserve(
        params.total_nodes(),
        2 + params.backbones + params.total_stubs(),
    );

    let backbone_seg = w.add_segment(LinkConfig::wan(5));
    let home_seg = w.add_segment(LinkConfig::lan());

    let mut backbone_routers = Vec::with_capacity(params.backbones);
    let mut transit_routers = Vec::with_capacity(params.backbones * params.transits_per_backbone);
    let mut stubs = Vec::with_capacity(params.total_stubs());
    let mut hosts = Vec::with_capacity(params.total_hosts());

    // Backbone routers and their transit segments first, so every later
    // tier can point routes at addresses that already exist.
    let mut transit_segs = Vec::with_capacity(params.backbones);
    for b in 0..params.backbones {
        let r = w.add_router(RouterConfig::named(&format!("bb{b}")));
        let if_bb = w.attach(r, backbone_seg, Some(&format!("192.168.0.{}/24", b + 1)));
        let tseg = w.add_segment(LinkConfig::wan(2));
        let if_tr = w.attach(r, tseg, Some(&format!("192.168.{}.254/24", b + 1)));
        backbone_routers.push(r);
        transit_segs.push(tseg);

        let router = w.router_mut(r);
        router.add_route(Ipv4Cidr::new(Ipv4Addr(0xC0A8_0000), 24), if_bb, None);
        router.add_route(
            Ipv4Cidr::new(Ipv4Addr(0xC0A8_0000 | ((b as u32 + 1) << 8)), 24),
            if_tr,
            None,
        );
        if b == 0 {
            // The home segment hangs here; the /16 route makes the whole
            // home prefix "on-link", so the agent's proxy ARP can capture
            // any registered home address (RFC 1027 style).
            let if_home = w.attach(r, home_seg, Some("10.255.0.1/24"));
            w.router_mut(r)
                .add_route(Ipv4Cidr::new(Ipv4Addr(0x0AFF_0000), 16), if_home, None);
        } else {
            w.router_mut(r).add_route(
                Ipv4Cidr::new(Ipv4Addr(0x0AFF_0000), 16),
                if_bb,
                Some(Ipv4Addr(0xC0A8_0001)),
            );
        }
    }
    // Inter-backbone aggregates (needs every backbone router's address).
    for (b, &r) in backbone_routers.iter().enumerate() {
        for other in 0..params.backbones {
            if other == b {
                continue;
            }
            w.router_mut(r).add_route(
                aggregate_cidr(params.sid(other, 0, 0), params.stride_b()),
                0, // backbone iface is always the router's first
                Some(Ipv4Addr(0xC0A8_0000 | (other as u32 + 1))),
            );
        }
    }

    // Transit routers, their stub fans, and the hosts.
    for b in 0..params.backbones {
        for t in 0..params.transits_per_backbone {
            let r = w.add_router(RouterConfig::named(&format!("tr{b}-{t}")));
            let if_up = w.attach(
                r,
                transit_segs[b],
                Some(&format!("192.168.{}.{}/24", b + 1, t + 1)),
            );
            transit_routers.push(r);
            {
                let router = w.router_mut(r);
                router.add_route(
                    Ipv4Cidr::new(Ipv4Addr(0xC0A8_0000 | ((b as u32 + 1) << 8)), 24),
                    if_up,
                    None,
                );
                router.add_route(
                    Ipv4Cidr::new(Ipv4Addr(0), 0),
                    if_up,
                    Some(Ipv4Addr(0xC0A8_00FE | ((b as u32 + 1) << 8))),
                );
            }
            // Tell this backbone's router about the transit aggregate.
            w.router_mut(backbone_routers[b]).add_route(
                aggregate_cidr(params.sid(b, t, 0), params.stride_t()),
                1, // transit-segment iface is always the second
                Some(Ipv4Addr(
                    0xC0A8_0000 | ((b as u32 + 1) << 8) | (t as u32 + 1),
                )),
            );

            for s in 0..params.stubs_per_transit {
                let sid = params.sid(b, t, s);
                let seg = w.add_segment(LinkConfig::lan());
                let if_stub = w.attach(
                    r,
                    seg,
                    Some(&format!("10.{}.{}.1/24", sid >> 8, sid & 0xFF)),
                );
                w.router_mut(r).add_route(stub_cidr(sid), if_stub, None);

                let mut first_host = None;
                for k in 0..params.hosts_per_stub {
                    let h = w.add_host(HostConfig::conventional(&format!("h{sid}-{k}")));
                    let iface = w.attach(h, seg, None);
                    let host = w.host_mut(h);
                    host.set_iface_addr(
                        iface,
                        Some(IfaceAddr {
                            addr: stub_host_addr(sid, k),
                            prefix: stub_cidr(sid),
                        }),
                    );
                    host.add_route(stub_cidr(sid), iface, None);
                    host.add_route(
                        Ipv4Cidr::new(Ipv4Addr(0), 0),
                        iface,
                        Some(stub_gateway(sid)),
                    );
                    first_host.get_or_insert(h);
                    hosts.push(h);
                }
                stubs.push(StubInfo {
                    sid,
                    segment: seg,
                    first_host: first_host.expect("at least one host per stub"),
                    hosts: params.hosts_per_stub,
                });
            }
        }
    }

    // The home agent, serving 10.255.0.0/16 from the home segment.
    let ha_addr = Ipv4Addr(0x0AFF_0002);
    let home_prefix = Ipv4Cidr::new(Ipv4Addr(0x0AFF_0000), 16);
    let ha = w.add_host(HostConfig::agent("ha"));
    let ha_if = w.attach(ha, home_seg, Some("10.255.0.2/24"));
    {
        let host = w.host_mut(ha);
        host.add_route(Ipv4Cidr::new(Ipv4Addr(0x0AFF_0000), 24), ha_if, None);
        host.add_route(
            Ipv4Cidr::new(Ipv4Addr(0), 0),
            ha_if,
            Some(Ipv4Addr(0x0AFF_0001)),
        );
    }
    HomeAgent::install(
        &mut w,
        ha,
        HomeAgentConfig::new(ha_addr, home_prefix, ha_if),
    );

    let index = ScaleIndex {
        params: *params,
        backbone_routers,
        transit_routers,
        stubs,
        hosts,
        ha,
        ha_addr,
        home_prefix,
    };
    (w, index)
}

/// Mass-churn workload sizes. Each knob is an absolute event count; zero
/// skips that phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnParams {
    /// Handoff storm: hosts that simultaneously re-plug into the next stub.
    pub handoffs: usize,
    /// Flash crowd: correspondents that ping one host in a burst.
    pub flash_crowd: usize,
    /// Mass re-registration: mobiles that register, lose their binding to a
    /// home-agent restart, and register again.
    pub rereg: usize,
    /// Registration lifetime requested, seconds.
    pub lifetime: u16,
    /// Policy miss storm: distinct correspondents driven through one
    /// mobile's method cache, sized at half this count so the storm is 2×
    /// capacity. Zero (the default) skips the phase entirely, keeping
    /// pre-existing reports byte-identical.
    pub correspondents: usize,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            handoffs: 64,
            flash_crowd: 64,
            rereg: 64,
            lifetime: 300,
            correspondents: 0,
        }
    }
}

/// What [`run_churn`] did, all in simulated terms (no wall-clock values —
/// callers time the call themselves, so reports stay deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Handoffs performed (detach → reattach → re-address → announce).
    pub handoffs: u64,
    /// Flash-crowd pings sent.
    pub flash_pings: u64,
    /// Echo replies the flash-crowd target produced.
    pub flash_replies: u64,
    /// Registration requests sent (both waves).
    pub registrations_sent: u64,
    /// Registrations the home agent accepted.
    pub registrations_accepted: u64,
    /// Bindings the home-agent restart dropped.
    pub bindings_dropped: u64,
    /// Total churn events (handoffs + pings + registrations + policy
    /// decisions).
    pub events: u64,
    /// Simulated microseconds the whole churn run covered.
    pub sim_elapsed_us: u64,
    /// Outcome of the policy miss storm; `None` when
    /// [`ChurnParams::correspondents`] was zero.
    pub policy: Option<PolicyStormStats>,
}

/// What the policy miss storm observed: mode-decision quality under
/// method-cache pressure, all deterministic counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStormStats {
    /// Distinct storm correspondents decided for.
    pub correspondents: u64,
    /// The method-cache capacity the storm ran against (half the storm).
    pub cache_cap: u64,
    /// Total `mode_for` decisions made.
    pub decisions: u64,
    /// Decisions answered from a live cache entry.
    pub hits: u64,
    /// Decisions made afresh from rules/strategy.
    pub misses: u64,
    /// Entries the LRU discipline displaced during the storm.
    pub evictions: u64,
    /// Actively conversing correspondents with learned demotion history.
    pub hot_set: u64,
    /// Hot correspondents whose history survived the storm (the eviction
    /// discipline's whole point: this must equal `hot_set`).
    pub hot_retained: u64,
}

serde::impl_serialize!(PolicyStormStats {
    correspondents,
    cache_cap,
    decisions,
    hits,
    misses,
    evictions,
    hot_set,
    hot_retained,
});

impl serde::Serialize for ChurnStats {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("handoffs".to_string(), serde::Value::U64(self.handoffs)),
            (
                "flash_pings".to_string(),
                serde::Value::U64(self.flash_pings),
            ),
            (
                "flash_replies".to_string(),
                serde::Value::U64(self.flash_replies),
            ),
            (
                "registrations_sent".to_string(),
                serde::Value::U64(self.registrations_sent),
            ),
            (
                "registrations_accepted".to_string(),
                serde::Value::U64(self.registrations_accepted),
            ),
            (
                "bindings_dropped".to_string(),
                serde::Value::U64(self.bindings_dropped),
            ),
            ("events".to_string(), serde::Value::U64(self.events)),
            (
                "sim_elapsed_us".to_string(),
                serde::Value::U64(self.sim_elapsed_us),
            ),
        ];
        // Appended only when the storm ran, so default-config runs keep
        // their pre-existing report bytes.
        if let Some(p) = &self.policy {
            fields.push(("policy".to_string(), p.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Event-budget guard for [`World::run_until_idle`]: generous per churn
/// event, since one churn action can trigger several ARP broadcasts and
/// each broadcast on a full stub LAN fans out to every resident NIC.
fn idle_limit(events: usize, params: &ScaleParams) -> usize {
    100_000 + events * 32 * (params.hosts_per_stub + 8)
}

/// Drive the three mass-churn workloads against a built world. Entirely
/// deterministic: participants are chosen by stride arithmetic, not
/// sampling.
pub fn run_churn(w: &mut World, index: &ScaleIndex, churn: &ChurnParams) -> ChurnStats {
    let mut stats = ChurnStats::default();
    let t0 = w.now();
    let params = &index.params;
    let nstubs = index.stubs.len();

    // The transit domain currently serving a host, from its (possibly
    // visitor) address: addresses embed the stub id, stub ids embed the
    // domain. Used to split bursts into a warming round and the storm
    // proper — see the flash-crowd comment below.
    let domain_of = |w: &World, h: NodeId| -> usize {
        let sid = (w.host(h).iface_addr(0).map_or(0, |a| a.addr.0) >> 8) as usize & 0xFFFF;
        let b = sid / params.stride_b();
        let t = (sid % params.stride_b()) / params.stride_t();
        b * params.transits_per_backbone + t
    };
    let ndomains = params.backbones * params.transits_per_backbone;

    // --- Handoff storm -----------------------------------------------------
    // Movers are residents with k >= 1 (k == 0 stays put as each stub's
    // ping landmark), spread evenly across the world; each re-plugs into
    // the next stub, takes a visitor address there, swaps its routes,
    // announces with gratuitous ARP, and pings the local landmark.
    if churn.handoffs > 0 && nstubs > 1 && params.hosts_per_stub > 1 {
        let movers_avail = index.hosts.len() - nstubs; // k >= 1 residents
        let movers = churn.handoffs.min(movers_avail);
        let mut visitors = vec![0u32; nstubs];
        let mut picked = 0usize;
        let mut cursor = 0usize;
        let step = (movers_avail / movers).max(1);
        while picked < movers {
            // cursor walks k>=1 residents; map to a concrete host index.
            let stub = cursor / (params.hosts_per_stub - 1);
            let k = 1 + cursor % (params.hosts_per_stub - 1);
            let host_ix = stub * params.hosts_per_stub + k;
            cursor += step;
            let target = (stub + 1) % nstubs;
            let slot = visitors[target];
            if u64::from(VISITOR_BASE) + u64::from(slot) > 253 {
                continue; // visitor window on that stub is full
            }
            visitors[target] += 1;
            let h = index.hosts[host_ix];
            let tsid = index.stubs[target].sid;
            let vaddr = Ipv4Addr((10 << 24) | ((tsid as u32) << 8) | (VISITOR_BASE + slot));
            let landmark = stub_host_addr(tsid, 0);
            w.reattach(h, 0, index.stubs[target].segment);
            {
                let host = w.host_mut(h);
                host.set_iface_addr(
                    0,
                    Some(IfaceAddr {
                        addr: vaddr,
                        prefix: stub_cidr(tsid),
                    }),
                );
                host.clear_routes();
                host.add_route(stub_cidr(tsid), 0, None);
                host.add_route(Ipv4Cidr::new(Ipv4Addr(0), 0), 0, Some(stub_gateway(tsid)));
            }
            w.host_do(h, |host, ctx| {
                host.send_gratuitous_arp(ctx, 0, vaddr);
                host.send_ping(ctx, vaddr, landmark, 1);
            });
            picked += 1;
        }
        stats.handoffs = picked as u64;
        w.run_until_idle(idle_limit(picked, params));
    }

    // --- Flash crowd -------------------------------------------------------
    // Correspondents across the world converge on stub 0's landmark host.
    if churn.flash_crowd > 0 && index.hosts.len() > 1 {
        let target = stub_host_addr(index.stubs[0].sid, 0);
        let crowd = churn.flash_crowd.min(index.hosts.len() - 1);
        let step = ((index.hosts.len() - 1) / crowd.max(1)).max(1);
        let mut senders = Vec::with_capacity(crowd);
        let mut ix = 1; // skip the target itself (host 0 of stub 0)
        while senders.len() < crowd && ix < index.hosts.len() {
            senders.push(index.hosts[ix]);
            ix += step;
        }
        // Fire in two rounds: the first sender behind each transit router
        // goes alone and resolves ARP at every shared hop (its transit
        // uplink, the backbone crossing, the target's stub router, the
        // target itself); the rest then go as one simultaneous burst.
        // NICs queue only a few packets per unresolved neighbour, so an
        // un-warmed convergence hop would shed most of the storm.
        let mut warmed = vec![false; ndomains];
        let (mut first, mut rest) = (Vec::new(), Vec::with_capacity(senders.len()));
        for &h in &senders {
            if std::mem::replace(&mut warmed[domain_of(w, h)], true) {
                rest.push(h);
            } else {
                first.push(h);
            }
        }
        for round in [&first, &rest] {
            for &h in round {
                w.host_do(h, |host, ctx| {
                    if let Some(a) = host.iface_addr(0) {
                        host.send_ping(ctx, a.addr, target, 2);
                    }
                });
            }
            w.run_until_idle(idle_limit(round.len().max(1), params));
        }
        stats.flash_pings = senders.len() as u64;
        stats.flash_replies = senders
            .iter()
            .map(|&h| {
                w.host(h)
                    .icmp_log
                    .iter()
                    .filter(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 2, .. }))
                    .count() as u64
            })
            .sum();
    }

    // --- Mass re-registration ---------------------------------------------
    // Stride-chosen mobiles register with the home agent, the agent
    // restarts (losing every binding), and the same mobiles re-register —
    // the stampede a real deployment sees after a home-agent reboot.
    if churn.rereg > 0 && !index.hosts.is_empty() {
        let count = churn.rereg.min(index.hosts.len()).min(50_000);
        let step = (index.hosts.len() / count).max(1);
        let mut buf = Vec::with_capacity(mip_core::registration::REQUEST_LEN);
        for wave in 0..2u64 {
            // Like the flash crowd, each wave fires in two rounds: one
            // registrant per transit domain warms the shared ARP path to
            // the home agent, then the stampede proper. Wave 1 warms
            // again because wave 0's own success polluted the path: the
            // agent's per-binding gratuitous proxy ARPs blow the backbone
            // router's neighbour cache past its cap and the agent's own
            // entry is evicted with them.
            let mut warmed = vec![false; ndomains];
            let (mut first, mut rest) = (Vec::new(), Vec::with_capacity(count));
            for i in 0..count {
                let h = index.hosts[(i * step) % index.hosts.len()];
                if std::mem::replace(&mut warmed[domain_of(w, h)], true) {
                    rest.push((i, h));
                } else {
                    first.push((i, h));
                }
            }
            for round in [&first, &rest] {
                if round.is_empty() {
                    continue;
                }
                for &(i, h) in round {
                    // Fictional home addresses inside 10.255.0.0/16, clear
                    // of the home segment's own /24.
                    let home =
                        Ipv4Addr(0x0AFF_0000 | (1 + (i as u32 / 200)) << 8 | (1 + i as u32 % 200));
                    let ha_addr = index.ha_addr;
                    let lifetime = churn.lifetime;
                    buf.clear();
                    w.host_do(h, |host, ctx| {
                        let Some(a) = host.iface_addr(0) else { return };
                        let req = RegistrationRequest {
                            lifetime,
                            home_address: home,
                            home_agent: ha_addr,
                            care_of: a.addr,
                            ident: wave * 1_000_000 + i as u64,
                        };
                        req.emit_into(&mut buf);
                        let dgram =
                            UdpDatagram::new(5000, REGISTRATION_PORT, Bytes::copy_from_slice(&buf));
                        let mut pkt = Ipv4Packet::new(
                            a.addr,
                            ha_addr,
                            IpProtocol::Udp,
                            Bytes::from(dgram.emit(a.addr, ha_addr)),
                        );
                        pkt.ident = host.alloc_ident();
                        host.send_ip(ctx, pkt, TxMeta::default());
                    });
                    stats.registrations_sent += 1;
                }
                w.run_until_idle(idle_limit(round.len(), params));
            }
            if wave == 0 {
                stats.bindings_dropped = HomeAgent::restart(w, index.ha) as u64;
            }
        }
        stats.registrations_accepted = w
            .host_mut(index.ha)
            .hook_as::<HomeAgent>()
            .expect("home agent installed")
            .stats
            .registrations_accepted;
    }

    // --- Policy miss storm -------------------------------------------------
    // A flash crowd seen from the *policy* layer: one mobile's method
    // cache, sized at half the storm, faces `correspondents` distinct
    // first contacts while a small hot set keeps conversing. Measures
    // what the LRU eviction discipline preserves under pressure.
    if churn.correspondents > 0 {
        let storm = run_policy_storm(w.now(), churn.correspondents);
        stats.events += storm.decisions;
        stats.policy = Some(storm);
    }

    stats.events += stats.handoffs + stats.flash_pings + stats.registrations_sent;
    stats.sim_elapsed_us = w.now().since(t0).as_micros();
    stats
}

/// Drive one mobile's policy engine through a miss storm: cache capacity
/// is `correspondents / 2`, so the storm is twice the cap. A hot set with
/// learned demotion history keeps conversing throughout; the assertion the
/// scale tests make — and the count this reports — is that the LRU
/// discipline evicts only cold storm entries and every hot correspondent
/// keeps its history. Entirely deterministic: addresses, feedback and the
/// synthetic sim-clock all advance by arithmetic.
fn run_policy_storm(now0: SimTime, correspondents: usize) -> PolicyStormStats {
    let cap = (correspondents / 2).max(8);
    let hot = (cap / 8).clamp(1, 64);
    // Rules past the linear threshold so the storm exercises the compiled
    // bucketed-LPM path: the 198.19/16 storm range starts pessimistic,
    // sibling ranges get assorted strategies, everything else optimistic.
    let mut config = PolicyConfig::optimistic().with_cache_cap(cap);
    for i in 0..12u32 {
        config = config.with_rule(
            Ipv4Cidr::new(Ipv4Addr(0xC613_0000 + (i << 16)), 16),
            if i % 2 == 0 {
                Strategy::Pessimistic
            } else {
                Strategy::Optimistic
            },
        );
    }
    let mut policy = Policy::new(config);
    let mut t = now0;
    let tick = |policy: &mut Policy, t: &mut SimTime| {
        t.0 += 1;
        policy.audit.set_now(*t);
    };
    // Hot set at 198.18.0.x: first contact plus two failure signals each,
    // learning one demotion (DH → DE) of history worth preserving.
    let hot_addr = |i: usize| Ipv4Addr(0xC612_0000 + i as u32);
    for i in 0..hot {
        tick(&mut policy, &mut t);
        policy.mode_for(hot_addr(i));
        policy.record_feedback(hot_addr(i), true);
        policy.record_feedback(hot_addr(i), true);
    }
    // The storm at 198.19.0.0+: distinct cold first contacts, twice the
    // cache capacity, with the hot set conversing between bursts. The
    // refresh interval stays well under the cap so an actively conversing
    // correspondent can never sink to the LRU tail (hot + interval < cap).
    let interval = (cap / 4).clamp(1, 64);
    for i in 0..correspondents {
        tick(&mut policy, &mut t);
        policy.mode_for(Ipv4Addr(0xC613_0000 + i as u32));
        if i % interval == interval - 1 {
            for k in 0..hot {
                tick(&mut policy, &mut t);
                policy.record_feedback(hot_addr(k), false);
            }
        }
    }
    let hot_retained = (0..hot)
        .filter(|&i| policy.entry(hot_addr(i)).is_some_and(|e| e.demotions >= 1))
        .count() as u64;
    let cs = policy.cache_stats();
    PolicyStormStats {
        correspondents: correspondents as u64,
        cache_cap: cap as u64,
        decisions: cs.hits + cs.misses,
        hits: cs.hits,
        misses: cs.misses,
        evictions: cs.evictions,
        hot_set: hot as u64,
        hot_retained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleParams {
        ScaleParams {
            backbones: 2,
            transits_per_backbone: 2,
            stubs_per_transit: 2,
            hosts_per_stub: 3,
            seed: 7,
        }
    }

    #[test]
    fn shapes_cover_their_targets() {
        for n in [1, 10, 500, 10_000, 100_000] {
            let p = ScaleParams::with_hosts(n);
            assert!(p.total_hosts() >= n, "{n}: {p:?}");
            assert!(p.hosts_per_stub <= MAX_HOSTS_PER_STUB);
        }
    }

    #[test]
    fn cross_domain_ping_works_without_compute_routes() {
        let (mut w, ix) = build_world(&small());
        assert_eq!(ix.hosts.len(), 24);
        // First host of the first stub pings the first host of the last
        // stub — crosses stub → transit → backbone → transit → stub.
        let src_sid = ix.stubs[0].sid;
        let dst_sid = ix.stubs.last().unwrap().sid;
        let (src, dst) = (stub_host_addr(src_sid, 0), stub_host_addr(dst_sid, 0));
        let h = ix.hosts[0];
        w.host_do(h, |host, ctx| host.send_ping(ctx, src, dst, 9));
        w.run_until_idle(50_000);
        let log = &w.host(h).icmp_log;
        assert!(
            log.iter()
                .any(|e| matches!(e.message, IcmpMessage::EchoReply { .. })),
            "no echo reply: {log:?}"
        );
    }

    #[test]
    fn registration_reaches_the_home_agent() {
        let (mut w, ix) = build_world(&small());
        let stats = run_churn(
            &mut w,
            &ix,
            &ChurnParams {
                handoffs: 0,
                flash_crowd: 0,
                rereg: 5,
                lifetime: 120,
                correspondents: 0,
            },
        );
        assert_eq!(stats.registrations_sent, 10); // two waves
        assert_eq!(stats.registrations_accepted, 10);
        assert_eq!(stats.bindings_dropped, 5);
    }

    #[test]
    fn full_churn_runs_to_completion() {
        let (mut w, ix) = build_world(&small());
        let stats = run_churn(&mut w, &ix, &ChurnParams::default());
        assert!(stats.handoffs > 0);
        assert!(stats.flash_pings > 0);
        assert!(stats.flash_replies > 0, "flash target answered no pings");
        assert!(stats.events > 0);
        assert!(stats.sim_elapsed_us > 0);
        assert!(stats.policy.is_none(), "storm off by default");
    }

    #[test]
    fn policy_storm_evicts_only_cold_entries() {
        for correspondents in [64usize, 1024, 20_000] {
            let storm = run_policy_storm(SimTime(1_000), correspondents);
            assert_eq!(storm.correspondents, correspondents as u64);
            assert_eq!(
                storm.hot_retained, storm.hot_set,
                "{correspondents}: every hot correspondent keeps its history"
            );
            assert!(
                storm.evictions >= (correspondents / 2) as u64,
                "{correspondents}: a 2x-cap storm must evict about a capful"
            );
            assert_eq!(storm.decisions, storm.hits + storm.misses);
        }
    }

    #[test]
    fn policy_storm_stats_serialize_only_when_present() {
        let mut stats = ChurnStats::default();
        let json = serde_json::to_string(&stats).unwrap();
        assert!(!json.contains("policy"), "{json}");
        stats.policy = Some(PolicyStormStats::default());
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"policy\":{"), "{json}");
    }
}
