//! Shared main-routine for the experiment binaries.
//!
//! Every `src/bin` wrapper does the same four things: enable report
//! collection, run its experiment, print the tables, and emit the JSON
//! run report. [`run`] centralises that and layers the flight recorder on
//! top: setting `NETSIM_PROFILE=1` (any non-empty value other than `0`)
//! or passing `--profile` turns on `netsim::profile` for the process, so
//! the emitted report carries `profile`, `runner`, and per-snapshot
//! gauge-sample sections. `--profile-chrome <path>` additionally writes
//! the scope tree as a chrome://tracing / Perfetto file.
//!
//! Scale-ready telemetry is layered the same way: `--sample-flows N` /
//! `NETSIM_SAMPLE=N`, `--topk K`, and `--sketch-threshold N` (see
//! [`telemetry_requested`]) install a [`netsim::TelemetryConfig`] that
//! every observed world receives — head-based flow sampling, heavy-hitter
//! sketches, and the online invariant monitors' report section.
//!
//! Sharded execution is opt-in per process: `--shards N` /
//! `NETSIM_SHARDS=N` makes every subsequently built world partition
//! itself into up to `N` conservatively synchronized shards. Output is
//! byte-identical to a serial run, so the flag is safe on any
//! experiment; per-shard counters land in the profile-gated `scheduler`
//! report section.

use crate::report;
use crate::Table;
use netsim::TelemetryConfig;

/// Whether this process should record the flight recorder: the
/// `NETSIM_PROFILE` environment variable (non-empty, not `"0"`) or a
/// `--profile` argument.
pub fn profile_requested() -> bool {
    std::env::var("NETSIM_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
        || std::env::args().any(|a| a == "--profile")
}

/// The value following `flag` in argv, when present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let ix = args.iter().position(|a| a == flag)?;
    args.get(ix + 1).filter(|v| !v.starts_with("--")).cloned()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// An integer knob settable as `--flag N` (wins) or `ENV=N` — the pattern
/// every scale/churn size shares.
pub fn u64_knob(flag: &str, env: &str) -> Option<u64> {
    arg_value(flag)
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64(env))
}

/// Parse the scale-ready telemetry configuration from argv and the
/// environment. `None` when nothing was asked for — the full-fidelity
/// default. Knobs (flag wins over environment variable):
///
/// * `--sample-flows N` / `NETSIM_SAMPLE=N` — record 1-in-N flows fully
///   (anomalous flows always promoted to full capture)
/// * `--topk K` / `NETSIM_TOPK=K` — heavy-hitter sketch slots
/// * `--sketch-threshold N` / `NETSIM_SKETCH_THRESHOLD=N` — node count
///   above which per-node counters collapse into sketches
/// * `NETSIM_TELEMETRY_SEED=S` — seed for every sampling decision
pub fn telemetry_requested() -> Option<TelemetryConfig> {
    let mut cfg = TelemetryConfig::default();
    let mut any = false;
    if let Some(n) = arg_value("--sample-flows")
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64("NETSIM_SAMPLE"))
    {
        cfg.sample_flows = Some(n);
        any = true;
    }
    if let Some(k) = arg_value("--topk")
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64("NETSIM_TOPK"))
    {
        cfg.topk = k as usize;
        any = true;
    }
    if let Some(t) = arg_value("--sketch-threshold")
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64("NETSIM_SKETCH_THRESHOLD"))
    {
        cfg.sketch_node_threshold = t as usize;
        any = true;
    }
    if let Some(s) = env_u64("NETSIM_TELEMETRY_SEED") {
        cfg.seed = s;
    }
    any.then_some(cfg)
}

/// The shard count for sharded world execution: the `--shards N` flag
/// wins over the `NETSIM_SHARDS` environment variable. `None` when
/// neither is present (worlds run serially, today's default).
pub fn shards_requested() -> Option<usize> {
    arg_value("--shards")
        .and_then(|v| v.parse().ok())
        .or_else(|| env_u64("NETSIM_SHARDS").map(|n| n as usize))
        .filter(|&n| n >= 1)
}

/// Run an experiment binary body under the standard harness: report
/// collection on, profiling on when requested, the whole run wrapped in a
/// root scope named after the binary, tables printed, and the run report
/// emitted. Returns the tables for callers that post-process them.
pub fn run(name: &'static str, f: impl FnOnce() -> Vec<Table>) -> Vec<Table> {
    report::enable();
    if let Some(cfg) = telemetry_requested() {
        report::set_telemetry_config(cfg);
    }
    if let Some(n) = shards_requested() {
        netsim::set_default_shards(n);
    }
    let profiling = profile_requested();
    if profiling {
        netsim::profile::set_enabled(true);
    }
    let tables = {
        let _prof = netsim::profile::scope(name);
        f()
    };
    for t in &tables {
        println!("{t}");
    }
    report::emit(name, &tables);
    if profiling {
        export_chrome_if_asked(name);
    }
    tables
}

/// Honour `--profile-chrome <path>`; with no path the trace lands next to
/// the run reports as `<name>-chrome.json`.
fn export_chrome_if_asked(name: &str) {
    let args: Vec<String> = std::env::args().collect();
    let Some(ix) = args.iter().position(|a| a == "--profile-chrome") else {
        return;
    };
    let path = args
        .get(ix + 1)
        .filter(|p| !p.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| format!("{name}-chrome.json"));
    let trace = netsim::profile::capture().chrome_trace();
    let json = serde_json::to_string_pretty(&trace)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e:?}\"}}"));
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("chrome-trace: {path}"),
        Err(e) => eprintln!("chrome-trace: cannot write {path}: {e}"),
    }
}
