//! Shared main-routine for the experiment binaries.
//!
//! Every `src/bin` wrapper does the same four things: enable report
//! collection, run its experiment, print the tables, and emit the JSON
//! run report. [`run`] centralises that and layers the flight recorder on
//! top: setting `NETSIM_PROFILE=1` (any non-empty value other than `0`)
//! or passing `--profile` turns on `netsim::profile` for the process, so
//! the emitted report carries `profile`, `runner`, and per-snapshot
//! gauge-sample sections. `--profile-chrome <path>` additionally writes
//! the scope tree as a chrome://tracing / Perfetto file.

use crate::report;
use crate::Table;

/// Whether this process should record the flight recorder: the
/// `NETSIM_PROFILE` environment variable (non-empty, not `"0"`) or a
/// `--profile` argument.
pub fn profile_requested() -> bool {
    std::env::var("NETSIM_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
        || std::env::args().any(|a| a == "--profile")
}

/// Run an experiment binary body under the standard harness: report
/// collection on, profiling on when requested, the whole run wrapped in a
/// root scope named after the binary, tables printed, and the run report
/// emitted. Returns the tables for callers that post-process them.
pub fn run(name: &'static str, f: impl FnOnce() -> Vec<Table>) -> Vec<Table> {
    report::enable();
    let profiling = profile_requested();
    if profiling {
        netsim::profile::set_enabled(true);
    }
    let tables = {
        let _prof = netsim::profile::scope(name);
        f()
    };
    for t in &tables {
        println!("{t}");
    }
    report::emit(name, &tables);
    if profiling {
        export_chrome_if_asked(name);
    }
    tables
}

/// Honour `--profile-chrome <path>`; with no path the trace lands next to
/// the run reports as `<name>-chrome.json`.
fn export_chrome_if_asked(name: &str) {
    let args: Vec<String> = std::env::args().collect();
    let Some(ix) = args.iter().position(|a| a == "--profile-chrome") else {
        return;
    };
    let path = args
        .get(ix + 1)
        .filter(|p| !p.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| format!("{name}-chrome.json"));
    let trace = netsim::profile::capture().chrome_trace();
    let json = serde_json::to_string_pretty(&trace)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e:?}\"}}"));
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("chrome-trace: {path}"),
        Err(e) => eprintln!("chrome-trace: cannot write {path}: {e}"),
    }
}
