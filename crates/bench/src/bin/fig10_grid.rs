//! Regenerates Figure 10 (the empirical 4x4 grid). See DESIGN.md E8.
fn main() {
    bench::runbin::run("fig10_grid", || {
        vec![
            bench::experiments::fig10_grid::run().table,
            bench::experiments::fig10_grid::run_filtered().table,
        ]
    });
}
