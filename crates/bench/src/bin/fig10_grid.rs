//! Regenerates Figure 10 (the empirical 4x4 grid). See DESIGN.md E8.
fn main() {
    bench::report::enable();
    let open = bench::experiments::fig10_grid::run().table;
    let filtered = bench::experiments::fig10_grid::run_filtered().table;
    println!("{open}");
    println!("{filtered}");
    bench::report::emit("fig10_grid", &[open, filtered]);
}
