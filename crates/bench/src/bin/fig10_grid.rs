//! Regenerates Figure 10 (the empirical 4x4 grid). See DESIGN.md E8.
fn main() {
    println!("{}", bench::experiments::fig10_grid::run().table);
    println!("{}", bench::experiments::fig10_grid::run_filtered().table);
}
