//! Regenerates Figure 10 (the empirical 4x4 grid). See DESIGN.md E8.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("fig10_grid", || {
        vec![
            bench::experiments::fig10_grid::run().table,
            bench::experiments::fig10_grid::run_filtered().table,
        ]
    });
}
