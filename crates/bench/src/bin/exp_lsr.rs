//! E17: loose source routing vs encapsulation (§4), measured.
fn main() {
    bench::runbin::run("exp_lsr", || vec![bench::experiments::exp_lsr::run()]);
}
