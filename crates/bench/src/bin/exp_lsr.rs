//! E17: loose source routing vs encapsulation (§4), measured.
fn main() {
    println!("{}", bench::experiments::exp_lsr::run());
}
