//! E17: loose source routing vs encapsulation (§4), measured.
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_lsr::run();
    println!("{t}");
    bench::report::emit("exp_lsr", &[t]);
}
