//! E13: transmission-feedback ablation (§7.1.2).
fn main() {
    println!("{}", bench::experiments::exp_feedback::run());
}
