//! E13: transmission-feedback ablation (§7.1.2).
fn main() {
    bench::runbin::run("exp_feedback", || {
        vec![bench::experiments::exp_feedback::run()]
    });
}
