//! E13: transmission-feedback ablation (§7.1.2).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_feedback::run();
    println!("{t}");
    bench::report::emit("exp_feedback", &[t]);
}
