//! Regenerates Figure 5 (smart correspondent learning). See DESIGN.md E5.
fn main() {
    for t in bench::experiments::fig05_smart_ch::run() {
        println!("{t}");
    }
}
