//! Regenerates Figure 5 (smart correspondent learning). See DESIGN.md E5.
fn main() {
    bench::runbin::run("fig05_smart_ch", bench::experiments::fig05_smart_ch::run);
}
