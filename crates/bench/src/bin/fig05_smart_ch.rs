//! Regenerates Figure 5 (smart correspondent learning). See DESIGN.md E5.
fn main() {
    bench::report::enable();
    let tables = bench::experiments::fig05_smart_ch::run();
    for t in &tables {
        println!("{t}");
    }
    bench::report::emit("fig05_smart_ch", &tables);
}
