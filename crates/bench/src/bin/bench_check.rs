//! Soft bench-regression gate: compare two `bench-summary/v1` JSON
//! snapshots and fail (exit 1) if any benchmark id present in **both**
//! slowed down by more than the allowed factor (default 2.0).
//!
//! ```text
//! bench_check <baseline.json> <current.json> [max-slowdown-factor]
//! bench_check <current.json> [max-slowdown-factor]
//! bench_check --baseline <file> <current.json> [max-slowdown-factor]
//! ```
//!
//! With a single snapshot (or `--baseline` omitted) the baseline is picked
//! automatically: the newest committed `BENCH_pr<N>.json` (highest `N`) in
//! the current snapshot's directory, so CI keeps comparing against the
//! latest checked-in numbers without anyone updating the workflow.
//!
//! Ids that exist in only one snapshot are reported but never fail the
//! check — benchmarks come and go between PRs. The factor is deliberately
//! loose: CI runners are noisy, and this gate exists to catch order-of-
//! magnitude regressions (like an accidentally serialised thread pool),
//! not single-digit-percent drift.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use serde_json::Value;

/// Looks up `key` in an object `Value`.
fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_check: cannot read {path}: {e}"));
    let doc: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_check: {path} is not valid JSON: {e}"));
    assert!(
        matches!(field(&doc, "schema"), Some(Value::Str(s)) if s == "bench-summary/v1"),
        "bench_check: {path} is not a bench-summary/v1 snapshot"
    );
    let Some(Value::Array(results)) = field(&doc, "results") else {
        panic!("bench_check: {path} has no results array");
    };
    results
        .iter()
        .map(|r| {
            let Some(Value::Str(id)) = field(r, "id") else {
                panic!("bench_check: result without an id in {path}");
            };
            let median = field(r, "median_ns")
                .and_then(as_f64)
                .unwrap_or_else(|| panic!("bench_check: {id} has no median_ns in {path}"));
            (id.clone(), median)
        })
        .collect()
}

/// Newest committed baseline next to `current`: the `BENCH_pr<N>.json`
/// with the highest `N` (lexicographically-largest `BENCH_*.json` as a
/// fallback), never `current` itself.
fn auto_baseline(current: &str) -> Option<PathBuf> {
    let cur = Path::new(current);
    let dir = match cur.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let cur_name = cur.file_name()?;
    let mut best: Option<(Option<u64>, String, PathBuf)> = None;
    for entry in std::fs::read_dir(&dir).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_name() == cur_name || !name.starts_with("BENCH_") || !name.ends_with(".json")
        {
            continue;
        }
        let pr: Option<u64> = name
            .strip_prefix("BENCH_pr")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse().ok());
        let key = (pr, name.clone());
        if best
            .as_ref()
            .is_none_or(|(bpr, bname, _)| key > (*bpr, bname.clone()))
        {
            best = Some((pr, name, entry.path()));
        }
    }
    best.map(|(_, _, path)| path)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    if let Some(ix) = args.iter().position(|a| a == "--baseline") {
        if ix + 1 >= args.len() {
            eprintln!("bench_check: --baseline needs a file");
            return ExitCode::from(2);
        }
        args.remove(ix);
        baseline_path = Some(args.remove(ix));
    }
    // Remaining forms: <current> [factor] (auto baseline) or the legacy
    // <baseline> <current> [factor]. A second positional that parses as a
    // number is a factor, not a path.
    let mut positional = args;
    let factor: f64 = match positional.last().and_then(|s| s.parse().ok()) {
        Some(f) => {
            positional.pop();
            f
        }
        None => 2.0,
    };
    let (baseline_path, current_path) = match (baseline_path, positional.as_slice()) {
        (Some(b), [c]) => (b, c.clone()),
        (None, [b, c]) => (b.clone(), c.clone()),
        (None, [c]) => match auto_baseline(c) {
            Some(b) => {
                println!("bench_check: auto-selected baseline {}", b.display());
                (b.display().to_string(), c.clone())
            }
            None => {
                eprintln!("bench_check: no BENCH_*.json baseline found next to {c}");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!(
                "usage: bench_check [--baseline FILE] <current.json> [factor]\n\
                        bench_check <baseline.json> <current.json> [factor]"
            );
            return ExitCode::from(2);
        }
    };

    let baseline = load(&baseline_path);
    let current = load(&current_path);
    let mut failed = false;

    for (id, new_ns) in &current {
        match baseline.iter().find(|(b, _)| b == id) {
            Some((_, old_ns)) if *old_ns > 0.0 => {
                let ratio = new_ns / old_ns;
                let verdict = if ratio > factor {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!("{verdict:>9}  {id}: {old_ns:.1} ns -> {new_ns:.1} ns ({ratio:.2}x)");
            }
            _ => println!("      new  {id}: {new_ns:.1} ns (no baseline)"),
        }
    }
    for (id, _) in &baseline {
        if !current.iter().any(|(c, _)| c == id) {
            println!("  dropped  {id}: present in baseline only");
        }
    }

    if failed {
        eprintln!("bench_check: at least one shared benchmark slowed down by more than {factor}x");
        ExitCode::FAILURE
    } else {
        println!("bench_check: no shared benchmark slowed down by more than {factor}x");
        ExitCode::SUCCESS
    }
}
