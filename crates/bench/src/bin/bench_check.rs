//! Soft bench-regression gate: compare two `bench-summary/v1` JSON
//! snapshots and fail (exit 1) if any benchmark id present in **both**
//! slowed down by more than the allowed factor (default 2.0).
//!
//! ```text
//! bench_check <baseline.json> <current.json> [max-slowdown-factor]
//! ```
//!
//! Ids that exist in only one snapshot are reported but never fail the
//! check — benchmarks come and go between PRs. The factor is deliberately
//! loose: CI runners are noisy, and this gate exists to catch order-of-
//! magnitude regressions (like an accidentally serialised thread pool),
//! not single-digit-percent drift.

use std::process::ExitCode;

use serde_json::Value;

/// Looks up `key` in an object `Value`.
fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_check: cannot read {path}: {e}"));
    let doc: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_check: {path} is not valid JSON: {e}"));
    assert!(
        matches!(field(&doc, "schema"), Some(Value::Str(s)) if s == "bench-summary/v1"),
        "bench_check: {path} is not a bench-summary/v1 snapshot"
    );
    let Some(Value::Array(results)) = field(&doc, "results") else {
        panic!("bench_check: {path} has no results array");
    };
    results
        .iter()
        .map(|r| {
            let Some(Value::Str(id)) = field(r, "id") else {
                panic!("bench_check: result without an id in {path}");
            };
            let median = field(r, "median_ns")
                .and_then(as_f64)
                .unwrap_or_else(|| panic!("bench_check: {id} has no median_ns in {path}"));
            (id.clone(), median)
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_check <baseline.json> <current.json> [max-slowdown-factor]");
            return ExitCode::from(2);
        }
    };
    let factor: f64 = args
        .get(2)
        .map(|s| s.parse().expect("factor must be a number"))
        .unwrap_or(2.0);

    let baseline = load(baseline_path);
    let current = load(current_path);
    let mut failed = false;

    for (id, new_ns) in &current {
        match baseline.iter().find(|(b, _)| b == id) {
            Some((_, old_ns)) if *old_ns > 0.0 => {
                let ratio = new_ns / old_ns;
                let verdict = if ratio > factor {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!("{verdict:>9}  {id}: {old_ns:.1} ns -> {new_ns:.1} ns ({ratio:.2}x)");
            }
            _ => println!("      new  {id}: {new_ns:.1} ns (no baseline)"),
        }
    }
    for (id, _) in &baseline {
        if !current.iter().any(|(c, _)| c == id) {
            println!("  dropped  {id}: present in baseline only");
        }
    }

    if failed {
        eprintln!("bench_check: at least one shared benchmark slowed down by more than {factor}x");
        ExitCode::FAILURE
    } else {
        println!("bench_check: no shared benchmark slowed down by more than {factor}x");
        ExitCode::SUCCESS
    }
}
