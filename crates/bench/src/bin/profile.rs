//! Profile inspector: read a run report produced under `NETSIM_PROFILE=1`
//! (or `--profile`) and render the flight-recorder data it embeds.
//!
//! ```text
//! cargo run --bin profile -- target/run-reports/all_experiments.json
//! cargo run --bin profile -- <report> --tree          # scope call tree
//! cargo run --bin profile -- <report> --hot 15        # hottest scopes
//! cargo run --bin profile -- <report> --alloc 15      # heaviest allocators
//! cargo run --bin profile -- <report> --export-chrome out.json
//! ```
//!
//! With no mode flag it prints the call tree. Text modes also render the
//! runner section (per-worker utilization and queue-depth pressure) when
//! the report has one.

use std::fs;
use std::process::ExitCode;

use netsim::profile::ProfileReport;
use serde::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("profile: {e}");
            eprintln!();
            eprintln!("usage: profile <run-report.json> [MODE]");
            eprintln!("modes: --tree | --hot [N] | --alloc [N] | --export-chrome OUT.json");
            ExitCode::FAILURE
        }
    }
}

enum Mode {
    Tree,
    Hot(usize),
    Alloc(usize),
    ExportChrome(String),
}

fn run(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut mode = Mode::Tree;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        // `--hot 15` / `--alloc 15`: the count is optional.
        let mut opt_count = |default: usize| match it.peek().and_then(|n| n.parse().ok()) {
            Some(n) => {
                it.next();
                n
            }
            None => default,
        };
        match a.as_str() {
            "--tree" => mode = Mode::Tree,
            "--hot" => mode = Mode::Hot(opt_count(20)),
            "--alloc" => mode = Mode::Alloc(opt_count(20)),
            "--export-chrome" => {
                let out = it
                    .next()
                    .cloned()
                    .ok_or("--export-chrome needs an output path")?;
                mode = Mode::ExportChrome(out);
            }
            _ if path.is_none() && !a.starts_with('-') => path = Some(a.clone()),
            _ => return Err(format!("unknown argument {a:?}")),
        }
    }
    let path = path.ok_or("no input file given")?;
    let text = fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;

    let report = get(&doc, "profile")
        .and_then(ProfileReport::from_value)
        .ok_or_else(|| {
            format!(
                "{path}: no profile section (rerun the experiment with \
                 NETSIM_PROFILE=1 or --profile to record one)"
            )
        })?;

    match mode {
        Mode::Tree => {
            print!("{}", report.render_tree());
            print_counters(&report);
            print_runner(&doc);
            print_shards(&doc);
        }
        Mode::Hot(top) => {
            print!("{}", report.render_hot(top));
            print_runner(&doc);
        }
        Mode::Alloc(top) => {
            print!("{}", report.render_alloc(top));
            print_runner(&doc);
        }
        Mode::ExportChrome(out) => {
            let json = serde_json::to_string_pretty(&report.chrome_trace())
                .map_err(|e| format!("chrome trace: {e:?}"))?;
            fs::write(&out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("profile: wrote chrome trace to {out}");
        }
    }
    Ok(())
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        Value::F64(f) => Some(*f as u64),
        _ => None,
    }
}

fn print_counters(report: &ProfileReport) {
    let interesting: Vec<_> = report.counters.iter().filter(|(_, v)| *v > 0).collect();
    if interesting.is_empty() {
        return;
    }
    println!("counters:");
    for (name, v) in interesting {
        println!("  {name:<24} {v}");
    }
}

/// Render each snapshot's per-shard scheduler counters (present only when
/// the run was sharded via `--shards` / `NETSIM_SHARDS`): how far each
/// shard got, how often its horizon stalled it, and how much traffic
/// crossed its borders — the quickest way to judge a partitioning.
fn print_shards(doc: &Value) {
    let Some(Value::Object(snapshots)) = get(doc, "snapshots") else {
        return;
    };
    for (label, snap) in snapshots {
        let Some(Value::Array(shards)) = get(snap, "scheduler").and_then(|s| get(s, "shards"))
        else {
            continue;
        };
        println!("shards ({label}):");
        for (ix, sh) in shards.iter().enumerate() {
            let f = |k| get(sh, k).and_then(as_u64).unwrap_or(0);
            println!(
                "  shard {ix}: {:>8} events  {:>6} windows  {:>5} stalls  msgs in/out {}/{}",
                f("events"),
                f("windows"),
                f("stalls"),
                f("msgs_in"),
                f("msgs_out"),
            );
        }
    }
}

/// Render the `runner` section: one block per pool batch with per-worker
/// job counts and busy-time shares — the quickest way to see whether a
/// "parallel" run actually overlapped work or just time-sliced one core.
fn print_runner(doc: &Value) {
    let Some(Value::Array(batches)) = get(doc, "runner") else {
        return;
    };
    for (ix, batch) in batches.iter().enumerate() {
        let jobs = get(batch, "jobs").and_then(as_u64).unwrap_or(0);
        let threads = get(batch, "threads").and_then(as_u64).unwrap_or(0);
        let wall = get(batch, "wall_ns").and_then(as_u64).unwrap_or(0);
        println!(
            "runner batch {ix}: {jobs} jobs / {threads} threads · wall {}",
            human_ns(wall)
        );
        let Some(Value::Array(workers)) = get(batch, "workers") else {
            continue;
        };
        for w in workers {
            let label = match get(w, "label") {
                Some(Value::Str(s)) => s.clone(),
                _ => "?".into(),
            };
            let wjobs = get(w, "jobs").and_then(as_u64).unwrap_or(0);
            let busy = get(w, "busy_ns").and_then(as_u64).unwrap_or(0);
            let util = if wall > 0 {
                busy as f64 * 100.0 / wall as f64
            } else {
                0.0
            };
            println!(
                "  {label:<20} {wjobs:>4} jobs  busy {:>10}  util {util:>5.1}%",
                human_ns(busy)
            );
        }
    }
}

fn human_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
