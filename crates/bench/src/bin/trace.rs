//! Trace inspector: read a run report (or a bare lifecycle JSON file) and
//! render the causal packet-lifecycle spans it embeds.
//!
//! ```text
//! cargo run --bin trace -- target/run-reports/fig02_filtering.json --drops
//! cargo run --bin trace -- <report> --flow                  # flow rollups
//! cargo run --bin trace -- <report> --packet 3              # one span
//! cargo run --bin trace -- <report> --export-chrome out.json
//! cargo run --bin trace -- <report> --export-pcap out.pcapng
//! cargo run --bin trace -- <report> --snapshot <label> --drops
//! ```
//!
//! With no mode flag it prints an overview of every snapshot. A run report
//! can hold several labelled snapshots; `--snapshot` picks one, otherwise
//! the first snapshot containing drops (falling back to the first with a
//! lifecycle) is used.

use std::fs;
use std::process::ExitCode;

use netsim::{Lifecycle, PacketId, PacketOutcome};
use serde::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace: {e}");
            eprintln!();
            eprintln!("usage: trace <run-report.json> [--snapshot LABEL] [MODE]");
            eprintln!("modes: --drops | --flow | --packet N |");
            eprintln!("       --export-chrome OUT.json | --export-pcap OUT.pcapng");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut snapshot = None;
    let mut mode = Mode::Overview;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut arg = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--snapshot" => snapshot = Some(arg("a label")?),
            "--drops" => mode = Mode::Drops,
            "--flow" | "--flows" => mode = Mode::Flows,
            "--packet" => {
                let n = arg("a packet id")?;
                let n = n.trim_start_matches('p');
                mode = Mode::Packet(PacketId(
                    n.parse().map_err(|_| format!("bad packet id {n:?}"))?,
                ));
            }
            "--export-chrome" => mode = Mode::ExportChrome(arg("an output path")?),
            "--export-pcap" => mode = Mode::ExportPcap(arg("an output path")?),
            _ if path.is_none() && !a.starts_with('-') => path = Some(a.clone()),
            _ => return Err(format!("unknown argument {a:?}")),
        }
    }
    let path = path.ok_or("no input file given")?;
    let text = fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;

    let lifecycles = extract_lifecycles(&doc);
    if lifecycles.is_empty() {
        return Err(format!(
            "{path}: no lifecycle data (is this a run-report/v2+ file from a \
             metrics-enabled run?)"
        ));
    }
    let (label, lc) = pick_snapshot(&lifecycles, snapshot.as_deref())?;
    eprintln!(
        "trace: {path}: snapshot {label:?} ({} packets, {} flows{})",
        lc.packets.len(),
        lc.flows.len(),
        if lc.shed_events > 0 {
            format!(", {} events shed", lc.shed_events)
        } else {
            String::new()
        }
    );

    match mode {
        Mode::Overview => overview(&lifecycles),
        Mode::Drops => drops(&lc),
        Mode::Flows => flows(&lc),
        Mode::Packet(id) => packet(&lc, id)?,
        Mode::ExportChrome(out) => {
            let json =
                serde_json::to_string_pretty(&lc.chrome_trace()).map_err(|e| e.to_string())?;
            fs::write(&out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote Chrome trace to {out} (load in chrome://tracing or Perfetto)");
        }
        Mode::ExportPcap(out) => {
            let f = fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
            let n = lc
                .write_pcapng(std::io::BufWriter::new(f))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {n} packet records to {out}");
        }
    }
    Ok(())
}

enum Mode {
    Overview,
    Drops,
    Flows,
    Packet(PacketId),
    ExportChrome(String),
    ExportPcap(String),
}

/// Pull every lifecycle out of the document: either snapshots of a run
/// report (`snapshots.<label>.lifecycle`) or a bare lifecycle object.
fn extract_lifecycles(doc: &Value) -> Vec<(String, Lifecycle)> {
    if let Some(lc) = Lifecycle::from_value(doc) {
        return vec![("<file>".into(), lc)];
    }
    let mut out = Vec::new();
    if let Some(Value::Object(snaps)) = get(doc, "snapshots") {
        for (label, snap) in snaps {
            if let Some(lc) = get(snap, "lifecycle").and_then(Lifecycle::from_value) {
                out.push((label.clone(), lc));
            }
        }
    }
    out
}

fn pick_snapshot(
    all: &[(String, Lifecycle)],
    wanted: Option<&str>,
) -> Result<(String, Lifecycle), String> {
    if let Some(w) = wanted {
        return all
            .iter()
            .find(|(l, _)| l == w)
            .map(|(l, lc)| (l.clone(), lc.clone()))
            .ok_or_else(|| {
                let labels: Vec<&str> = all.iter().map(|(l, _)| l.as_str()).collect();
                format!("no snapshot {w:?}; have {labels:?}")
            });
    }
    let best = all
        .iter()
        .find(|(_, lc)| lc.dropped().next().is_some())
        .unwrap_or(&all[0]);
    Ok((best.0.clone(), best.1.clone()))
}

fn overview(all: &[(String, Lifecycle)]) {
    for (label, lc) in all {
        let drops = lc.dropped().count();
        println!(
            "snapshot {label:>12}: {:3} packets, {:2} flows, {drops} dropped{}",
            lc.packets.len(),
            lc.flows.len(),
            if lc.shed_events > 0 {
                format!(" ({} events shed)", lc.shed_events)
            } else {
                String::new()
            }
        );
    }
    println!();
    println!("pick a view: --drops, --flow, --packet N, --export-chrome, --export-pcap");
}

/// Print every drop's full causal chain, root packet first.
fn drops(lc: &Lifecycle) {
    let dropped: Vec<_> = lc.dropped().collect();
    if dropped.is_empty() {
        println!("no drops recorded");
        return;
    }
    for p in dropped {
        let PacketOutcome::Dropped(node, reason) = p.outcome else {
            unreachable!("dropped() filters on the outcome");
        };
        println!(
            "{} {} dropped at {} — {}",
            p.id,
            p.flow,
            lc.node_name(node),
            reason.tag()
        );
        let chain = lc.chain(p.id);
        if lc.packet(chain[0]).is_none() {
            println!("  {} (earlier history shed by the trace ring)", chain[0]);
        }
        for id in chain {
            if let Some(span) = lc.packet(id) {
                print_span(lc, span, "  ");
            }
        }
        println!();
    }
}

fn flows(lc: &Lifecycle) {
    println!(
        "{:>4} {:>18} {:>18} {:>5} {:>4} {:>5} {:>8} {:>4} {:>5} {:>6}  drops",
        "flow", "src", "dst", "proto", "pkts", "wire", "bytes", "dlvr", "retx", "encap+"
    );
    for f in &lc.flows {
        let drops = f
            .drops
            .iter()
            .map(|(r, n)| format!("{}×{}", n, r.tag()))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:>4} {:>18} {:>18} {:>5} {:>4} {:>5} {:>8} {:>4} {:>5} {:>6}  {}",
            f.flow.to_string(),
            f.src.to_string(),
            f.dst.to_string(),
            f.protocol.number(),
            f.packets,
            f.wire_events,
            f.bytes_on_wire,
            f.deliveries,
            f.retransmissions,
            f.encap_overhead_bytes,
            drops
        );
    }
}

fn packet(lc: &Lifecycle, id: PacketId) -> Result<(), String> {
    if lc.packet(id).is_none() {
        return Err(format!(
            "no span for {id} (it may have been omitted by the report cap)"
        ));
    }
    // Show the whole chain for context, highlighting the requested span.
    for cid in lc.chain(id) {
        match lc.packet(cid) {
            Some(s) => print_span(lc, s, if cid == id { "* " } else { "  " }),
            None => println!("  {cid} (events shed)"),
        }
    }
    Ok(())
}

/// One span, one line per event, with per-hop latency annotations.
fn print_span(lc: &Lifecycle, p: &netsim::PacketLifecycle, indent: &str) {
    let head = p.events.first().map(|e| &e.packet);
    let what = match head {
        Some(s) => format!(
            "{} → {} proto {} len {}",
            s.src,
            s.dst,
            s.protocol.number(),
            s.wire_len
        ),
        None => "(no events)".into(),
    };
    let parent = match p.parent {
        Some(par) => format!(" (from {par})"),
        None => String::new(),
    };
    let truncated = if p.truncated { " [truncated]" } else { "" };
    println!("{indent}{} {}{parent}{truncated}: {what}", p.id, p.flow);
    for e in &p.events {
        let note = match e.kind {
            netsim::TraceEventKind::Dropped(r) => format!(" — {}", r.tag()),
            netsim::TraceEventKind::Transformed(t) => format!(" — {t}"),
            _ => String::new(),
        };
        println!(
            "{indent}  {:>8}µs {:<10} @ {}{note}",
            e.at.0,
            e.kind.tag(),
            lc.node_name(e.node)
        );
    }
    for h in &p.hops {
        println!(
            "{indent}  hop {} → {}: {}µs",
            lc.node_name(h.from),
            lc.node_name(h.to),
            h.latency.as_micros()
        );
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}
