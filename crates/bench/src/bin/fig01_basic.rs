//! Regenerates Figure 1 (basic Mobile IP path asymmetry). See DESIGN.md E1.
fn main() {
    bench::runbin::run("fig01_basic", || {
        vec![bench::experiments::fig01_basic::run()]
    });
}
