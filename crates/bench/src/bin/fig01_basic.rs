//! Regenerates Figure 1 (basic Mobile IP path asymmetry). See DESIGN.md E1.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("fig01_basic", || {
        vec![bench::experiments::fig01_basic::run()]
    });
}
