//! Regenerates Figure 1 (basic Mobile IP path asymmetry). See DESIGN.md E1.
fn main() {
    println!("{}", bench::experiments::fig01_basic::run());
}
