//! Regenerates Figure 1 (basic Mobile IP path asymmetry). See DESIGN.md E1.
fn main() {
    bench::report::enable();
    let t = bench::experiments::fig01_basic::run();
    println!("{t}");
    bench::report::emit("fig01_basic", &[t]);
}
