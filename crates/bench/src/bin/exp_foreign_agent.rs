//! Ablation: foreign agent vs collocated care-of address (§2).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_foreign_agent::run();
    println!("{t}");
    bench::report::emit("exp_foreign_agent", &[t]);
}
