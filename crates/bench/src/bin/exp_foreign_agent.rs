//! Ablation: foreign agent vs collocated care-of address (§2).
fn main() {
    bench::runbin::run("exp_foreign_agent", || {
        vec![bench::experiments::exp_foreign_agent::run()]
    });
}
