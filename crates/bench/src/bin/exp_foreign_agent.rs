//! Ablation: foreign agent vs collocated care-of address (§2).
fn main() {
    println!("{}", bench::experiments::exp_foreign_agent::run());
}
