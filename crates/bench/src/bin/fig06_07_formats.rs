//! Regenerates Figures 6-9 (packet formats and sizes). See DESIGN.md E6/E7.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("fig06_07_formats", bench::experiments::fig06_formats::run);
}
