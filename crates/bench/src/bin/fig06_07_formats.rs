//! Regenerates Figures 6-9 (packet formats and sizes). See DESIGN.md E6/E7.
fn main() {
    bench::report::enable();
    let tables = bench::experiments::fig06_formats::run();
    for t in &tables {
        println!("{t}");
    }
    bench::report::emit("fig06_07_formats", &tables);
}
