//! Regenerates Figures 6-9 (packet formats and sizes). See DESIGN.md E6/E7.
fn main() {
    for t in bench::experiments::fig06_formats::run() {
        println!("{t}");
    }
}
