//! Regenerates Figures 6-9 (packet formats and sizes). See DESIGN.md E6/E7.
fn main() {
    bench::runbin::run("fig06_07_formats", bench::experiments::fig06_formats::run);
}
