//! E11: connection durability across handoffs (§2).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_handoff::run();
    println!("{t}");
    bench::report::emit("exp_handoff", &[t]);
}
