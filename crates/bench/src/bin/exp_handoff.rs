//! E11: connection durability across handoffs (§2).
fn main() {
    bench::runbin::run("exp_handoff", || {
        vec![bench::experiments::exp_handoff::run()]
    });
}
