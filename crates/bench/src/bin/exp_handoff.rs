//! E11: connection durability across handoffs (§2).
fn main() {
    println!("{}", bench::experiments::exp_handoff::run());
}
