//! Regenerates Figure 4 (triangle-routing penalty sweep). See DESIGN.md E4.
fn main() {
    bench::report::enable();
    let t = bench::experiments::fig04_triangle::run(&[5, 10, 25, 50, 100, 200]);
    println!("{t}");
    bench::report::emit("fig04_triangle", &[t]);
}
