//! Regenerates Figure 4 (triangle-routing penalty sweep). See DESIGN.md E4.
fn main() {
    bench::runbin::run("fig04_triangle", || {
        vec![bench::experiments::fig04_triangle::run(&[
            5, 10, 25, 50, 100, 200,
        ])]
    });
}
