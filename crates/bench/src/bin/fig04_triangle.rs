//! Regenerates Figure 4 (triangle-routing penalty sweep). See DESIGN.md E4.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("fig04_triangle", || {
        vec![bench::experiments::fig04_triangle::run(&[
            5, 10, 25, 50, 100, 200,
        ])]
    });
}
