//! Run-report diff analyzer: compare two run-report JSONs (schema v3 or
//! v4) and render what changed — per-snapshot metric deltas, drop reasons
//! that appeared or vanished, and invariant-monitor regressions.
//!
//! ```text
//! cargo run --bin diff -- old.json new.json
//! cargo run --bin diff -- old.json new.json --threshold 5
//! cargo run --bin diff -- full.json sampled.json --fail-on-violations
//! ```
//!
//! `--threshold PCT` hides numeric deltas smaller than PCT percent
//! (absolute differences of 0 are always hidden). `--fail-on-violations`
//! exits non-zero when *either* report carries an invariant violation —
//! the CI smoke job's contract. `--fail-on-regressions` exits non-zero
//! when the second report violates an invariant the first satisfied.

use std::fs;
use std::process::ExitCode;

use serde::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("diff: {e}");
            eprintln!();
            eprintln!("usage: diff <old.json> <new.json> [--threshold PCT]");
            eprintln!("       [--fail-on-violations] [--fail-on-regressions]");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 0.0f64;
    let mut fail_on_violations = false;
    let mut fail_on_regressions = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a percentage")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("bad threshold {v:?} (want a number)"))?;
            }
            "--fail-on-violations" => fail_on_violations = true,
            "--fail-on-regressions" => fail_on_regressions = true,
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ => paths.push(a),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("expected exactly two report paths".into());
    };
    let old = load(old_path)?;
    let new = load(new_path)?;

    println!(
        "diff: {} ({}) vs {} ({})",
        old_path,
        schema(&old),
        new_path,
        schema(&new)
    );

    let mut deltas = Vec::new();
    collect_deltas(
        "",
        get(&old, "snapshots"),
        get(&new, "snapshots"),
        &mut deltas,
    );
    render_deltas(&deltas, threshold);
    render_drop_reasons(&old, &new);
    let (old_bad, new_bad, regressions) = render_invariants(&old, &new);

    if fail_on_violations && (!old_bad.is_empty() || !new_bad.is_empty()) {
        eprintln!("diff: invariant violations present — failing as requested");
        return Ok(ExitCode::FAILURE);
    }
    if fail_on_regressions && !regressions.is_empty() {
        eprintln!("diff: invariant regressions present — failing as requested");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn load(path: &str) -> Result<Value, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn schema(doc: &Value) -> String {
    match get(doc, "schema") {
        Some(Value::Str(s)) => s.clone(),
        _ => "unknown schema".into(),
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

/// One numeric leaf that differs: dotted path, old, new.
struct Delta {
    path: String,
    old: Option<f64>,
    new: Option<f64>,
}

/// Recursively align two values and collect differing numeric leaves.
/// Keys present on only one side surface as `None` on the other.
fn collect_deltas(path: &str, old: Option<&Value>, new: Option<&Value>, out: &mut Vec<Delta>) {
    match (old, new) {
        (Some(Value::Object(a)), Some(Value::Object(b))) => {
            let mut keys: Vec<&String> = a.iter().map(|(k, _)| k).collect();
            for (k, _) in b {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            for k in keys {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                collect_deltas(
                    &sub,
                    a.iter().find(|(n, _)| n == k).map(|(_, v)| v),
                    b.iter().find(|(n, _)| n == k).map(|(_, v)| v),
                    out,
                );
            }
        }
        (Some(Value::Array(a)), Some(Value::Array(b))) => {
            for i in 0..a.len().max(b.len()) {
                collect_deltas(&format!("{path}[{i}]"), a.get(i), b.get(i), out);
            }
        }
        (a, b) => {
            let (oa, ob) = (a.and_then(as_f64), b.and_then(as_f64));
            if (oa.is_some() || ob.is_some()) && oa != ob {
                out.push(Delta {
                    path: path.to_string(),
                    old: oa,
                    new: ob,
                });
            }
        }
    }
}

fn render_deltas(deltas: &[Delta], threshold: f64) {
    let shown: Vec<&Delta> = deltas
        .iter()
        .filter(|d| match (d.old, d.new) {
            (Some(a), Some(b)) if a != 0.0 => ((b - a) / a * 100.0).abs() >= threshold,
            _ => true, // appeared, vanished, or changed from zero: always show
        })
        .collect();
    println!();
    if shown.is_empty() {
        println!("metric deltas: none (threshold {threshold}%)");
        return;
    }
    println!("metric deltas ({} shown):", shown.len());
    for d in &shown {
        let fmt = |v: Option<f64>| match v {
            Some(n) => format!("{n}"),
            None => "-".to_string(),
        };
        let pct = match (d.old, d.new) {
            (Some(a), Some(b)) if a != 0.0 => format!(" ({:+.1}%)", (b - a) / a * 100.0),
            _ => String::new(),
        };
        println!("  {:<70} {} -> {}{}", d.path, fmt(d.old), fmt(d.new), pct);
    }
}

/// Collect `(snapshot-path, reason)` pairs for every non-zero drop-reason
/// counter under a `total_drops` / `drops` object.
fn drop_reasons(path: &str, v: &Value, out: &mut Vec<(String, String)>) {
    if let Value::Object(fields) = v {
        for (k, sub) in fields {
            if k == "total_drops" || k == "drops" {
                if let Value::Object(reasons) = sub {
                    for (reason, count) in reasons {
                        if as_f64(count).unwrap_or(0.0) > 0.0 {
                            out.push((path.to_string(), reason.clone()));
                        }
                    }
                }
            } else {
                drop_reasons(&format!("{path}.{k}"), sub, out);
            }
        }
    }
}

fn render_drop_reasons(old: &Value, new: &Value) {
    let collect = |doc: &Value| {
        let mut v = Vec::new();
        if let Some(s) = get(doc, "snapshots") {
            drop_reasons("", s, &mut v);
        }
        v
    };
    let (a, b) = (collect(old), collect(new));
    let news: Vec<&(String, String)> = b.iter().filter(|x| !a.contains(x)).collect();
    let gone: Vec<&(String, String)> = a.iter().filter(|x| !b.contains(x)).collect();
    println!();
    if news.is_empty() && gone.is_empty() {
        println!("drop reasons: unchanged");
        return;
    }
    for (path, reason) in news {
        println!("drop reason appeared: {reason} at {path}");
    }
    for (path, reason) in gone {
        println!("drop reason vanished: {reason} at {path}");
    }
}

/// Collect `(snapshot-path, violation-count)` for every invariants section
/// that is not ok.
fn bad_invariants(path: &str, v: &Value, out: &mut Vec<(String, u64)>) {
    if let Value::Object(fields) = v {
        for (k, sub) in fields {
            if k == "invariants" {
                if let Some(Value::Bool(false)) = get(sub, "ok") {
                    let n = match get(sub, "violations") {
                        Some(Value::Array(vs)) => vs.len() as u64,
                        _ => 0,
                    };
                    out.push((path.to_string(), n.max(1)));
                }
            } else {
                bad_invariants(&format!("{path}.{k}"), sub, out);
            }
        }
    }
}

/// Render invariant status; returns (old violations, new violations,
/// regressions = snapshots clean in old but violating in new).
fn render_invariants(old: &Value, new: &Value) -> (Vec<String>, Vec<String>, Vec<String>) {
    let collect = |doc: &Value| {
        let mut v = Vec::new();
        if let Some(s) = get(doc, "snapshots") {
            bad_invariants("", s, &mut v);
        }
        v
    };
    let (a, b) = (collect(old), collect(new));
    let a_paths: Vec<String> = a.iter().map(|(p, _)| p.clone()).collect();
    let b_paths: Vec<String> = b.iter().map(|(p, _)| p.clone()).collect();
    let regressions: Vec<String> = b_paths
        .iter()
        .filter(|p| !a_paths.contains(p))
        .cloned()
        .collect();
    println!();
    if a.is_empty() && b.is_empty() {
        println!("invariants: ok in both reports");
    } else {
        for (p, n) in &a {
            println!("invariant violation in OLD at {p}: {n} violation(s)");
        }
        for (p, n) in &b {
            println!("invariant violation in NEW at {p}: {n} violation(s)");
        }
        for p in &regressions {
            println!("invariant REGRESSION (clean -> violating) at {p}");
        }
    }
    (a_paths, b_paths, regressions)
}
