//! Regenerates Figure 3 (bi-directional tunneling). See DESIGN.md E3.
fn main() {
    println!("{}", bench::experiments::fig03_bitunnel::run());
}
