//! Regenerates Figure 3 (bi-directional tunneling). See DESIGN.md E3.
fn main() {
    bench::report::enable();
    let t = bench::experiments::fig03_bitunnel::run();
    println!("{t}");
    bench::report::emit("fig03_bitunnel", &[t]);
}
