//! Regenerates Figure 3 (bi-directional tunneling). See DESIGN.md E3.
fn main() {
    bench::runbin::run("fig03_bitunnel", || {
        vec![bench::experiments::fig03_bitunnel::run()]
    });
}
