//! Regenerates Figure 3 (bi-directional tunneling). See DESIGN.md E3.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("fig03_bitunnel", || {
        vec![bench::experiments::fig03_bitunnel::run()]
    });
}
