//! E10: Web workload, Out-DT vs always-Mobile-IP (§4/§6.4).
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("exp_http", || vec![bench::experiments::exp_http::run()]);
}
