//! E10: Web workload, Out-DT vs always-Mobile-IP (§4/§6.4).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_http::run();
    println!("{t}");
    bench::report::emit("exp_http", &[t]);
}
