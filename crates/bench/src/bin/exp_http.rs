//! E10: Web workload, Out-DT vs always-Mobile-IP (§4/§6.4).
fn main() {
    bench::runbin::run("exp_http", || vec![bench::experiments::exp_http::run()]);
}
