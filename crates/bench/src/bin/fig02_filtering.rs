//! Regenerates Figure 2 (source-address-filtering deliverability matrix). See DESIGN.md E2.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("fig02_filtering", bench::experiments::fig02_filtering::run);
}
