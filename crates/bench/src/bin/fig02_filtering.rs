//! Regenerates Figure 2 (source-address-filtering deliverability matrix). See DESIGN.md E2.
fn main() {
    bench::runbin::run("fig02_filtering", bench::experiments::fig02_filtering::run);
}
