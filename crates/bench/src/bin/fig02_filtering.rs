//! Regenerates Figure 2 (source-address-filtering deliverability matrix). See DESIGN.md E2.
fn main() {
    for t in bench::experiments::fig02_filtering::run() {
        println!("{t}");
    }
}
