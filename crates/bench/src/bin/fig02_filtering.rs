//! Regenerates Figure 2 (source-address-filtering deliverability matrix). See DESIGN.md E2.
fn main() {
    bench::report::enable();
    let tables = bench::experiments::fig02_filtering::run();
    for t in &tables {
        println!("{t}");
    }
    bench::report::emit("fig02_filtering", &tables);
}
