//! E18 — mass churn on hierarchical worlds, sized from the command line.
//!
//! ```text
//! exp_scale [--hosts N] [--seed S] [--handoffs N] [--flash N] [--rereg N]
//!           [--correspondents N] [--shards N] [--sample-flows N] [--topk K]
//!           [--profile]
//! ```
//!
//! Environment fallbacks: `NETSIM_SCALE_HOSTS`, `NETSIM_SCALE_SEED`,
//! `NETSIM_SCALE_HANDOFFS`, `NETSIM_SCALE_FLASH`, `NETSIM_SCALE_REREG`,
//! `NETSIM_SCALE_CORRESPONDENTS`.
//!
//! `--correspondents N` adds the policy miss storm: one mobile's method
//! cache, capped at `N/2` entries, faces `N` distinct correspondents while
//! a hot set keeps conversing — the table then reports mode-decision
//! quality under cache pressure (hits, misses, evictions, and how much
//! hot history the LRU eviction discipline preserved).
//!
//! The printed table and the emitted run report contain only deterministic
//! quantities; wall-clock build time, per-host steady-state memory (from
//! the counting allocator's live-byte gauge), and churn throughput go to
//! stderr, keeping reports byte-comparable across shard counts and runs.

use std::time::Instant;

use bench::experiments::exp_scale;
use bench::runbin::{self, u64_knob};
use bench::scale::{build_world, run_churn, ChurnParams, ScaleParams};

fn main() {
    let hosts = u64_knob("--hosts", "NETSIM_SCALE_HOSTS").unwrap_or(10_000) as usize;
    let seed = u64_knob("--seed", "NETSIM_SCALE_SEED").unwrap_or(1);
    let defaults = ChurnParams::default();
    let churn = ChurnParams {
        handoffs: u64_knob("--handoffs", "NETSIM_SCALE_HANDOFFS")
            .map_or(defaults.handoffs, |n| n as usize),
        flash_crowd: u64_knob("--flash", "NETSIM_SCALE_FLASH")
            .map_or(defaults.flash_crowd, |n| n as usize),
        rereg: u64_knob("--rereg", "NETSIM_SCALE_REREG").map_or(defaults.rereg, |n| n as usize),
        lifetime: defaults.lifetime,
        correspondents: u64_knob("--correspondents", "NETSIM_SCALE_CORRESPONDENTS")
            .map_or(defaults.correspondents, |n| n as usize),
    };

    runbin::run("exp_scale", || {
        let params = ScaleParams {
            seed,
            ..ScaleParams::with_hosts(hosts)
        };
        let live_before = netsim::profile::live_bytes();
        let t_build = Instant::now();
        let (mut world, index) = build_world(&params);
        let build_wall = t_build.elapsed();
        let live_world = netsim::profile::live_bytes() - live_before;

        bench::report::observe_world(&mut world);
        let t_churn = Instant::now();
        let stats = run_churn(&mut world, &index, &churn);
        let churn_wall = t_churn.elapsed();
        let live_steady = netsim::profile::live_bytes() - live_before;
        bench::report::record_value("scale/churn", &stats);

        let n = index.hosts.len() as i64;
        eprintln!(
            "exp_scale: built {} hosts ({} nodes, {} stubs) in {:.2?}; \
             {} B/host after build, {} B/host steady-state",
            n,
            params.total_nodes(),
            index.stubs.len(),
            build_wall,
            live_world / n.max(1),
            live_steady / n.max(1),
        );
        eprintln!(
            "exp_scale: {} churn events over {:.2?} wall ({:.0} events/s), {} sim-us",
            stats.events,
            churn_wall,
            stats.events as f64 / churn_wall.as_secs_f64().max(1e-9),
            stats.sim_elapsed_us,
        );
        vec![exp_scale::table(index.hosts.len(), &stats)]
    });
}
