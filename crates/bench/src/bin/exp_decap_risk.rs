//! Extension: the §6.1 automatic-decapsulation spoofing risk, measured.
fn main() {
    bench::runbin::run("exp_decap_risk", || {
        vec![bench::experiments::exp_decap_risk::run()]
    });
}
