//! Extension: the §6.1 automatic-decapsulation spoofing risk, measured.
fn main() {
    println!("{}", bench::experiments::exp_decap_risk::run());
}
