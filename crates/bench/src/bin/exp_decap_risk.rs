//! Extension: the §6.1 automatic-decapsulation spoofing risk, measured.
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_decap_risk::run();
    println!("{t}");
    bench::report::emit("exp_decap_risk", &[t]);
}
