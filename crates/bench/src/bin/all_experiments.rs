//! Runs every experiment in DESIGN.md §5 (in parallel — they are
//! independent deterministic simulations) and prints all result tables —
//! the source of the "measured" columns in EXPERIMENTS.md.
//!
//! With `--json <path>`, additionally writes the tables as structured JSON
//! for downstream tooling.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tables = bench::experiments::run_all();
    for t in &tables {
        println!("{t}");
    }
    if let Some(ix) = args.iter().position(|a| a == "--json") {
        let path = args.get(ix + 1).map(String::as_str).unwrap_or("experiments.json");
        let json = serde_json::to_string_pretty(&tables).expect("serializable");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
