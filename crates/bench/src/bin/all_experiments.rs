//! Runs every experiment in DESIGN.md §5 (in parallel — they are
//! independent deterministic simulations) and prints all result tables —
//! the source of the "measured" columns in EXPERIMENTS.md.
//!
//! Always writes the structured run report to `target/run-reports/`; with
//! `--json <path>`, additionally writes the bare tables as JSON at the
//! given path (the pre-report format kept for downstream tooling).
//!
//! `--serial` forces a single-threaded run (identical output, for
//! debugging or timing comparisons); otherwise the worker count comes
//! from `NETSIM_BENCH_THREADS` or the number of available cores.
//!
//! `NETSIM_PROFILE=1` or `--profile` records the flight recorder (scope
//! timings, runner telemetry, gauge samples) into the run report;
//! `--profile-chrome <path>` also writes a chrome://tracing file.
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = if args.iter().any(|a| a == "--serial") {
        1
    } else {
        bench::experiments::default_threads()
    };
    let tables = bench::runbin::run("all_experiments", || {
        bench::experiments::run_all_with(threads)
    });
    if let Some(ix) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(ix + 1)
            .map(String::as_str)
            .unwrap_or("experiments.json");
        let json = serde_json::to_string_pretty(&tables).expect("serializable");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
