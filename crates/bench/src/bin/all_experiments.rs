//! Runs every experiment in DESIGN.md §5 (in parallel — they are
//! independent deterministic simulations) and prints all result tables —
//! the source of the "measured" columns in EXPERIMENTS.md.
//!
//! Always writes the structured run report to `target/run-reports/`; with
//! `--json <path>`, additionally writes the bare tables as JSON at the
//! given path (the pre-report format kept for downstream tooling).

fn main() {
    bench::report::enable();
    let args: Vec<String> = std::env::args().collect();
    let tables = bench::experiments::run_all();
    for t in &tables {
        println!("{t}");
    }
    bench::report::emit("all_experiments", &tables);
    if let Some(ix) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(ix + 1)
            .map(String::as_str)
            .unwrap_or("experiments.json");
        let json = serde_json::to_string_pretty(&tables).expect("serializable");
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
