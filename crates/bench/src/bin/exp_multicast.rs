//! E12: multicast, home tunnel vs local join (§6.4).
fn main() {
    bench::runbin::run("exp_multicast", || {
        vec![bench::experiments::exp_multicast::run()]
    });
}
