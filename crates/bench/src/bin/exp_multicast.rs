//! E12: multicast, home tunnel vs local join (§6.4).
fn main() {
    println!("{}", bench::experiments::exp_multicast::run());
}
