//! E12: multicast, home tunnel vs local join (§6.4).
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("exp_multicast", || {
        vec![bench::experiments::exp_multicast::run()]
    });
}
