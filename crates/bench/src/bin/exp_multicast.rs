//! E12: multicast, home tunnel vs local join (§6.4).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_multicast::run();
    println!("{t}");
    bench::report::emit("exp_multicast", &[t]);
}
