//! E9: probing-strategy comparison (§7.1).
fn main() {
    bench::runbin::run("exp_probing", || {
        vec![bench::experiments::exp_probing::run()]
    });
}
