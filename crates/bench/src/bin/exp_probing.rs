//! E9: probing-strategy comparison (§7.1).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_probing::run();
    println!("{t}");
    bench::report::emit("exp_probing", &[t]);
}
