//! E9: probing-strategy comparison (§7.1).
fn main() {
    println!("{}", bench::experiments::exp_probing::run());
}
