//! Ablation: encapsulation format on a live tunnelled workload (§3.3).
fn main() {
    bench::runbin::run("exp_encap", || vec![bench::experiments::exp_encap::run()]);
}
