//! Ablation: encapsulation format on a live tunnelled workload (§3.3).
fn main() {
    println!("{}", bench::experiments::exp_encap::run());
}
