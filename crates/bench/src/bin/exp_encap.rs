//! Ablation: encapsulation format on a live tunnelled workload (§3.3).
fn main() {
    bench::report::enable();
    let t = bench::experiments::exp_encap::run();
    println!("{t}");
    bench::report::emit("exp_encap", &[t]);
}
