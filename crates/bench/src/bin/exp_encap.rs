//! Ablation: encapsulation format on a live tunnelled workload (§3.3).
//!
//! Scale-ready telemetry knobs apply here like every experiment binary:
//! `--sample-flows N` / `NETSIM_SAMPLE=N` (1-in-N flow capture, anomalies
//! always promoted), `--topk K`, `--sketch-threshold N`, and
//! `NETSIM_TELEMETRY_SEED` — see `bench::runbin::telemetry_requested`.
fn main() {
    bench::runbin::run("exp_encap", || vec![bench::experiments::exp_encap::run()]);
}
