//! Ablation / §2, §3.3 — encapsulation format on a live workload.
//!
//! "Although adding an encapsulated IP header to the packet consumes
//! slightly more space than a redesigned TCP header might, this overhead
//! can be minimized by use of Generic Routing Encapsulation or Minimal
//! Encapsulation" (§2). Here the whole stack (mobile host *and* home
//! agent) runs each format under an identical bidirectionally-tunnelled
//! keystroke workload, and the wire pays what the wire pays.
//!
//! Also exercised: the RFC 2004 corner — Minimal Encapsulation cannot
//! carry fragments. This stack's home agent reassembles intercepted
//! datagrams before tunnelling (legal per RFC 2003, and it sidesteps the
//! limitation: the tunnel wraps a whole datagram and the *outer* packet
//! re-fragments normally). The check below pushes a fragmented datagram
//! through a Minimal-Encapsulation home agent and verifies it arrives.

use bytes::Bytes;
use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::device::TxMeta;
use netsim::wire::encap::EncapFormat;
use netsim::wire::ipv4::{IpProtocol, Ipv4Packet};
use netsim::SimDuration;
use transport::apps::{KeystrokeSession, TcpEchoServer};

use crate::util::Table;

/// Wire accounting for one tunnelled workload run.
pub struct EncapOutcome {
    /// Tunnel packets put on the wire.
    pub tunnel_packets: usize,
    /// Total bytes of those tunnel packets.
    pub tunnel_bytes: usize,
    /// The workload completed without transport errors.
    pub session_ok: bool,
}

/// Run a 20-keystroke fully-tunnelled session under `format` and account
/// for every tunnel packet on the wire.
pub fn workload(format: EncapFormat) -> EncapOutcome {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        encap: format,
        mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);
    s.roam_to_a();
    s.world.trace.clear();
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(200),
        20,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(10));

    crate::report::record_world(&format!("workload/{format:?}"), &s.world);
    let is_tunnel = |p: &netsim::trace::PacketSummary| {
        matches!(
            p.protocol,
            IpProtocol::IpInIp | IpProtocol::MinimalEncap | IpProtocol::Gre
        )
    };
    let tunnel_packets = s
        .world
        .trace
        .matching(is_tunnel)
        .filter(|e| matches!(e.kind, netsim::TraceEventKind::Sent))
        .count();
    let tunnel_bytes = s
        .world
        .trace
        .matching(is_tunnel)
        .filter(|e| matches!(e.kind, netsim::TraceEventKind::Sent))
        .map(|e| e.packet.wire_len)
        .sum();
    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    EncapOutcome {
        tunnel_packets,
        tunnel_bytes,
        session_ok: sess.all_echoed() && sess.broken.is_none(),
    }
}

/// Push a small and a fragmented datagram through a Minimal-Encapsulation
/// home agent; returns (MINENC tunnel sends, datagrams delivered at the
/// mobile).
pub fn minimal_with_fragments() -> (usize, usize) {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        encap: EncapFormat::Minimal,
        mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    s.roam_to_a();
    s.world.trace.clear();
    // The home-segment server sends one small and one oversized UDP
    // datagram to the mobile's home address; the big one fragments at the
    // server, and the HA must tunnel each fragment — which Minimal
    // Encapsulation cannot do.
    let server = s.server;
    s.world.host_do(server, |h, ctx| {
        for (ident, len) in [(1u16, 256usize), (2, 2800)] {
            let payload = vec![0u8; len];
            let mut p = Ipv4Packet::new(
                ip(addrs::SERVER),
                ip(addrs::MH_HOME),
                IpProtocol::Udp,
                Bytes::from(
                    netsim::wire::udp::UdpDatagram::new(5000, 5000, Bytes::from(payload))
                        .emit(ip(addrs::SERVER), ip(addrs::MH_HOME)),
                ),
            );
            p.ident = ident;
            h.send_ip(ctx, p, TxMeta::default());
        }
    });
    // The mobile needs a UDP listener to count deliveries.
    let mh = s.mh;
    let sock = transport::udp::bind(s.world.host_mut(mh), None, 5000);
    s.world.run_for(SimDuration::from_secs(2));
    let minenc = s
        .world
        .trace
        .matching(|p| p.protocol == IpProtocol::MinimalEncap)
        .filter(|e| matches!(e.kind, netsim::TraceEventKind::Sent))
        .count();
    let mut delivered = 0;
    while transport::udp::recv(s.world.host_mut(mh), sock).is_some() {
        delivered += 1;
    }
    (minenc, delivered)
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let ipip = workload(EncapFormat::IpInIp);
    let minimal = workload(EncapFormat::Minimal);
    let gre = workload(EncapFormat::Gre);
    let mut t = Table::new(
        "Ablation §3.3 — tunnel format on a fully-tunnelled 20-keystroke session",
        &[
            "format",
            "session ok",
            "tunnel pkts",
            "tunnel wire bytes",
            "vs IP-in-IP",
        ],
    );
    for (name, o) in [
        ("IP-in-IP (+20 B)", &ipip),
        ("Minimal Encapsulation (+12 B)", &minimal),
        ("GRE (+28 B)", &gre),
    ] {
        let delta = o.tunnel_bytes as i64 - ipip.tunnel_bytes as i64;
        t.row(&[
            name.to_string(),
            o.session_ok.to_string(),
            o.tunnel_packets.to_string(),
            o.tunnel_bytes.to_string(),
            format!("{delta:+}"),
        ]);
    }
    let (minenc, delivered) = minimal_with_fragments();
    t.note(format!(
        "RFC 2004 check: the home agent reassembles before tunnelling, so a fragmented \
         datagram still rides Minimal Encapsulation whole ({minenc} MINENC tunnel sends, \
         {delivered}/2 datagrams delivered); per-fragment tunnelling would have required \
         the enforced IP-in-IP fallback"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_formats_carry_the_session_and_minimal_is_cheapest() {
        let ipip = workload(EncapFormat::IpInIp);
        let minimal = workload(EncapFormat::Minimal);
        let gre = workload(EncapFormat::Gre);
        for (n, o) in [("ipip", &ipip), ("minenc", &minimal), ("gre", &gre)] {
            assert!(o.session_ok, "{n} failed the workload");
            assert!(o.tunnel_packets > 0, "{n} saw no tunnels");
        }
        // Same conversation, same packet count, different byte bills.
        assert_eq!(ipip.tunnel_packets, minimal.tunnel_packets);
        assert!(minimal.tunnel_bytes < ipip.tunnel_bytes);
        assert!(gre.tunnel_bytes > ipip.tunnel_bytes);
        // Per-packet deltas are exactly the header-size differences.
        let per_pkt_saving = (ipip.tunnel_bytes - minimal.tunnel_bytes) / ipip.tunnel_packets;
        assert_eq!(per_pkt_saving, 8, "IPIP(20) - MinEnc(12) = 8 B/pkt");
    }

    #[test]
    fn fragmented_datagrams_survive_a_minimal_encapsulation_tunnel() {
        let (minenc, delivered) = minimal_with_fragments();
        assert_eq!(
            delivered, 2,
            "both datagrams (incl. the fragmented one) arrive"
        );
        assert!(
            minenc >= 2,
            "both rode Minimal Encapsulation after reassembly"
        );
    }
}
