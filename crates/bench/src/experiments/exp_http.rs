//! E10 / §4 Out-DT, §6.4 Row D, §7.1.1 port heuristics — forgoing Mobile IP
//! for Web-style traffic.
//!
//! "HTTP connections are frequently very short lived … In many cases the
//! user may prefer the small risk of an occasional incomplete image, rather
//! than the large cost of slowing down all Web browsing with the overhead
//! of using Mobile IP for every connection."
//!
//! A browsing workload (short request/response transfers to port 80) runs
//! under the port-heuristic policy (port 80 → Out-DT/In-DT) and under
//! always-Mobile-IP (Out-IE). Mid-workload the mobile moves. Measured: the
//! per-transfer cost of Mobile IP, and the one broken transfer that is
//! Out-DT's price.

use mip_core::scenario::{addrs, build, ip, ChKind, Scenario, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::wire::ipv4::IpProtocol;
use netsim::SimDuration;
use transport::apps::{HttpLikeClient, RequestResponseServer, TransferOutcome};

use crate::util::{mean, Table};

/// One browsing-workload run.
pub struct WorkloadOutcome {
    /// Transfers that finished.
    pub completed: usize,
    /// Transfers that broke.
    pub failed: usize,
    /// Mean completion time of the successful transfers, ms.
    pub mean_transfer_ms: f64,
    /// TCP bytes put on wires (tunnel legs included).
    pub wire_bytes: usize,
}

fn tcp_bytes(s: &Scenario) -> usize {
    s.world.trace.bytes_on_wire(|p| {
        p.protocol == IpProtocol::Tcp
            || p.inner
                .map(|(_, _, pr)| pr == IpProtocol::Tcp)
                .unwrap_or(false)
    })
}

/// Run `transfers` short HTTP-like transfers, moving the mobile to network
/// B midway when `move_midway`.
pub fn browse(policy: PolicyConfig, transfers: u32, move_midway: bool) -> WorkloadOutcome {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: policy,
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(RequestResponseServer::new(80, 8_000)));
    s.world.poll_soon(ch);
    s.world.trace.clear();

    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(HttpLikeClient::new(
        (ch_addr, 80),
        transfers,
        SimDuration::from_millis(700),
    )));
    s.world.poll_soon(mh);

    if move_midway {
        // Run until three transfers are done, then move *during* the
        // fourth (it starts one gap after the third completes).
        for _ in 0..400 {
            s.world.run_for(SimDuration::from_millis(50));
            let n = s
                .world
                .host_mut(mh)
                .app_as::<HttpLikeClient>(app)
                .unwrap()
                .outcomes
                .len();
            if n >= 3 {
                break;
            }
        }
        s.world.run_for(SimDuration::from_millis(750)); // inside transfer 4
        mip_core::move_to(
            &mut s.world,
            mh,
            s.visited_b,
            addrs::COA_B_CIDR,
            ip(addrs::VISITED_B_GW),
        );
    } else {
        s.world.run_for(SimDuration::from_secs(3));
    }
    // Finish the workload (generous deadline for retry/timeout cases).
    for _ in 0..120 {
        s.world.run_for(SimDuration::from_secs(2));
        if s.world
            .host_mut(mh)
            .app_as::<HttpLikeClient>(app)
            .unwrap()
            .done()
        {
            break;
        }
    }

    crate::report::record_world(
        &format!("browse/transfers={transfers}/move_midway={move_midway}"),
        &s.world,
    );
    let bytes = tcp_bytes(&s);
    let client = s.world.host_mut(mh).app_as::<HttpLikeClient>(app).unwrap();
    let mut durations = Vec::new();
    let mut failed = 0;
    for o in &client.outcomes {
        match o {
            TransferOutcome::Completed { .. } => {
                durations.push(o.duration().unwrap().as_micros() as f64 / 1000.0)
            }
            TransferOutcome::Failed { .. } => failed += 1,
        }
    }
    WorkloadOutcome {
        completed: durations.len(),
        failed,
        mean_transfer_ms: mean(&durations),
        wire_bytes: bytes,
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let n = 6;
    let dt = browse(PolicyConfig::default(), n, false);
    let ie = browse(
        PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        n,
        false,
    );
    let dt_move = browse(PolicyConfig::default(), n, true);
    let ie_move = browse(PolicyConfig::fixed(OutMode::IE).without_dt_ports(), n, true);

    let mut t = Table::new(
        "E10 §4/§6.4 — Web workload: port-80 heuristic (Out-DT) vs always-Mobile-IP (Out-IE)",
        &[
            "policy",
            "mid-workload move",
            "completed",
            "failed",
            "mean transfer ms",
            "TCP wire bytes",
        ],
    );
    for (name, moved, o) in [
        ("port heuristic -> Out-DT", "no", &dt),
        ("always Out-IE", "no", &ie),
        ("port heuristic -> Out-DT", "yes", &dt_move),
        ("always Out-IE", "yes", &ie_move),
    ] {
        t.row(&[
            name.to_string(),
            moved.to_string(),
            o.completed.to_string(),
            o.failed.to_string(),
            format!("{:.1}", o.mean_transfer_ms),
            o.wire_bytes.to_string(),
        ]);
    }
    t.note("Out-DT transfers are faster and lighter; a move breaks at most the transfer in flight ('the user has the option of clicking Reload', §4) while Out-IE keeps every transfer but pays triangle + encapsulation on all of them");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_is_faster_and_lighter_than_mobile_ip() {
        let dt = browse(PolicyConfig::default(), 4, false);
        let ie = browse(
            PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
            4,
            false,
        );
        assert_eq!(dt.completed, 4);
        assert_eq!(ie.completed, 4);
        assert!(
            dt.mean_transfer_ms < ie.mean_transfer_ms,
            "DT {} ms vs IE {} ms",
            dt.mean_transfer_ms,
            ie.mean_transfer_ms
        );
        assert!(
            dt.wire_bytes < ie.wire_bytes,
            "DT {} B vs IE {} B",
            dt.wire_bytes,
            ie.wire_bytes
        );
    }

    #[test]
    fn moving_breaks_exactly_the_inflight_dt_transfer() {
        let o = browse(PolicyConfig::default(), 6, true);
        assert_eq!(o.failed, 1, "exactly the in-flight transfer breaks");
        assert_eq!(o.completed, 5, "browsing resumes after the move");
    }

    #[test]
    fn mobile_ip_keeps_every_transfer_across_the_move() {
        let o = browse(PolicyConfig::fixed(OutMode::IE).without_dt_ports(), 6, true);
        assert_eq!(o.failed, 0, "location transparency: nothing breaks");
        assert_eq!(o.completed, 6);
    }
}
