//! E4 / Figure 4 — behaviour when the correspondent is close to the mobile.
//!
//! The correspondent sits on the *visited* segment. Its packets to the
//! mobile's home address still cross the backbone twice (to the home agent
//! and back inside a tunnel), while replies travel one LAN hop. Sweeping
//! the backbone latency reproduces the figure's point: the triangle penalty
//! grows without bound with home-agent distance ("especially if the visited
//! institution is in Japan and the home agent is at MIT", §5).

use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::SimDuration;

use crate::util::{ms, Table};

/// One point of the Figure 4 sweep.
pub struct TrianglePoint {
    /// One-way backbone latency of this run, ms.
    pub backbone_ms: u64,
    /// One-way CH→MH latency via the home agent, µs.
    pub indirect_us: u64,
    /// One-way MH→CH latency on the shared segment, µs.
    pub direct_us: u64,
}

impl TrianglePoint {
    /// Indirect-to-direct latency stretch factor.
    pub fn ratio(&self) -> f64 {
        self.indirect_us as f64 / self.direct_us.max(1) as f64
    }
}

/// Measure one backbone-latency point of the Figure 4 sweep.
pub fn measure(backbone_ms: u64) -> TrianglePoint {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        ch_on_visited: true,
        backbone_ms,
        mh_policy: PolicyConfig::fixed(OutMode::DH).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let mh_home = ip(addrs::MH_HOME);
    let ch_addr = s.ch_addr();
    s.world.trace.clear();
    let ch = s.ch;
    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 1));
    s.world.run_for(SimDuration::from_secs(5));

    let indirect = s
        .world
        .trace
        .first_delivery_latency(|p| {
            let (lsrc, ldst) = p.logical_endpoints();
            lsrc == ch_addr && ldst == mh_home
        })
        .expect("request delivered");
    let direct = s
        .world
        .trace
        .first_delivery_latency(|p| {
            let (lsrc, ldst) = p.logical_endpoints();
            lsrc == mh_home && ldst == ch_addr
        })
        .expect("reply delivered");
    crate::report::record_world(&format!("triangle/backbone_ms={backbone_ms}"), &s.world);
    TrianglePoint {
        backbone_ms,
        indirect_us: indirect.as_micros(),
        direct_us: direct.as_micros(),
    }
}

/// Run the sweep over the given backbone latencies and render it.
pub fn run(backbone_sweep_ms: &[u64]) -> Table {
    let mut t = Table::new(
        "Figure 4 — triangle-routing penalty vs home-agent distance (CH on the visited segment)",
        &[
            "backbone one-way ms",
            "CH->MH via HA (ms)",
            "MH->CH direct (ms)",
            "stretch factor",
        ],
    );
    for &b in backbone_sweep_ms {
        let p = measure(b);
        t.row(&[
            b.to_string(),
            ms(p.indirect_us),
            ms(p.direct_us),
            format!("{:.0}x", p.ratio()),
        ]);
    }
    t.note("the direct leg never touches the backbone, so the stretch grows linearly with distance to the home agent (§3.2/§5)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_grows_with_home_agent_distance() {
        let near = measure(5);
        let far = measure(100);
        // Direct leg is independent of the backbone.
        assert_eq!(near.direct_us, far.direct_us);
        // Indirect leg crosses the backbone twice.
        assert!(far.indirect_us >= near.indirect_us + 2 * 90_000);
        assert!(far.ratio() > 10.0 * near.ratio() / 2.0);
        assert!(
            near.indirect_us > near.direct_us,
            "even a near HA is a detour"
        );
    }
}
