//! E11 / §2 — connection durability across movement.
//!
//! The paper's core promise: "maintain communication associations (such as
//! TCP connections) even if the point of attachment changes during their
//! lifetime". A long-lived keystroke session runs while the mobile host
//! hops visited-A → visited-B → home. Measured: survival, keystrokes
//! echoed, the retransmission cost of each handoff, and registration
//! signalling — against the §4 Out-DT baseline, whose connection dies at
//! the first move.

use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{MobileHost, OutMode, PolicyConfig};
use netsim::SimDuration;
use transport::apps::{KeystrokeSession, TcpEchoServer};
use transport::tcp;

use crate::util::Table;

/// One durability run across the handoff itinerary.
pub struct HandoffOutcome {
    /// The connection outlived every move.
    pub survived: bool,
    /// Keystrokes echoed back by the correspondent.
    pub echoed: u64,
    /// Keystrokes the session managed to type.
    pub typed: u32,
    /// TCP segments retransmitted (the probing waste).
    pub retransmitted: u64,
    /// Location changes recorded.
    pub handoffs: u64,
    /// Registration messages the mobile sent.
    pub registrations: u64,
}

/// Run a 40-keystroke session with two mid-session moves and a return
/// home. `use_home_address` selects Mobile IP (home endpoint) vs plain
/// Out-DT (care-of endpoint).
pub fn session(use_home_address: bool) -> HandoffOutcome {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    let mh = s.mh;
    let mut sess = KeystrokeSession::new((ch_addr, 23), SimDuration::from_millis(250), 40);
    if !use_home_address {
        sess.bind_addr = Some(ip(addrs::COA_A));
    }
    let app = s.world.host_mut(mh).add_app(Box::new(sess));
    s.world.poll_soon(mh);

    s.world.run_for(SimDuration::from_secs(4));
    s.roam_to_b(); // second handoff (includes 2 s settle)
    s.world.run_for(SimDuration::from_secs(4));
    s.go_home(); // final move, mid-session
                 // Long tail: a dead care-of-bound connection takes TCP's full
                 // exponential backoff (~2 min) to report its own demise.
    s.world.run_for(SimDuration::from_secs(200));

    let (survived, echoed, typed, conn) = {
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        (
            sess.broken.is_none() && sess.all_echoed(),
            sess.echoed,
            sess.typed(),
            sess.conn(),
        )
    };
    let retransmitted = conn
        .map(|c| tcp::stats(s.world.host_mut(mh), c).segs_retransmitted)
        .unwrap_or(0);
    crate::report::record_world(
        &format!("session/home_address={use_home_address}"),
        &s.world,
    );
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    crate::report::record_value(
        &format!("session/home_address={use_home_address}/audit"),
        hook.audit(),
    );
    HandoffOutcome {
        survived,
        echoed,
        typed,
        retransmitted,
        handoffs: hook.stats.handoffs,
        registrations: hook.stats.registrations_sent,
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let mobile_ip = session(true);
    let plain = session(false);
    let mut t = Table::new(
        "E11 §2 — connection durability: 40-keystroke session across home -> A -> B -> home",
        &[
            "endpoint",
            "survived",
            "echoed/typed",
            "retransmits",
            "handoffs",
            "registration msgs",
        ],
    );
    t.row(&[
        "home address (Mobile IP)".to_string(),
        mobile_ip.survived.to_string(),
        format!("{}/{}", mobile_ip.echoed, mobile_ip.typed),
        mobile_ip.retransmitted.to_string(),
        mobile_ip.handoffs.to_string(),
        mobile_ip.registrations.to_string(),
    ]);
    t.row(&[
        "care-of address (Out-DT)".to_string(),
        plain.survived.to_string(),
        format!("{}/{}", plain.echoed, plain.typed),
        plain.retransmitted.to_string(),
        plain.handoffs.to_string(),
        plain.registrations.to_string(),
    ]);
    t.note("losses during a handoff are recovered by TCP retransmission ('higher-level Internet protocols are already responsible for mechanisms to ensure reliable packet delivery', §2); the care-of-bound session dies at the first move");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_address_session_survives_three_moves() {
        let o = session(true);
        assert!(o.survived, "echoed {}/{}", o.echoed, o.typed);
        assert_eq!(o.handoffs, 3); // home->A, A->B, B->home
        assert!(o.registrations >= 2, "re-registered at each visited net");
    }

    #[test]
    fn care_of_session_dies_at_first_move() {
        let o = session(false);
        assert!(!o.survived);
        assert!(
            o.echoed < u64::from(o.typed) || o.typed < 40,
            "progress stopped after the move"
        );
    }
}
