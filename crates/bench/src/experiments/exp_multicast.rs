//! E12 / §6.4 — multicast: home tunnel vs local join.
//!
//! "Tunneling multicast packets from the home network to the visited
//! network is therefore a little self-defeating." A 20-packet multicast
//! session is present on both the home and the visited segment (as an
//! MBone-wide session would be); the away mobile receives it either through
//! the home agent's tunnel or by joining on its physical interface.
//! Measured: packets received and the backbone bytes each approach burns.

use mip_core::multicast::{join_local, join_via_home_agent, MulticastListener, MulticastSource};
use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::{Ipv4Addr, SimDuration, SimTime};

use crate::util::Table;

const GROUP: &str = "224.2.127.254"; // the old sdr session-directory group
const PORT: u16 = 9875;

/// One multicast-reception measurement.
pub struct McOutcome {
    /// Group datagrams the listener received.
    pub received: u64,
    /// Bytes the session cost the backbone.
    pub backbone_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// How the away mobile joins the group (§6.4).
pub enum JoinMethod {
    /// Join on the home segment; the home agent tunnels every packet.
    ViaHomeTunnel,
    /// Join on the current physical interface (the paper's recommendation).
    LocalInterface,
}

/// Receive the 20-packet session via `method` and account for it.
pub fn receive_session(method: JoinMethod) -> McOutcome {
    let group: Ipv4Addr = GROUP.parse().unwrap();
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: PolicyConfig::fixed(OutMode::IE),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    // The session has senders on both segments (10 packets each), starting
    // after the mobile settles.
    let start = SimTime::ZERO + SimDuration::from_secs(4);
    let server = s.server; // home-segment host doubles as the home source
    let ch = s.ch;
    s.world.host_mut(server).add_app(Box::new(
        MulticastSource::new(group, PORT, SimDuration::from_millis(400), 10).starting_at(start),
    ));
    s.world.poll_soon(server);
    // A source on the visited segment: reuse the CH host by placing it
    // there via config? Simpler: add a dedicated host.
    let vsrc = s.world.add_host(netsim::HostConfig::conventional("v-src"));
    s.world.attach(vsrc, s.visited_a, Some("36.186.0.8/24"));
    transport::udp::install(s.world.host_mut(vsrc));
    s.world.host_mut(vsrc).add_app(Box::new(
        MulticastSource::new(group, PORT, SimDuration::from_millis(400), 10).starting_at(start),
    ));
    s.world.poll_soon(vsrc);
    let _ = ch;

    s.roam_to_a();
    let mh = s.mh;
    let app = s
        .world
        .host_mut(mh)
        .add_app(Box::new(MulticastListener::new(PORT)));
    match method {
        JoinMethod::ViaHomeTunnel => {
            join_via_home_agent(
                &mut s.world,
                s.ha,
                s.ha_home_iface,
                group,
                ip(addrs::MH_HOME),
            );
        }
        JoinMethod::LocalInterface => {
            join_local(&mut s.world, mh, 0, group);
        }
    }
    s.world.poll_soon(mh);

    let backbone_before = s.world.segment_stats(s.backbone).bytes;
    s.world.run_for(SimDuration::from_secs(15));
    let backbone_bytes = s.world.segment_stats(s.backbone).bytes - backbone_before;
    crate::report::record_world(&format!("receive_session/{method:?}"), &s.world);
    let listener = s
        .world
        .host_mut(mh)
        .app_as::<MulticastListener>(app)
        .unwrap();
    McOutcome {
        received: listener.received,
        backbone_bytes,
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let tunnel = receive_session(JoinMethod::ViaHomeTunnel);
    let local = receive_session(JoinMethod::LocalInterface);
    let mut t = Table::new(
        "E12 §6.4 — multicast reception for the away mobile (session: 10 pkts on each segment)",
        &["join method", "packets received", "backbone bytes"],
    );
    t.row(&[
        "via home-agent tunnel".to_string(),
        tunnel.received.to_string(),
        tunnel.backbone_bytes.to_string(),
    ]);
    t.row(&[
        "local physical interface".to_string(),
        local.received.to_string(),
        local.backbone_bytes.to_string(),
    ]);
    t.note("the tunnel ships every group packet across the backbone as unicast — 'a little self-defeating' (§6.4); the local join costs the backbone nothing");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_methods_deliver_the_session() {
        let tunnel = receive_session(JoinMethod::ViaHomeTunnel);
        let local = receive_session(JoinMethod::LocalInterface);
        assert_eq!(tunnel.received, 10);
        assert_eq!(local.received, 10);
    }

    #[test]
    fn only_the_tunnel_burns_backbone_capacity() {
        let tunnel = receive_session(JoinMethod::ViaHomeTunnel);
        let local = receive_session(JoinMethod::LocalInterface);
        assert!(
            tunnel.backbone_bytes > 10 * 500,
            "tunnel cost {}",
            tunnel.backbone_bytes
        );
        assert!(
            local.backbone_bytes < tunnel.backbone_bytes / 5,
            "local join should be ~free: {} vs {}",
            local.backbone_bytes,
            tunnel.backbone_bytes
        );
    }
}
