//! Ablation / §2 — foreign agent vs self-sufficient (collocated care-of
//! address) operation.
//!
//! "Foreign agents may be able to provide useful services to mobile hosts,
//! but they also restrict the freedom of the mobile host to choose from the
//! full range of possible optimizations." Measured: with a collocated
//! care-of address the mobile can run Out-DE (direct encapsulated) to a
//! decap-capable correspondent; through a foreign agent it cannot — every
//! outgoing packet is plain Out-DH, and incoming traffic takes the extra
//! FA hop.

use mip_core::foreign_agent::{ForeignAgent, ForeignAgentConfig};
use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{move_via_foreign_agent, MobileHost, OutMode, PolicyConfig};
use netsim::wire::icmp::IcmpMessage;
use netsim::SimDuration;

use crate::util::Table;

/// One deployment measurement.
pub struct FaOutcome {
    /// The mobile completed registration.
    pub registered: bool,
    /// The correspondent got its echo reply.
    pub ping_answered: bool,
    /// Out-DE packets the mobile sent.
    pub out_de: u64,
    /// Out-DH packets the mobile sent.
    pub out_dh: u64,
    /// Wire traversals of the incoming request.
    pub in_hops: usize,
}

/// Ping the mobile from the correspondent and record which modes carried
/// traffic. `via_fa` selects foreign-agent operation.
pub fn deployment(via_fa: bool) -> FaOutcome {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        mh_policy: PolicyConfig::fixed(OutMode::DE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    if via_fa {
        // Stand up a foreign agent on visited-A.
        let fa = s.world.add_host(netsim::HostConfig::conventional("fa"));
        let fa_if = s.world.attach(fa, s.visited_a, Some("36.186.0.10/24"));
        s.world.compute_routes();
        ForeignAgent::install(
            &mut s.world,
            fa,
            ForeignAgentConfig {
                addr: ip("36.186.0.10"),
                visited_iface: fa_if,
                advertise_every: None,
            },
        );
        move_via_foreign_agent(
            &mut s.world,
            s.mh,
            s.visited_a,
            ip("36.186.0.10"),
            ip(addrs::VISITED_A_GW),
        );
        s.world.run_for(SimDuration::from_secs(3));
    } else {
        s.roam_to_a();
    }

    let ch = s.ch;
    let ch_addr = s.ch_addr();
    let mh_home = ip(addrs::MH_HOME);
    s.world.trace.clear();
    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 1));
    s.world.run_for(SimDuration::from_secs(3));

    let ping_answered = s
        .world
        .host(ch)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 1, .. }));
    let in_hops = s.world.trace.hops(|p| {
        let (lsrc, ldst) = p.logical_endpoints();
        lsrc == ch_addr && ldst == mh_home
    });
    crate::report::record_world(&format!("deployment/via_fa={via_fa}"), &s.world);
    let hook = s.world.host_mut(s.mh).hook_as::<MobileHost>().unwrap();
    crate::report::record_value(&format!("deployment/via_fa={via_fa}/audit"), hook.audit());
    FaOutcome {
        registered: hook.is_registered(),
        ping_answered,
        out_de: hook.stats.sent_out_de,
        out_dh: hook.stats.sent_out_dh,
        in_hops,
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let colo = deployment(false);
    let fa = deployment(true);
    let mut t = Table::new(
        "Ablation §2 — collocated care-of address vs foreign agent (MH policy requests Out-DE)",
        &[
            "deployment",
            "registered",
            "ping answered",
            "Out-DE pkts",
            "Out-DH pkts",
            "incoming wire hops",
        ],
    );
    t.row(&[
        "collocated (self-sufficient)".to_string(),
        colo.registered.to_string(),
        colo.ping_answered.to_string(),
        colo.out_de.to_string(),
        colo.out_dh.to_string(),
        colo.in_hops.to_string(),
    ]);
    t.row(&[
        "via foreign agent".to_string(),
        fa.registered.to_string(),
        fa.ping_answered.to_string(),
        fa.out_de.to_string(),
        fa.out_dh.to_string(),
        fa.in_hops.to_string(),
    ]);
    t.note("the FA-served mobile cannot honour the Out-DE policy — 'foreign agents … restrict the freedom of the mobile host to choose from the full range of possible optimizations' (§2) — and incoming packets take the extra final hop");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_deployments_work_end_to_end() {
        assert!(deployment(false).ping_answered);
        assert!(deployment(true).ping_answered);
    }

    #[test]
    fn foreign_agent_forbids_the_optimizations() {
        let colo = deployment(false);
        let fa = deployment(true);
        assert!(colo.out_de >= 1, "collocated MH used Out-DE as asked");
        assert_eq!(fa.out_de, 0, "FA-served MH cannot use Out-DE");
        assert!(fa.out_dh >= 1, "it fell back to plain Out-DH");
        assert!(
            fa.in_hops > colo.in_hops,
            "FA adds a hop: {} vs {}",
            fa.in_hops,
            colo.in_hops
        );
    }
}
