//! E1 / Figure 1 — Basic Mobile IP.
//!
//! A conventional correspondent pings the away mobile's home address.
//! Incoming packets travel CH → home agent → tunnel → MH (In-IE, longer
//! path, +20 bytes); outgoing replies travel MH → CH directly (Out-DH in
//! this unfiltered world). The table reports the per-direction asymmetry
//! the figure draws: hops, one-way latency, and wire bytes.

use mip_core::scenario::{addrs, build, ip, ChKind, Scenario, ScenarioConfig};
use mip_core::{MobileHost, OutMode, PolicyConfig};
use netsim::wire::ipv4::IpProtocol;
use netsim::SimDuration;

use crate::util::{ms, Table};

fn scenario() -> Scenario {
    build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: PolicyConfig::fixed(OutMode::DH).without_dt_ports(),
        ..ScenarioConfig::default()
    })
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let mut s = scenario();
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    assert!(s.mh_registered());

    let mh_home = ip(addrs::MH_HOME);
    let ch_addr = s.ch_addr();
    s.world.trace.clear();
    let ch = s.ch;
    s.world
        .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, 1));
    s.world.run_for(SimDuration::from_secs(2));

    // Incoming: the ICMP request, addressed to the home address. It rides
    // partly inside a tunnel (where the outer protocol is IPIP), so count
    // by logical endpoints.
    let incoming = |p: &netsim::trace::PacketSummary| {
        let (src, dst) = p.logical_endpoints();
        src == ch_addr && dst == mh_home
    };
    let outgoing = |p: &netsim::trace::PacketSummary| {
        let (src, dst) = p.logical_endpoints();
        src == mh_home && dst == ch_addr && p.protocol == IpProtocol::Icmp
    };

    let in_hops = s.world.trace.hops(incoming);
    let in_latency = s.world.trace.first_delivery_latency(incoming).unwrap();
    let in_bytes = s.world.trace.bytes_on_wire(incoming);
    let out_hops = s.world.trace.hops(outgoing);
    let out_latency = s.world.trace.first_delivery_latency(outgoing).unwrap();
    let out_bytes = s.world.trace.bytes_on_wire(outgoing);
    // Tunnel legs carry 20 extra bytes each.
    let tunneled_legs = s
        .world
        .trace
        .matching(|p| p.protocol == IpProtocol::IpInIp)
        .count();

    crate::report::record_world("basic-mobile-ip", &s.world);
    let hook = s.world.host_mut(s.mh).hook_as::<MobileHost>().unwrap();
    crate::report::record_value("basic-mobile-ip/audit", hook.audit());
    assert!(hook.stats.recv_in_ie >= 1, "incoming was In-IE");
    assert!(hook.stats.sent_out_dh >= 1, "outgoing was Out-DH");

    let mut t = Table::new(
        "Figure 1 — Basic Mobile IP: per-direction path asymmetry",
        &["direction", "mode", "wire hops", "one-way ms", "wire bytes"],
    );
    t.row(&[
        "CH -> MH (via home agent)".to_string(),
        "In-IE".to_string(),
        in_hops.to_string(),
        ms(in_latency.as_micros()),
        in_bytes.to_string(),
    ]);
    t.row(&[
        "MH -> CH (direct)".to_string(),
        "Out-DH".to_string(),
        out_hops.to_string(),
        ms(out_latency.as_micros()),
        out_bytes.to_string(),
    ]);
    t.note(format!(
        "incoming crossed {tunneled_legs} tunnelled wire legs (+20 B IP-in-IP each); \
         asymmetric routing is normal IP behaviour (§2)"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incoming_is_longer_and_heavier_than_outgoing() {
        let t = run();
        let in_hops: usize = t.cell(0, 2).parse().unwrap();
        let out_hops: usize = t.cell(1, 2).parse().unwrap();
        assert!(
            in_hops > out_hops,
            "triangle route must be longer: in {in_hops} vs out {out_hops}"
        );
        let in_ms: f64 = t.cell(0, 3).parse().unwrap();
        let out_ms: f64 = t.cell(1, 3).parse().unwrap();
        assert!(in_ms > out_ms, "indirect delivery is slower");
        let in_bytes: usize = t.cell(0, 4).parse().unwrap();
        let out_bytes: usize = t.cell(1, 4).parse().unwrap();
        assert!(in_bytes > out_bytes, "tunnel overhead costs bytes");
    }
}
