//! E18 — mass churn on hierarchical worlds.
//!
//! Builds a backbone/transit/stub world (see [`crate::scale`]) and drives
//! the three storm workloads a deployed Mobile IP infrastructure has to
//! absorb: a handoff storm, a flash crowd on one host, and the
//! re-registration stampede after a home-agent restart. The table reports
//! only deterministic quantities (counts and simulated time); wall-clock
//! build/run rates and per-host memory are measured by the `exp_scale`
//! binary and printed to stderr, so run reports stay byte-comparable
//! across machines and shard counts.

use crate::scale::{build_world, run_churn, ChurnParams, ChurnStats, ScaleIndex, ScaleParams};
use crate::util::Table;
use netsim::World;

/// One sized run: the built world (for callers that want snapshots) plus
/// the churn outcome.
pub struct ScaleOutcome {
    /// The world after churn completed.
    pub world: World,
    /// Topology index of the built world.
    pub index: ScaleIndex,
    /// What the churn driver did.
    pub stats: ChurnStats,
}

/// Build a world of (at least) `hosts` hosts and run the churn workloads.
pub fn run_sized(hosts: usize, seed: u64, churn: &ChurnParams) -> ScaleOutcome {
    let params = ScaleParams {
        seed,
        ..ScaleParams::with_hosts(hosts)
    };
    let (mut world, index) = build_world(&params);
    crate::report::observe_world(&mut world);
    let stats = run_churn(&mut world, &index, churn);
    crate::report::record_value("scale/churn", &stats);
    ScaleOutcome {
        world,
        index,
        stats,
    }
}

/// Render the outcome as the experiment table.
pub fn table(hosts_built: usize, stats: &ChurnStats) -> Table {
    let mut t = Table::new(
        "E18 — mass churn on a hierarchical world (handoff storm, flash crowd, re-registration stampede)",
        &["metric", "value"],
    );
    t.row(&["hosts built", &hosts_built.to_string()]);
    t.row(&["handoffs", &stats.handoffs.to_string()]);
    t.row(&["flash pings", &stats.flash_pings.to_string()]);
    t.row(&["flash replies", &stats.flash_replies.to_string()]);
    t.row(&["registrations sent", &stats.registrations_sent.to_string()]);
    t.row(&[
        "registrations accepted",
        &stats.registrations_accepted.to_string(),
    ]);
    t.row(&[
        "bindings dropped by restart",
        &stats.bindings_dropped.to_string(),
    ]);
    t.row(&["churn events", &stats.events.to_string()]);
    t.row(&["sim elapsed (us)", &stats.sim_elapsed_us.to_string()]);
    // Policy miss-storm rows appear only when the storm ran
    // (`--correspondents > 0`), so default tables keep their bytes.
    if let Some(p) = &stats.policy {
        t.row(&["policy correspondents", &p.correspondents.to_string()]);
        t.row(&["policy cache cap", &p.cache_cap.to_string()]);
        t.row(&["policy decisions", &p.decisions.to_string()]);
        t.row(&["policy cache hits", &p.hits.to_string()]);
        t.row(&["policy cache misses", &p.misses.to_string()]);
        t.row(&["policy evictions", &p.evictions.to_string()]);
        t.row(&[
            "policy hot history retained",
            &format!("{}/{}", p.hot_retained, p.hot_set),
        ]);
    }
    t.note("routes installed arithmetically from the domain hierarchy; no per-node shortest-path computation at any size");
    t
}

/// Default-scale run used by the test suite: a few thousand hosts, modest
/// churn. The binary sizes real runs with `--hosts`/`--churn` flags.
pub fn run() -> Table {
    let out = run_sized(2_000, 1, &ChurnParams::default());
    crate::report::record_world("scale/default", &out.world);
    table(out.index.hosts.len(), &out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_churn_completes() {
        let t = run();
        // hosts built ≥ the 2000 requested.
        let hosts: usize = t.cell(0, 1).parse().unwrap();
        assert!(hosts >= 2_000);
        let accepted: u64 = t.cell(5, 1).parse().unwrap();
        let sent: u64 = t.cell(4, 1).parse().unwrap();
        assert_eq!(accepted, sent, "every registration accepted");
    }
}
