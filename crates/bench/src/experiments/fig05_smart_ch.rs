//! E5 / Figure 5 — the smart correspondent host.
//!
//! Both of the paper's §3.2 learning mechanisms, measured:
//!
//! 1. **ICMP Mobile Host Redirect** from the home agent: the first packet
//!    takes the triangle; the redirect then lets the correspondent tunnel
//!    directly (In-DE), so subsequent round-trips drop to near the direct
//!    path.
//! 2. **DNS temporary-address record**: the correspondent looks the mobile
//!    up before speaking and goes direct from the very first packet.

use mip_core::dns::DnsLookup;
use mip_core::scenario::{addrs, build, ip, ChKind, Scenario, ScenarioConfig};
use mip_core::{MobileAwareCh, OutMode, PolicyConfig};
use netsim::wire::icmp::IcmpMessage;
use netsim::SimDuration;

use crate::util::{ms, Table};

fn scenario(redirects: bool, dns: bool) -> Scenario {
    build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ha_redirects: redirects,
        with_dns: dns,
        backbone_ms: 50,
        mh_policy: PolicyConfig::fixed(OutMode::DH).without_dt_ports(),
        ..ScenarioConfig::default()
    })
}

/// Ping the mobile `n` times from the correspondent, returning per-ping
/// RTTs in µs.
fn ping_series(s: &mut Scenario, n: u16) -> Vec<u64> {
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    let mh_home = ip(addrs::MH_HOME);
    let mut rtts = Vec::new();
    for seq in 0..n {
        let t0 = s.world.now();
        s.world
            .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, seq));
        s.world.run_for(SimDuration::from_secs(2));
        let reply_at = s
            .world
            .host(ch)
            .icmp_log
            .iter()
            .find(|e| matches!(e.message, IcmpMessage::EchoReply { seq: rs, .. } if rs == seq))
            .map(|e| e.at);
        rtts.push(
            reply_at
                .map(|t| t.since(t0).as_micros())
                .unwrap_or(u64::MAX),
        );
    }
    rtts
}

/// Mechanism 1: redirect-driven optimization. Returns the RTT series.
pub fn redirect_series(n: u16) -> Vec<u64> {
    let mut s = scenario(true, false);
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let series = ping_series(&mut s, n);
    crate::report::record_world("redirect-series", &s.world);
    series
}

/// Mechanism 2: DNS TA-record lookup before first contact.
pub fn dns_series(n: u16) -> Vec<u64> {
    let mut s = scenario(false, true);
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    // Give the TA registrar a moment to publish, then have the CH resolve.
    s.world.run_for(SimDuration::from_secs(1));
    let ch = s.ch;
    let lookup = s
        .world
        .host_mut(ch)
        .add_app(Box::new(DnsLookup::new(ip(addrs::DNS), addrs::MH_NAME)));
    s.world.poll_soon(ch);
    s.world.run_for(SimDuration::from_secs(2));
    {
        let res = s
            .world
            .host_mut(ch)
            .app_as::<DnsLookup>(lookup)
            .unwrap()
            .result
            .clone()
            .expect("DNS answered");
        assert_eq!(res.a, Some(ip(addrs::MH_HOME)));
        assert_eq!(res.ta, Some(ip(addrs::COA_A)), "TA record published");
    }
    let series = ping_series(&mut s, n);
    crate::report::record_world("dns-series", &s.world);
    series
}

/// Baseline: conventional correspondent, every packet takes the triangle.
pub fn naive_series(n: u16) -> Vec<u64> {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        backbone_ms: 50,
        mh_policy: PolicyConfig::fixed(OutMode::DH).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let series = ping_series(&mut s, n);
    crate::report::record_world("naive-series", &s.world);
    series
}

/// Run the experiment at full scale and render its result tables.
pub fn run() -> Vec<Table> {
    let n = 5u16;
    let naive = naive_series(n);
    let redirect = redirect_series(n);
    let dns = dns_series(n);

    let mut t = Table::new(
        "Figure 5 — smart correspondent: RTT per ping as the binding is learned (ms)",
        &[
            "ping #",
            "naive CH",
            "CH + ICMP redirect",
            "CH + DNS TA lookup",
        ],
    );
    for i in 0..n as usize {
        t.row(&[
            (i + 1).to_string(),
            ms(naive[i]),
            ms(redirect[i]),
            ms(dns[i]),
        ]);
    }
    t.note("redirect learning pays the triangle once; DNS learning never does (§3.2)");

    let mut verify = Table::new(
        "Figure 5 — correspondent binding-cache state after the series",
        &["mechanism", "binding present", "In-DE packets sent"],
    );
    // Re-run redirect case to inspect hook state.
    let mut s = scenario(true, false);
    s.roam_to_a();
    let _ = ping_series(&mut s, n);
    let ch = s.ch;
    let hook = s.world.host_mut(ch).hook_as::<MobileAwareCh>().unwrap();
    verify.row(&[
        "ICMP redirect".to_string(),
        hook.binding(ip(addrs::MH_HOME)).is_some().to_string(),
        hook.stats.sent_in_de.to_string(),
    ]);
    vec![t, verify]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_optimizes_after_first_packet() {
        let series = redirect_series(4);
        assert!(series.iter().all(|&r| r != u64::MAX), "all pings answered");
        // First ping pays the triangle; later pings are substantially
        // faster (the request leg stops crossing the backbone twice).
        assert!(
            series[0] > series[2] + 50_000,
            "optimization kicked in: {series:?}"
        );
        assert!(series[2] <= series[1], "stays optimized");
    }

    #[test]
    fn dns_lookup_is_optimal_from_the_start() {
        let dns = dns_series(3);
        let naive = naive_series(3);
        assert!(dns.iter().all(|&r| r != u64::MAX));
        // Even the FIRST dns-informed ping beats the naive one.
        assert!(dns[0] + 50_000 < naive[0], "dns {dns:?} vs naive {naive:?}");
    }

    #[test]
    fn naive_never_improves() {
        // The first ping pays one-time ARP costs everywhere; after that a
        // naive correspondent's RTT is flat — it keeps taking the triangle.
        let series = naive_series(4);
        let warm = &series[1..];
        let spread = warm.iter().max().unwrap() - warm.iter().min().unwrap();
        assert!(spread < 20_000, "no learning, stable RTT: {series:?}");
        // And it never drops to the optimized level: every warm RTT still
        // crosses the backbone three times (2 in, 1 out).
        for &rtt in warm {
            assert!(rtt > 140_000, "still the triangle: {series:?}");
        }
    }
}
