//! E9 / §7.1.2 — choosing the home-address delivery method.
//!
//! The paper describes two probing orders and finds both wasteful in the
//! wrong environment: starting conservative (Out-IE first) "can be
//! wasteful, because in many cases either one or both of Out-DH and Out-DE
//! will work fine", and starting aggressive (Out-DH first) "can also be
//! wasteful because in some easily identifiable circumstances … Out-DH is
//! known to fail every time". User rules (§7.1.2) encode the known cases.
//!
//! This experiment runs a keystroke conversation under each strategy in a
//! permissive and in an egress-filtered visited network and reports the
//! cost: completion time, retransmitted segments (the probing waste), and
//! where the method cache ends up.

use mip_core::scenario::{addrs, build, cidr, ChKind, ScenarioConfig};
use mip_core::{MobileHost, OutMode, PolicyConfig, Strategy};
use netsim::SimDuration;
use transport::apps::{KeystrokeSession, TcpEchoServer};
use transport::tcp;

use crate::util::Table;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// Network permissiveness the probe runs under.
pub enum Env {
    /// No filters anywhere.
    Open,
    /// Visited networks egress-filter foreign sources (§3.1).
    EgressFiltered,
}

/// One strategy/environment measurement.
pub struct ProbeOutcome {
    /// The session delivered every keystroke.
    pub completed: bool,
    /// Time until the session finished (or died), ms.
    pub completion_ms: u64,
    /// TCP segments retransmitted (the probing waste).
    pub retransmitted: u64,
    /// Where the method cache ended up for the correspondent.
    pub final_mode: Option<OutMode>,
    /// Method-cache demotions driven by §7.1.2 feedback.
    pub demotions: u64,
    /// Method-cache upgrade probes that took effect.
    pub promotions: u64,
}

/// Run a 20-keystroke session under `policy` in `env` and measure the cost.
pub fn probe(strategy_name: &str, policy: PolicyConfig, env: Env) -> ProbeOutcome {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        visited_egress_filter: env == Env::EgressFiltered,
        mh_policy: policy,
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    let keystrokes = 20;
    let mh = s.mh;
    let start = s.world.now();
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(200),
        keystrokes,
    )));
    s.world.poll_soon(mh);

    // Run in slices until the session finishes (or a deadline passes).
    let mut completion_ms = 0;
    let deadline = 300; // seconds
    for _ in 0..deadline {
        s.world.run_for(SimDuration::from_secs(1));
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        if sess.all_echoed() || sess.broken.is_some() {
            completion_ms = s.world.now().since(start).as_millis();
            break;
        }
    }
    let (completed, conn) = {
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        (sess.all_echoed() && sess.broken.is_none(), sess.conn())
    };
    let retransmitted = conn
        .map(|c| tcp::stats(s.world.host_mut(mh), c).segs_retransmitted)
        .unwrap_or(0);
    crate::report::record_world(&format!("probe/{strategy_name}/{env:?}"), &s.world);
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    crate::report::record_value(
        &format!("probe/{strategy_name}/{env:?}/audit"),
        hook.audit(),
    );
    ProbeOutcome {
        completed,
        completion_ms,
        retransmitted,
        final_mode: Some(hook.mode_for(ch_addr)),
        demotions: hook.stats.demotions,
        promotions: hook.stats.promotions,
    }
}

fn policies() -> Vec<(&'static str, PolicyConfig)> {
    vec![
        (
            "optimistic (DH first)",
            PolicyConfig::optimistic().without_dt_ports(),
        ),
        (
            "pessimistic (IE first)",
            PolicyConfig::pessimistic().without_dt_ports(),
        ),
        (
            "rule: CH region -> Out-DE (operator knows)",
            PolicyConfig::optimistic()
                .without_dt_ports()
                // §7.1.2: an address/mask rule encoding what the operator
                // already knows — this region sits behind filters but its
                // hosts decapsulate, so start (and stay) at Out-DE.
                .with_rule(cidr(addrs::CH_PREFIX), Strategy::Fixed(OutMode::DE)),
        ),
        (
            "fixed Out-IE (no probing)",
            PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ),
    ]
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E9 §7.1 — probing strategies: cost of finding a working delivery method (20-keystroke session)",
        &[
            "strategy",
            "network",
            "completed",
            "time ms",
            "retransmits",
            "final mode",
            "demote/promote",
        ],
    );
    for env in [Env::Open, Env::EgressFiltered] {
        for (name, policy) in policies() {
            let o = probe(name, policy, env);
            t.row(&[
                name.to_string(),
                format!("{env:?}"),
                o.completed.to_string(),
                o.completion_ms.to_string(),
                o.retransmitted.to_string(),
                o.final_mode.map(|m| m.to_string()).unwrap_or_default(),
                format!("{}/{}", o.demotions, o.promotions),
            ]);
        }
    }
    t.note("optimistic wins on permissive paths and pays retransmissions behind filters; pessimistic never fails but starts slow and probes upward; rules skip the probing where the answer is known (§7.1.2)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_is_clean_on_open_network() {
        let o = probe(
            "opt",
            PolicyConfig::optimistic().without_dt_ports(),
            Env::Open,
        );
        assert!(o.completed);
        assert_eq!(o.retransmitted, 0, "nothing to discover");
        assert_eq!(o.final_mode, Some(OutMode::DH));
        assert_eq!(o.demotions, 0);
    }

    #[test]
    fn optimistic_pays_then_recovers_behind_filters() {
        let o = probe(
            "opt",
            PolicyConfig::optimistic().without_dt_ports(),
            Env::EgressFiltered,
        );
        assert!(o.completed, "feedback demotion rescues the conversation");
        assert!(o.retransmitted > 0, "the probing cost is visible");
        assert!(o.demotions >= 1);
        assert_eq!(
            o.final_mode,
            Some(OutMode::DE),
            "settles on Out-DE (CH can decap)"
        );
    }

    #[test]
    fn pessimistic_always_completes_and_upgrades_when_safe() {
        let open = probe(
            "pess",
            PolicyConfig::pessimistic().without_dt_ports(),
            Env::Open,
        );
        assert!(open.completed);
        assert!(open.promotions >= 1, "upgrade probing happened");
        let filtered = probe(
            "pess",
            PolicyConfig::pessimistic().without_dt_ports(),
            Env::EgressFiltered,
        );
        assert!(filtered.completed);
    }

    #[test]
    fn operator_rule_skips_the_probing_entirely() {
        // §7.1.2: the rule encodes the known answer, so even behind the
        // filter there is nothing to discover — no waste at all.
        let policy = PolicyConfig::optimistic()
            .without_dt_ports()
            .with_rule(cidr(addrs::CH_PREFIX), Strategy::Fixed(OutMode::DE));
        let o = probe("rule", policy, Env::EgressFiltered);
        assert!(o.completed);
        assert_eq!(o.retransmitted, 0, "no probing waste");
        assert_eq!(o.demotions, 0);
        assert_eq!(o.final_mode, Some(OutMode::DE));
    }

    #[test]
    fn fixed_ie_never_probes() {
        let o = probe(
            "fixed",
            PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
            Env::EgressFiltered,
        );
        assert!(o.completed);
        assert_eq!(o.retransmitted, 0);
        assert_eq!(o.demotions, 0);
        assert_eq!(o.final_mode, Some(OutMode::IE));
    }
}
