//! Extension / §6.1 — the security cost of automatic decapsulation.
//!
//! "Hosts that perform automatic decapsulation lose some degree of
//! firewall protection - automatic decapsulation makes it easy to spoof
//! packet source addresses - so automatic decapsulation should only be
//! done on hosts that use strong authentication mechanisms instead of
//! simply trusting the packet addresses."
//!
//! Reproduced as an attack: the home boundary ingress-filters spoofed
//! sources, so a plain packet claiming to come from a trusted inside host
//! dies at the border (Figure 2's filter doing its day job). But the same
//! forged packet *inside a tunnel* sails through — the filter only sees
//! the attacker's honest outer header — and a decap-capable victim
//! delivers it with the trusted source address. The experiment measures
//! both paths against both victim configurations.

use bytes::Bytes;
use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use netsim::device::TxMeta;
use netsim::wire::encap::{encapsulate, EncapFormat};
use netsim::wire::ipv4::{IpProtocol, Ipv4Packet};
use netsim::wire::udp::UdpDatagram;
use netsim::SimDuration;
use transport::udp;

use crate::util::Table;

/// Result of one spoofing attempt.
pub struct SpoofOutcome {
    /// Forged datagrams the victim's application actually received, with
    /// the trusted source address on them.
    pub accepted: usize,
}

/// The attacker (in the correspondent's domain) tries to make the victim
/// (the home-domain server) accept a datagram claiming to come from the
/// trusted home agent.
pub fn attack(tunnelled: bool, victim_decaps: bool) -> SpoofOutcome {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional, // the CH host plays the attacker
        home_ingress_filter: true,
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.world.host_mut(s.server).set_decap_capable(victim_decaps);
    udp::install(s.world.host_mut(s.server));
    let sock = udp::bind(s.world.host_mut(s.server), None, 2049); // NFS-ish
    let attacker = s.ch;
    let trusted = ip(addrs::HA); // claim to be the home agent
    let victim = ip(addrs::SERVER);

    s.world.host_do(attacker, |h, ctx| {
        let dgram = UdpDatagram::new(700, 2049, Bytes::from_static(b"forged request"));
        let mut forged = Ipv4Packet::new(
            trusted,
            victim,
            IpProtocol::Udp,
            Bytes::from(dgram.emit(trusted, victim)),
        );
        forged.ident = h.alloc_ident();
        let pkt = if tunnelled {
            // Honest outer header, forged inner packet (§6.1's attack).
            encapsulate(
                EncapFormat::IpInIp,
                ip(addrs::CH),
                victim,
                &forged,
                h.alloc_ident(),
            )
            .unwrap()
        } else {
            forged
        };
        h.send_ip(ctx, pkt, TxMeta::default());
    });
    s.world.run_for(SimDuration::from_secs(2));

    crate::report::record_world(
        &format!("spoof/tunnelled={tunnelled}/decaps={victim_decaps}"),
        &s.world,
    );
    let mut accepted = 0;
    while let Some(got) = udp::recv(s.world.host_mut(s.server), sock) {
        if got.from.0 == trusted {
            accepted += 1;
        }
    }
    SpoofOutcome { accepted }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let mut t = Table::new(
        "Extension §6.1 — spoofing a trusted inside source past the ingress filter",
        &[
            "attack packet",
            "victim decapsulates",
            "forged datagram accepted",
        ],
    );
    for (tunnelled, label) in [
        (false, "plain (Figure 2 geometry)"),
        (true, "inside a tunnel"),
    ] {
        for decaps in [false, true] {
            let o = attack(tunnelled, decaps);
            t.row(&[
                label.to_string(),
                decaps.to_string(),
                if o.accepted > 0 {
                    "ACCEPTED"
                } else {
                    "blocked"
                }
                .to_string(),
            ]);
        }
    }
    t.note("the filter inspects only the outer header, so automatic decapsulation re-opens the spoofing hole the filter closed — 'automatic decapsulation should only be done on hosts that use strong authentication' (§6.1)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_spoof_is_filtered_regardless_of_victim() {
        assert_eq!(attack(false, false).accepted, 0);
        assert_eq!(attack(false, true).accepted, 0);
    }

    #[test]
    fn tunnelled_spoof_succeeds_only_against_auto_decapsulation() {
        assert_eq!(
            attack(true, false).accepted,
            0,
            "a non-decapsulating victim drops the tunnel"
        );
        assert_eq!(
            attack(true, true).accepted,
            1,
            "auto-decap accepts the forged inner source (§6.1's warning)"
        );
    }
}
