//! E6/E7 / Figures 6–9 — packet formats on the wire.
//!
//! Byte-exact accounting for the four outgoing (Figures 6–7) and four
//! incoming (Figures 8–9) packet layouts, for each encapsulation format
//! (§3.3), plus the MTU-crossing effect: "If the addition of the extra 20
//! bytes makes the packet exceed the IP maximum transmission unit for a
//! particular link, then the packet will be fragmented, doubling the packet
//! count."

use bytes::Bytes;
use mip_core::{InMode, OutMode};
use netsim::wire::encap::{decapsulate, encapsulate, EncapFormat};
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet, IPV4_HEADER_LEN};

use crate::util::Table;

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

const HOME: &str = "171.64.15.9";
const COA: &str = "36.186.0.99";
const HA: &str = "171.64.15.1";
const CH: &str = "18.26.0.5";

/// Build the on-the-wire packet for one outgoing mode (Figures 6 and 7) and
/// return (headline addresses, wire length).
pub fn outgoing_packet(mode: OutMode, format: EncapFormat, payload_len: usize) -> (String, usize) {
    let payload = Bytes::from(vec![0u8; payload_len]);
    match mode {
        OutMode::DH => {
            let p = Ipv4Packet::new(ip(HOME), ip(CH), IpProtocol::Udp, payload);
            (format!("S={HOME} D={CH}"), p.wire_len())
        }
        OutMode::DT => {
            let p = Ipv4Packet::new(ip(COA), ip(CH), IpProtocol::Udp, payload);
            (format!("S={COA} D={CH}"), p.wire_len())
        }
        OutMode::IE => {
            let inner = Ipv4Packet::new(ip(HOME), ip(CH), IpProtocol::Udp, payload);
            let outer = encapsulate(format, ip(COA), ip(HA), &inner, 1).unwrap();
            (
                format!("s={COA} d={HA} | S={HOME} D={CH}"),
                outer.wire_len(),
            )
        }
        OutMode::DE => {
            let inner = Ipv4Packet::new(ip(HOME), ip(CH), IpProtocol::Udp, payload);
            let outer = encapsulate(format, ip(COA), ip(CH), &inner, 1).unwrap();
            (
                format!("s={COA} d={CH} | S={HOME} D={CH}"),
                outer.wire_len(),
            )
        }
    }
}

/// Build the packet as it arrives at the mobile host for one incoming mode
/// (Figures 8 and 9).
pub fn incoming_packet(mode: InMode, format: EncapFormat, payload_len: usize) -> (String, usize) {
    let payload = Bytes::from(vec![0u8; payload_len]);
    match mode {
        InMode::DH => {
            let p = Ipv4Packet::new(ip(CH), ip(HOME), IpProtocol::Udp, payload);
            (format!("S={CH} D={HOME}"), p.wire_len())
        }
        InMode::DT => {
            let p = Ipv4Packet::new(ip(CH), ip(COA), IpProtocol::Udp, payload);
            (format!("S={CH} D={COA}"), p.wire_len())
        }
        InMode::IE => {
            let inner = Ipv4Packet::new(ip(CH), ip(HOME), IpProtocol::Udp, payload);
            let outer = encapsulate(format, ip(HA), ip(COA), &inner, 1).unwrap();
            (
                format!("s={HA} d={COA} | S={CH} D={HOME}"),
                outer.wire_len(),
            )
        }
        InMode::DE => {
            let inner = Ipv4Packet::new(ip(CH), ip(HOME), IpProtocol::Udp, payload);
            let outer = encapsulate(format, ip(CH), ip(COA), &inner, 1).unwrap();
            (
                format!("s={CH} d={COA} | S={CH} D={HOME}"),
                outer.wire_len(),
            )
        }
    }
}

/// Fragments needed to carry `payload_len` transport bytes across an
/// `mtu`-limited link, with and without encapsulation.
pub fn fragment_count(payload_len: usize, mtu: usize, format: Option<EncapFormat>) -> usize {
    let inner = Ipv4Packet::new(
        ip(HOME),
        ip(CH),
        IpProtocol::Udp,
        Bytes::from(vec![0u8; payload_len]),
    );
    let pkt = match format {
        None => inner,
        Some(f) => encapsulate(f, ip(COA), ip(HA), &inner, 1).unwrap(),
    };
    pkt.fragment(mtu).map(|v| v.len()).unwrap_or(0)
}

/// Run the experiment at full scale and render its result tables.
pub fn run() -> Vec<Table> {
    let payload = 512;
    let base = IPV4_HEADER_LEN + payload;

    let mut t1 = Table::new(
        "Figures 6-9 — wire layouts and sizes of all eight packet kinds (512-byte transport payload)",
        &["packet", "addressing (outer | inner)", "wire bytes", "overhead vs plain"],
    );
    for mode in OutMode::ALL {
        let (addrs, len) = outgoing_packet(mode, EncapFormat::IpInIp, payload);
        t1.row(&[
            mode.to_string(),
            addrs,
            len.to_string(),
            format!("+{}", len - base),
        ]);
    }
    for mode in InMode::ALL {
        let (addrs, len) = incoming_packet(mode, EncapFormat::IpInIp, payload);
        t1.row(&[
            mode.to_string(),
            addrs,
            len.to_string(),
            format!("+{}", len - base),
        ]);
    }

    let mut t2 = Table::new(
        "§3.3 — encapsulation overhead by format",
        &["format", "overhead bytes", "survives fragment-in-fragment"],
    );
    for f in [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre] {
        // Verify the overhead empirically, not just from the constant.
        let inner = Ipv4Packet::new(
            ip(HOME),
            ip(CH),
            IpProtocol::Udp,
            Bytes::from(vec![0u8; payload]),
        );
        let outer = encapsulate(f, ip(COA), ip(HA), &inner, 1).unwrap();
        assert_eq!(outer.wire_len() - inner.wire_len(), f.overhead());
        assert_eq!(decapsulate(&outer).unwrap().payload, inner.payload);
        let mut frag = inner.clone();
        frag.more_fragments = true;
        let handles_frags = encapsulate(f, ip(COA), ip(HA), &frag, 1).is_some();
        t2.row(&[
            format!("{f:?}"),
            f.overhead().to_string(),
            handles_frags.to_string(),
        ]);
    }
    t2.note("Minimal Encapsulation cannot carry already-fragmented packets (RFC 2004); the stack falls back to IP-in-IP for those");

    let mut t3 = Table::new(
        "§3.3 — packet count vs payload size at MTU 1500 (plain vs IP-in-IP encapsulated)",
        &[
            "transport payload B",
            "plain packets",
            "encapsulated packets",
        ],
    );
    for payload in [1000, 1460, 1472, 1480, 2000, 2960] {
        t3.row(&[
            payload.to_string(),
            fragment_count(payload, 1500, None).to_string(),
            fragment_count(payload, 1500, Some(EncapFormat::IpInIp)).to_string(),
        ]);
    }
    t3.note("a full-MTU packet doubles its packet count the moment 20 bytes of encapsulation are added (§3.3)");

    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unencapsulated_modes_add_nothing() {
        for (mode, _) in [(OutMode::DH, ()), (OutMode::DT, ())] {
            let (_, len) = outgoing_packet(mode, EncapFormat::IpInIp, 100);
            assert_eq!(len, IPV4_HEADER_LEN + 100);
        }
        for mode in [InMode::DH, InMode::DT] {
            let (_, len) = incoming_packet(mode, EncapFormat::IpInIp, 100);
            assert_eq!(len, IPV4_HEADER_LEN + 100);
        }
    }

    #[test]
    fn encapsulated_modes_add_exactly_the_format_overhead() {
        for f in [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre] {
            for mode in [OutMode::IE, OutMode::DE] {
                let (_, len) = outgoing_packet(mode, f, 100);
                assert_eq!(len, IPV4_HEADER_LEN + 100 + f.overhead(), "{mode} {f:?}");
            }
            for mode in [InMode::IE, InMode::DE] {
                let (_, len) = incoming_packet(mode, f, 100);
                assert_eq!(len, IPV4_HEADER_LEN + 100 + f.overhead(), "{mode} {f:?}");
            }
        }
    }

    #[test]
    fn mtu_crossing_doubles_packet_count() {
        // 1480 transport bytes = exactly one full 1500-byte packet.
        assert_eq!(fragment_count(1480, 1500, None), 1);
        assert_eq!(fragment_count(1480, 1500, Some(EncapFormat::IpInIp)), 2);
        // Well under the MTU: encapsulation costs bytes but not packets.
        assert_eq!(fragment_count(1000, 1500, Some(EncapFormat::IpInIp)), 1);
        // 2960 B of transport payload = exactly two maximal fragments
        // plain, three once the tunnel header is added.
        assert_eq!(fragment_count(2960, 1500, None), 2);
        assert_eq!(fragment_count(2960, 1500, Some(EncapFormat::IpInIp)), 3);
    }

    #[test]
    fn minimal_encap_is_smallest_useful_format() {
        let (_, ipip) = outgoing_packet(OutMode::IE, EncapFormat::IpInIp, 100);
        let (_, minenc) = outgoing_packet(OutMode::IE, EncapFormat::Minimal, 100);
        let (_, gre) = outgoing_packet(OutMode::IE, EncapFormat::Gre, 100);
        assert!(minenc < ipip, "minimal encapsulation saves bytes (§2)");
        assert!(gre > ipip, "GRE's generality costs bytes");
    }
}
