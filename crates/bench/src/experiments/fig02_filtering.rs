//! E2 / Figure 2 — the source-address-filtering failure.
//!
//! The mobile host, away from home, sends to a correspondent *inside* its
//! home institution (the Figure 2 geometry) using each of the four outgoing
//! modes, under each combination of the §3.1 boundary policies:
//!
//! * home boundary **ingress** filter: drops packets arriving from outside
//!   with source addresses claiming to be inside;
//! * visited boundary **egress** filter: drops packets leaving with source
//!   addresses that don't belong to the visited network.
//!
//! The paper's claim: only Out-DH is at risk; encapsulated modes hide the
//! home source from routers, and Out-DT uses a legitimate source.

use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::wire::icmp::IcmpMessage;
use netsim::{DropReason, SimDuration};

use crate::util::Table;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// Which §3.1 boundary policies are active.
pub struct FilterConfig {
    /// Home boundary drops outside packets with inside sources.
    pub home_ingress: bool,
    /// Visited boundaries drop departing packets with foreign sources.
    pub visited_egress: bool,
}

impl FilterConfig {
    /// All four filter combinations, least to most restrictive.
    pub const ALL: [FilterConfig; 4] = [
        FilterConfig {
            home_ingress: false,
            visited_egress: false,
        },
        FilterConfig {
            home_ingress: true,
            visited_egress: false,
        },
        FilterConfig {
            home_ingress: false,
            visited_egress: true,
        },
        FilterConfig {
            home_ingress: true,
            visited_egress: true,
        },
    ];

    fn label(&self) -> &'static str {
        match (self.home_ingress, self.visited_egress) {
            (false, false) => "no filters",
            (true, false) => "home ingress",
            (false, true) => "visited egress",
            (true, true) => "both",
        }
    }
}

/// Send `n` pings from the roamed mobile to the home-domain server using
/// `mode`; return (delivered requests, observed filter drops).
pub fn probe(mode: OutMode, filters: FilterConfig, n: u16) -> (usize, usize) {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        home_ingress_filter: filters.home_ingress,
        visited_egress_filter: filters.visited_egress,
        mh_policy: PolicyConfig::fixed(mode).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    // Out-DE needs the target to decapsulate (§6.1: some OSes have it
    // built-in).
    s.world.host_mut(s.server).set_decap_capable(true);
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    assert!(s.mh_registered(), "registration (Out-DT) always works");

    let server_addr = ip(addrs::SERVER);
    let src = if mode == OutMode::DT {
        ip(addrs::COA_A)
    } else {
        ip(addrs::MH_HOME)
    };
    s.world.trace.clear();
    let mh = s.mh;
    for seq in 0..n {
        s.world
            .host_do(mh, |h, ctx| h.send_ping(ctx, src, server_addr, seq));
        s.world.run_for(SimDuration::from_millis(500));
    }
    s.world.run_for(SimDuration::from_secs(2));

    let delivered = s
        .world
        .host(s.server)
        .icmp_log
        .iter()
        .filter(|e| matches!(e.message, IcmpMessage::EchoRequest { .. }))
        .count();
    let filter_drops = s
        .world
        .trace
        .drops(|p| {
            let (lsrc, ldst) = p.logical_endpoints();
            lsrc == src && ldst == server_addr
        })
        .iter()
        .filter(|(_, r)| *r == DropReason::SourceAddressFilter)
        .count();
    let label = format!("{mode}/{}", filters.label());
    crate::report::record_world(&label, &s.world);
    if let Some(h) = s.world.host_mut(mh).hook_as::<mip_core::MobileHost>() {
        crate::report::record_value(&format!("{label}/audit"), h.audit());
    }
    (delivered, filter_drops)
}

/// Run the experiment at full scale and render its result tables.
pub fn run() -> Vec<Table> {
    let n = 3u16;
    let mut t = Table::new(
        "Figure 2 — deliverability of the four outgoing modes under source-address filtering",
        &[
            "out mode",
            "no filters",
            "home ingress",
            "visited egress",
            "both",
        ],
    );
    let mut drops_t = Table::new(
        "Figure 2 — source-address-filter drops observed (of 3 probes)",
        &[
            "out mode",
            "no filters",
            "home ingress",
            "visited egress",
            "both",
        ],
    );
    for mode in OutMode::ALL {
        let mut row = vec![mode.to_string()];
        let mut drow = vec![mode.to_string()];
        for f in FilterConfig::ALL {
            let (delivered, drops) = probe(mode, f, n);
            row.push(if delivered == n as usize {
                "delivered".to_string()
            } else if delivered == 0 {
                "DROPPED".to_string()
            } else {
                format!("{delivered}/{n}")
            });
            drow.push(drops.to_string());
        }
        t.row(&row);
        drops_t.row(&drow);
    }
    t.note("Out-DH is the only mode a filter can see through (§3.1): the encapsulated modes hide the home source, Out-DT uses a topologically-correct source");
    vec![t, drops_t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_out_dh_is_filtered() {
        for f in FilterConfig::ALL {
            let filtered = f.home_ingress || f.visited_egress;
            for mode in OutMode::ALL {
                let (delivered, drops) = probe(mode, f, 2);
                let expect_delivery = mode != OutMode::DH || !filtered;
                if expect_delivery {
                    assert_eq!(delivered, 2, "{mode} under {f:?} should deliver");
                    assert_eq!(drops, 0);
                } else {
                    assert_eq!(
                        delivered, 0,
                        "{mode} under {f:?} should be eaten by the filter"
                    );
                    assert_eq!(drops, 2, "drops must be attributed to the filter");
                }
            }
        }
    }
}
