//! E17 / §4 — loose source routing vs encapsulation.
//!
//! "Although we could use loose source routing, this achieves little that
//! can't be done equally well using an encapsulating header. Current IP
//! routers typically handle packets with options much more slowly than
//! they handle normal unadorned IP packets."
//!
//! Both mechanisms steer the mobile's outgoing packet through the home
//! agent. The measurements: LSR saves 12 bytes per packet over IP-in-IP
//! (8-byte option vs 20-byte header) — and pays the options slow path at
//! *every* router it crosses, and still exposes the home source address to
//! §3.1 filters, which encapsulation hides. The paper's dismissal,
//! quantified.

use bytes::Bytes;
use mip_core::scenario::{addrs, build, ip, ChKind, Scenario, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::device::TxMeta;
use netsim::wire::icmp::IcmpMessage;
use netsim::wire::ipv4::{IpProtocol, Ipv4Packet};
use netsim::wire::srcroute;
use netsim::SimDuration;

use crate::util::{ms, Table};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// How the packet is steered through the home agent.
pub enum Steering {
    /// Out-IE: encapsulate to the home agent.
    Encapsulation,
    /// RFC 791 loose source route through the home agent.
    LooseSourceRoute,
}

/// One steering measurement.
pub struct LsrOutcome {
    /// The probe reached the correspondent.
    pub delivered: bool,
    /// One-way delivery latency, µs.
    pub one_way_us: u64,
    /// Average bytes per wire traversal.
    pub wire_bytes_per_hop: usize,
    /// Times a router diverted the probe to its options slow path.
    pub slow_path_hits: u64,
}

fn scenario(filtered: bool) -> Scenario {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        visited_egress_filter: filtered,
        mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    // The home agent's host honours source routes for the LSR variant
    // (real agents of the era did; modern stacks disable this).
    s.world.host_mut(s.ha).set_forward_source_routes(true);
    s
}

/// Send one ping from the away mobile to the correspondent, steered
/// through the home agent by `method`.
pub fn probe(method: Steering, filtered: bool) -> LsrOutcome {
    let mut s = scenario(filtered);
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let mh = s.mh;
    let ch_addr = s.ch_addr();
    let home = ip(addrs::MH_HOME);
    let ha = ip(addrs::HA);
    s.world.trace.clear();

    match method {
        Steering::Encapsulation => {
            // The Fixed(IE) policy encapsulates for us.
            s.world
                .host_do(mh, |h, ctx| h.send_ping(ctx, home, ch_addr, 1));
        }
        Steering::LooseSourceRoute => {
            s.world.host_do(mh, |h, ctx| {
                let msg = IcmpMessage::EchoRequest {
                    ident: 0x4d49,
                    seq: 1,
                    payload: Bytes::from_static(b"mobility4x4 ping"),
                };
                let mut p =
                    Ipv4Packet::new(home, ch_addr, IpProtocol::Icmp, Bytes::from(msg.emit()));
                p.ident = h.alloc_ident();
                srcroute::apply_route(&mut p, &[ha], ch_addr);
                // Bypass the mobility policy: LSR IS the steering.
                h.send_ip(
                    ctx,
                    p,
                    TxMeta {
                        skip_override: true,
                        ..TxMeta::default()
                    },
                );
            });
        }
    }
    s.world.run_for(SimDuration::from_secs(2));

    let pred = |p: &netsim::trace::PacketSummary| {
        let (lsrc, _) = p.logical_endpoints();
        lsrc == home && p.protocol != IpProtocol::Udp // exclude registration
    };
    let delivered = s
        .world
        .host(s.ch)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 1, .. }));
    let one_way_us = s
        .world
        .trace
        .first_delivery_latency(pred)
        .map(|d| d.as_micros())
        .unwrap_or(0);
    let hops = s.world.trace.hops(pred).max(1);
    let wire_bytes_per_hop = s.world.trace.bytes_on_wire(pred) / hops;
    let slow_path_hits = [s.home_gw, s.visited_a_gw, s.visited_b_gw, s.ch_gw]
        .iter()
        .map(|&r| s.world.router_mut(r).slow_path_packets)
        .sum();
    crate::report::record_world(&format!("probe/{method:?}/filtered={filtered}"), &s.world);
    LsrOutcome {
        delivered,
        one_way_us,
        wire_bytes_per_hop,
        slow_path_hits,
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E17 §4 — steering via the home agent: loose source routing vs encapsulation",
        &[
            "method",
            "network",
            "delivered",
            "one-way ms",
            "wire B/hop",
            "router slow-path hits",
        ],
    );
    for filtered in [false, true] {
        for (method, name) in [
            (Steering::Encapsulation, "Out-IE encapsulation (+20 B)"),
            (Steering::LooseSourceRoute, "loose source route (+8 B)"),
        ] {
            let o = probe(method, filtered);
            t.row(&[
                name.to_string(),
                if filtered { "egress-filtered" } else { "open" }.to_string(),
                o.delivered.to_string(),
                ms(o.one_way_us),
                o.wire_bytes_per_hop.to_string(),
                o.slow_path_hits.to_string(),
            ]);
        }
    }
    t.note("LSR saves 12 B/packet but pays the options slow path at every router and still shows the home source to filters — 'this achieves little that can't be done equally well using an encapsulating header' (§4)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_methods_deliver_on_an_open_path() {
        let enc = probe(Steering::Encapsulation, false);
        let lsr = probe(Steering::LooseSourceRoute, false);
        assert!(enc.delivered);
        assert!(lsr.delivered, "the LSR machinery works end to end");
        // LSR is lighter per hop...
        assert!(lsr.wire_bytes_per_hop < enc.wire_bytes_per_hop);
        // ...but slower: it hit the options slow path at several routers.
        assert!(lsr.slow_path_hits >= 3, "hits: {}", lsr.slow_path_hits);
        assert_eq!(enc.slow_path_hits, 0);
        assert!(
            lsr.one_way_us > enc.one_way_us + 1_000,
            "lsr {} vs enc {}",
            lsr.one_way_us,
            enc.one_way_us
        );
    }

    #[test]
    fn filters_see_through_lsr_but_not_encapsulation() {
        let enc = probe(Steering::Encapsulation, true);
        let lsr = probe(Steering::LooseSourceRoute, true);
        assert!(enc.delivered, "the tunnel hides the home source");
        assert!(!lsr.delivered, "the option leaves the home source exposed");
    }
}
