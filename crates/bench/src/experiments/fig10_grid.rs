//! E8 / Figure 10 — the 4x4 grid, derived empirically.
//!
//! For each of the sixteen (incoming × outgoing) combinations, run a real
//! TCP conversation (keystroke echo) between the away mobile and a
//! correspondent whose delivery behaviour is *forced* to the row's In-mode
//! (see [`crate::forced`]), with the mobile's policy fixed to the column's
//! Out-mode. A cell "works" iff the conversation completes.
//!
//! The paper's claim (§6.5): the fourth row and fourth column break except
//! for their shared corner, because "the use of the temporary care-of
//! address for communication in one direction effectively mandates the use
//! of the same address for the corresponding return communication" — and
//! TCP's 4-tuple demultiplexing is exactly why. The other ten cells
//! complete.

use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{classify, CellClass, Combination, InMode, OutMode, PolicyConfig};
use netsim::SimDuration;
use transport::apps::{KeystrokeSession, TcpEchoServer};

use crate::forced::ForcedChDelivery;
use crate::util::Table;

/// Outcome of one cell's conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellResult {
    /// The (incoming, outgoing) cell this result belongs to.
    pub combo: Combination,
    /// All keystrokes echoed, no transport error.
    pub works: bool,
    /// Keystrokes that made the round trip.
    pub keystrokes_echoed: u64,
    /// What the paper's figure says about this cell.
    pub paper_class: CellClass,
}

/// Run one cell in a permissive network.
pub fn run_cell(incoming: InMode, outgoing: OutMode) -> CellResult {
    run_cell_in_env(incoming, outgoing, false)
}

/// Run one cell, optionally behind §3.1 egress source-address filters at
/// every visited-network boundary.
pub fn run_cell_in_env(incoming: InMode, outgoing: OutMode, filtered: bool) -> CellResult {
    let combo = Combination::new(incoming, outgoing);
    let mut s = build(ScenarioConfig {
        // Decap-capable so Out-DE is receivable; the forced hook replaces
        // any awareness logic.
        ch_kind: ChKind::DecapCapable,
        // Row C requires the correspondent on the mobile's segment.
        ch_on_visited: incoming == InMode::DH,
        visited_egress_filter: filtered,
        mh_policy: PolicyConfig::fixed(outgoing).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    assert!(s.mh_registered());

    // Force the correspondent's In-mode.
    ForcedChDelivery::install(
        &mut s.world,
        s.ch,
        ip(addrs::MH_HOME),
        ip(addrs::COA_A),
        ip(addrs::HA),
        incoming,
    );

    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    // The column's Out-DT means the application binds to the care-of
    // address (§7.1.1); the other columns use the home address and the
    // fixed policy decides the delivery method.
    let bind = (outgoing == OutMode::DT).then(|| ip(addrs::COA_A));
    let mut sess = KeystrokeSession::new((ch_addr, 23), SimDuration::from_millis(200), 5);
    sess.bind_addr = bind;
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(sess));
    s.world.poll_soon(mh);

    // Long enough for broken cells to exhaust TCP's retries.
    s.world.run_for(SimDuration::from_secs(240));

    crate::report::record_world(&format!("cell/{combo}/filtered={filtered}"), &s.world);
    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    CellResult {
        combo,
        works: sess.broken.is_none() && sess.all_echoed(),
        keystrokes_echoed: sess.echoed,
        paper_class: classify(combo),
    }
}

/// All sixteen measured cells plus the rendered grid.
pub struct GridResult {
    /// Row-major cell results, as in the figure.
    pub cells: Vec<CellResult>,
    /// The rendered grid.
    pub table: Table,
}

/// Run all sixteen cells and lay them out as in the figure.
pub fn run() -> GridResult {
    let mut cells = Vec::new();
    for incoming in InMode::ALL {
        for outgoing in OutMode::ALL {
            cells.push(run_cell(incoming, outgoing));
        }
    }
    let mut table = Table::new(
        "Figure 10 — the 4x4 grid, measured (cell = empirical outcome / paper classification)",
        &[
            "incoming \\ outgoing",
            "Out-IE",
            "Out-DE",
            "Out-DH",
            "Out-DT",
        ],
    );
    for (r, incoming) in InMode::ALL.iter().enumerate() {
        let mut row = vec![incoming.to_string()];
        for c in 0..4 {
            let cell = &cells[r * 4 + c];
            let emp = if cell.works { "works" } else { "BREAKS" };
            let paper = match cell.paper_class {
                CellClass::Useful => "useful",
                CellClass::ValidButUnused => "valid-unused",
                CellClass::Broken => "broken",
            };
            row.push(format!("{emp}/{paper}"));
        }
        table.row(&row);
    }
    let agree = cells.iter().all(|c| c.works == c.paper_class.works());
    table.note(format!(
        "empirical outcome matches the paper's shading in {}/16 cells{}",
        cells
            .iter()
            .filter(|c| c.works == c.paper_class.works())
            .count(),
        if agree { " — full agreement" } else { "" }
    ));
    GridResult { cells, table }
}

/// The grid re-measured behind egress source-address filters — the
/// environment-dependence the abstract leads with: "the permissiveness of
/// the networks over which the packets travel" changes which cells are
/// usable. The Out-DH column's cells carry the annotation "requires there
/// to be no security-conscious routers on the path" in the paper; this
/// table shows exactly those cells (and only those) dying, except the
/// same-segment row, whose path contains no routers at all.
pub fn run_filtered() -> GridResult {
    let mut cells = Vec::new();
    for incoming in InMode::ALL {
        for outgoing in OutMode::ALL {
            cells.push(run_cell_in_env(incoming, outgoing, true));
        }
    }
    let mut table = Table::new(
        "Figure 10 under §3.1 egress filters — the Out-DH column needs a permissive path",
        &[
            "incoming \\ outgoing",
            "Out-IE",
            "Out-DE",
            "Out-DH",
            "Out-DT",
        ],
    );
    for (r, incoming) in InMode::ALL.iter().enumerate() {
        let mut row = vec![incoming.to_string()];
        for c in 0..4 {
            let cell = &cells[r * 4 + c];
            row.push(if cell.works { "works" } else { "BREAKS" }.to_string());
        }
        table.row(&row);
    }
    table.note(
        "vs the permissive grid: only In-IE/Out-DH and In-DE/Out-DH changed to BREAKS — \
         the same-segment In-DH/Out-DH cell still works because its path crosses no routers (§6.3)",
    );
    GridResult { cells, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_cells_behave_as_the_paper_says() {
        // Most conservative cell: In-IE/Out-IE works.
        let c = run_cell(InMode::IE, OutMode::IE);
        assert!(c.works, "{:?}", c);
        // No-Mobile-IP corner: In-DT/Out-DT works.
        let c = run_cell(InMode::DT, OutMode::DT);
        assert!(c.works, "{:?}", c);
        // Mixing temporary and permanent endpoints breaks (§6.5).
        let c = run_cell(InMode::DT, OutMode::IE);
        assert!(!c.works, "{:?}", c);
        let c = run_cell(InMode::IE, OutMode::DT);
        assert!(!c.works, "{:?}", c);
    }

    #[test]
    fn same_segment_row_works_for_home_address_columns() {
        let c = run_cell(InMode::DH, OutMode::DH);
        assert!(c.works, "{:?}", c);
        let c = run_cell(InMode::DH, OutMode::IE);
        assert!(c.works, "valid-but-unused still WORKS: {:?}", c);
    }

    #[test]
    fn row_b_direct_encapsulation_works() {
        let c = run_cell(InMode::DE, OutMode::DE);
        assert!(c.works, "{:?}", c);
        let c = run_cell(InMode::DE, OutMode::DH);
        assert!(c.works, "{:?}", c);
        let c = run_cell(InMode::DE, OutMode::DT);
        assert!(!c.works, "{:?}", c);
    }

    #[test]
    fn filters_kill_out_dh_cells_except_on_link() {
        // "Requires there to be no security-conscious routers on the path"
        // (Figure 10's annotation on the Out-DH column, rows A and B).
        let c = run_cell_in_env(InMode::IE, OutMode::DH, true);
        assert!(!c.works, "{:?}", c);
        let c = run_cell_in_env(InMode::DE, OutMode::DH, true);
        assert!(!c.works, "{:?}", c);
        // Same segment: no routers on the path, so no filters either.
        let c = run_cell_in_env(InMode::DH, OutMode::DH, true);
        assert!(c.works, "{:?}", c);
        // Encapsulated and care-of-sourced columns are unaffected.
        let c = run_cell_in_env(InMode::IE, OutMode::IE, true);
        assert!(c.works, "{:?}", c);
        let c = run_cell_in_env(InMode::DE, OutMode::DE, true);
        assert!(c.works, "{:?}", c);
        let c = run_cell_in_env(InMode::DT, OutMode::DT, true);
        assert!(c.works, "{:?}", c);
    }
}
