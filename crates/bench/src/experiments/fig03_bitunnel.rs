//! E3 / Figure 3 — bi-directional tunneling.
//!
//! With both boundary filters active, Out-DH is dead (Figure 2/E2), but
//! reverse-tunnelling everything through the home agent restores
//! deliverability at the price of path stretch and encapsulation bytes.
//! The table compares Out-IE under filters against the Out-DH path that
//! would have been taken in a permissive network.

use mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mip_core::{OutMode, PolicyConfig};
use netsim::wire::icmp::IcmpMessage;
use netsim::wire::ipv4::IpProtocol;
use netsim::SimDuration;

use crate::util::{ms, Table};

struct Leg {
    delivered: bool,
    hops: usize,
    latency_us: u64,
    bytes: usize,
}

fn measure(mode: OutMode, filtered: bool) -> Leg {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        home_ingress_filter: filtered,
        visited_egress_filter: filtered,
        mh_policy: PolicyConfig::fixed(mode).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let server_addr = ip(addrs::SERVER);
    let home = ip(addrs::MH_HOME);
    s.world.trace.clear();
    let mh = s.mh;
    s.world
        .host_do(mh, |h, ctx| h.send_ping(ctx, home, server_addr, 1));
    s.world.run_for(SimDuration::from_secs(2));
    let pred = |p: &netsim::trace::PacketSummary| {
        let (lsrc, ldst) = p.logical_endpoints();
        lsrc == home && ldst == server_addr
    };
    let delivered = s
        .world
        .host(s.server)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoRequest { .. }));
    crate::report::record_world(&format!("leg/{mode:?}/filtered={filtered}"), &s.world);
    Leg {
        delivered,
        hops: s.world.trace.hops(pred),
        latency_us: s
            .world
            .trace
            .first_delivery_latency(pred)
            .map(|d| d.as_micros())
            .unwrap_or(0),
        bytes: s.world.trace.bytes_on_wire(pred),
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let dh_open = measure(OutMode::DH, false);
    let dh_filtered = measure(OutMode::DH, true);
    let ie_filtered = measure(OutMode::IE, true);

    let mut t = Table::new(
        "Figure 3 — bi-directional tunneling restores deliverability under filters",
        &[
            "configuration",
            "delivered",
            "wire hops",
            "one-way ms",
            "wire bytes",
        ],
    );
    let fmt = |name: &str, l: &Leg| {
        [
            name.to_string(),
            if l.delivered { "yes" } else { "NO" }.to_string(),
            l.hops.to_string(),
            ms(l.latency_us),
            l.bytes.to_string(),
        ]
    };
    t.row(&fmt("Out-DH, permissive network (reference)", &dh_open));
    t.row(&fmt("Out-DH, filtered boundaries (Figure 2)", &dh_filtered));
    t.row(&fmt("Out-IE, filtered boundaries (Figure 3)", &ie_filtered));
    t.note(
        "Out-IE pays extra hops and +20 B/packet but 'meets the deliverability requirement' (§3.1)",
    );
    let _ = IpProtocol::IpInIp;
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunneling_restores_delivery_at_a_cost() {
        let open = measure(OutMode::DH, false);
        let broken = measure(OutMode::DH, true);
        let tunneled = measure(OutMode::IE, true);
        assert!(open.delivered);
        assert!(!broken.delivered, "Figure 2 failure reproduced");
        assert!(tunneled.delivered, "Figure 3 fix works");
        assert!(
            tunneled.hops >= open.hops,
            "indirect path is no shorter: {} vs {}",
            tunneled.hops,
            open.hops
        );
        assert!(
            tunneled.bytes > open.bytes,
            "encapsulation overhead shows up on the wire"
        );
        assert!(tunneled.latency_us >= open.latency_us);
    }
}
