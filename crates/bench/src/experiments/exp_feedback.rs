//! E13 / §7.1.2 — the transmission-feedback signal (the paper's future
//! work, implemented).
//!
//! "All IP clients (e.g. TCP) could indicate, for every IP packet they send
//! and receive, whether the packet is an 'original' packet or a
//! retransmission. If the IP layer sees repeated retransmissions to a
//! particular address, then this suggests that the currently selected
//! delivery method may not be working. … We have not yet implemented
//! this."
//!
//! Here it *is* implemented, and this experiment is its ablation: an
//! optimistic mobile behind an egress filter (so Out-DH silently fails)
//! runs a keystroke session with the feedback loop enabled vs disabled.

use mip_core::scenario::{build, ChKind, ScenarioConfig};
use mip_core::{MobileHost, OutMode, PolicyConfig};
use netsim::SimDuration;
use transport::apps::{KeystrokeSession, TcpEchoServer};

use crate::util::Table;

/// One run of the feedback ablation.
pub struct FeedbackOutcome {
    /// The session delivered every keystroke.
    pub completed: bool,
    /// Time until the session finished (or died), ms.
    pub completion_ms: u64,
    /// Method-cache demotions driven by §7.1.2 feedback.
    pub demotions: u64,
    /// The delivery method the policy ended on.
    pub final_mode: OutMode,
}

/// Run the filtered-network session with the feedback loop on or off.
pub fn session(feedback_enabled: bool) -> FeedbackOutcome {
    let mut policy = PolicyConfig::optimistic().without_dt_ports();
    policy.feedback_demotion = feedback_enabled;
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        visited_egress_filter: true,
        mh_policy: policy,
        ..ScenarioConfig::default()
    });
    crate::report::observe_world(&mut s.world);
    s.roam_to_a();
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);
    let mh = s.mh;
    let start = s.world.now();
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(200),
        10,
    )));
    s.world.poll_soon(mh);

    let mut completion_ms = 0;
    for _ in 0..300 {
        s.world.run_for(SimDuration::from_secs(1));
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        if sess.all_echoed() || sess.broken.is_some() {
            completion_ms = s.world.now().since(start).as_millis();
            break;
        }
    }
    let completed = {
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(app)
            .unwrap();
        sess.all_echoed() && sess.broken.is_none()
    };
    crate::report::record_world(&format!("session/feedback={feedback_enabled}"), &s.world);
    if let Some(h) = s.world.host_mut(mh).hook_as::<MobileHost>() {
        crate::report::record_value(
            &format!("session/feedback={feedback_enabled}/audit"),
            h.audit(),
        );
    }
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    FeedbackOutcome {
        completed,
        completion_ms,
        demotions: hook.stats.demotions,
        final_mode: hook.mode_for(ch_addr),
    }
}

/// Run the experiment at full scale and render the paper-style table.
pub fn run() -> Table {
    let with = session(true);
    let without = session(false);
    let mut t = Table::new(
        "E13 §7.1.2 — retransmission feedback ablation (optimistic MH behind an egress filter)",
        &[
            "feedback",
            "session completed",
            "time ms",
            "demotions",
            "final mode",
        ],
    );
    t.row(&[
        "enabled".to_string(),
        with.completed.to_string(),
        with.completion_ms.to_string(),
        with.demotions.to_string(),
        with.final_mode.to_string(),
    ]);
    t.row(&[
        "disabled (the paper's status quo)".to_string(),
        without.completed.to_string(),
        without.completion_ms.to_string(),
        without.demotions.to_string(),
        without.final_mode.to_string(),
    ]);
    t.note("without the signal the stack keeps using the silently-failing method until TCP gives up; with it, a few retransmissions trigger demotion and the conversation recovers");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_rescues_the_conversation() {
        let with = session(true);
        assert!(with.completed);
        assert!(with.demotions >= 1);
        assert_eq!(with.final_mode, OutMode::DE);
    }

    #[test]
    fn without_feedback_the_conversation_dies() {
        let without = session(false);
        assert!(!without.completed, "stuck on Out-DH until TCP timeout");
        assert_eq!(without.demotions, 0);
        assert_eq!(without.final_mode, OutMode::DH);
    }

    #[test]
    fn recovery_is_much_faster_than_timeout() {
        let with = session(true);
        let without = session(false);
        assert!(
            with.completion_ms * 5 < without.completion_ms,
            "recovery {} ms vs stall-until-death {} ms",
            with.completion_ms,
            without.completion_ms
        );
    }
}
