//! One module per paper artifact (DESIGN.md §5).

pub mod exp_decap_risk;
pub mod exp_encap;
pub mod exp_feedback;
pub mod exp_foreign_agent;
pub mod exp_handoff;
pub mod exp_http;
pub mod exp_lsr;
pub mod exp_multicast;
pub mod exp_probing;
pub mod fig01_basic;
pub mod fig02_filtering;
pub mod fig03_bitunnel;
pub mod fig04_triangle;
pub mod fig05_smart_ch;
pub mod fig06_formats;
pub mod fig10_grid;

use crate::Table;

/// Run every experiment at full scale and collect the output tables, in
/// paper order. Used by `src/bin/all_experiments.rs` to regenerate
/// `EXPERIMENTS.md`'s measured columns.
///
/// Experiments are independent, deterministic simulations, so they run in
/// parallel (one crossbeam scope thread each) and are re-assembled in
/// paper order afterwards.
pub fn run_all() -> Vec<Table> {
    /// One experiment: produces its table(s) when called.
    type Job = fn() -> Vec<Table>;
    let slots: parking_lot::Mutex<Vec<Option<Vec<Table>>>> =
        parking_lot::Mutex::new(vec![None; 16]);
    let jobs: Vec<(usize, Job)> = vec![
        (0, || vec![fig01_basic::run()]),
        (1, fig02_filtering::run as Job),
        (2, || vec![fig03_bitunnel::run()]),
        (3, || vec![fig04_triangle::run(&[5, 10, 25, 50, 100, 200])]),
        (4, fig05_smart_ch::run as Job),
        (5, fig06_formats::run as Job),
        (6, || {
            vec![fig10_grid::run().table, fig10_grid::run_filtered().table]
        }),
        (7, || vec![exp_probing::run()]),
        (8, || vec![exp_http::run()]),
        (9, || vec![exp_handoff::run()]),
        (10, || vec![exp_multicast::run()]),
        (11, || vec![exp_feedback::run()]),
        (12, || vec![exp_foreign_agent::run()]),
        (13, || vec![exp_encap::run()]),
        (14, || vec![exp_decap_risk::run()]),
        (15, || vec![exp_lsr::run()]),
    ];
    crossbeam::scope(|scope| {
        for (ix, job) in jobs {
            let slots = &slots;
            scope.spawn(move |_| {
                let tables = job();
                slots.lock()[ix] = Some(tables);
            });
        }
    })
    .expect("experiment thread panicked");
    slots
        .into_inner()
        .into_iter()
        .flat_map(|t| t.expect("every slot filled"))
        .collect()
}
