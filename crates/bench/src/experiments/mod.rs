//! One module per paper artifact (DESIGN.md §5).

pub mod exp_decap_risk;
pub mod exp_encap;
pub mod exp_feedback;
pub mod exp_foreign_agent;
pub mod exp_handoff;
pub mod exp_http;
pub mod exp_lsr;
pub mod exp_multicast;
pub mod exp_probing;
pub mod fig01_basic;
pub mod fig02_filtering;
pub mod fig03_bitunnel;
pub mod fig04_triangle;
pub mod fig05_smart_ch;
pub mod fig06_formats;
pub mod fig10_grid;

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::Table;

/// Fan `jobs` out over at most `threads` worker threads and return the
/// results **in job order**, regardless of completion order. Workers pull
/// the next unclaimed job index from a shared counter (work stealing by
/// index), so long and short jobs mix freely. `threads == 1` degenerates
/// to a strictly serial in-order run — the `--serial` escape hatch — and
/// produces identical results by construction, since job order alone
/// determines the output vector.
pub fn pool_map<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                if ix >= n {
                    break;
                }
                let job = jobs[ix].lock().take().expect("each job claimed once");
                let out = job();
                slots.lock()[ix] = Some(out);
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_inner()
        .into_iter()
        .map(|t| t.expect("every slot filled"))
        .collect()
}

/// Worker-thread count for [`run_all`]: the `NETSIM_BENCH_THREADS`
/// environment variable when set to a positive integer, else the number of
/// available cores (else 4 when that cannot be determined).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("NETSIM_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Run every experiment at full scale and collect the output tables, in
/// paper order. Used by `src/bin/all_experiments.rs` to regenerate
/// `EXPERIMENTS.md`'s measured columns.
///
/// Experiments are independent, deterministic simulations (each builds its
/// own seeded `World`), so they fan out over a [`pool_map`] thread pool
/// and are re-assembled in paper order afterwards — the output is
/// byte-identical to a serial run.
pub fn run_all() -> Vec<Table> {
    run_all_with(default_threads())
}

/// [`run_all`] with an explicit worker-thread count; `1` runs strictly
/// serially in paper order.
pub fn run_all_with(threads: usize) -> Vec<Table> {
    type Job = Box<dyn FnOnce() -> Vec<Table> + Send>;
    let jobs: Vec<Job> = vec![
        Box::new(|| vec![fig01_basic::run()]),
        Box::new(fig02_filtering::run),
        Box::new(|| vec![fig03_bitunnel::run()]),
        Box::new(|| vec![fig04_triangle::run(&[5, 10, 25, 50, 100, 200])]),
        Box::new(fig05_smart_ch::run),
        Box::new(fig06_formats::run),
        Box::new(|| vec![fig10_grid::run().table, fig10_grid::run_filtered().table]),
        Box::new(|| vec![exp_probing::run()]),
        Box::new(|| vec![exp_http::run()]),
        Box::new(|| vec![exp_handoff::run()]),
        Box::new(|| vec![exp_multicast::run()]),
        Box::new(|| vec![exp_feedback::run()]),
        Box::new(|| vec![exp_foreign_agent::run()]),
        Box::new(|| vec![exp_encap::run()]),
        Box::new(|| vec![exp_decap_risk::run()]),
        Box::new(|| vec![exp_lsr::run()]),
    ];
    pool_map(jobs, threads).into_iter().flatten().collect()
}
