//! One module per paper artifact (DESIGN.md §5).

pub mod exp_decap_risk;
pub mod exp_encap;
pub mod exp_feedback;
pub mod exp_foreign_agent;
pub mod exp_handoff;
pub mod exp_http;
pub mod exp_lsr;
pub mod exp_multicast;
pub mod exp_probing;
/// Not part of [`run_all`]: scale runs are sized by flags and wall-clock
/// sensitive, so `all_experiments` output stays byte-stable without them.
pub mod exp_scale;
pub mod fig01_basic;
pub mod fig02_filtering;
pub mod fig03_bitunnel;
pub mod fig04_triangle;
pub mod fig05_smart_ch;
pub mod fig06_formats;
pub mod fig10_grid;

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::Table;

/// A pool task: one "runner" participating in a [`pool_map`] batch.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

// ---- runner telemetry --------------------------------------------------------

/// What one runner (pool worker or the calling thread) did during a
/// [`pool_map`] batch, recorded while the flight recorder is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Thread name plus claim-order index, e.g. `bench-pool#1`.
    pub label: String,
    /// Jobs this runner claimed and ran.
    pub jobs: u64,
    /// Wall nanoseconds spent inside jobs; the rest of the batch wall
    /// time was idle (waiting on the claim counter or the batch tail).
    pub busy_ns: u64,
}

serde::impl_serialize!(WorkerStat {
    label,
    jobs,
    busy_ns,
});

/// Telemetry for one [`pool_map`] batch: per-runner utilization and the
/// job-queue depth over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerBatch {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Runners the batch was asked to use (including the caller).
    pub threads: usize,
    /// Batch wall time, start of fan-out to last result collected.
    pub wall_ns: u64,
    /// One entry per runner that participated, sorted by label.
    pub workers: Vec<WorkerStat>,
    /// `(ns since batch start, unclaimed jobs)` at each claim, capped at
    /// [`DEPTH_CAP`] entries.
    pub queue_depth: Vec<(u64, u64)>,
}

serde::impl_serialize!(RunnerBatch {
    jobs,
    threads,
    wall_ns,
    workers,
    queue_depth,
});

/// Cap on per-batch queue-depth entries, so huge batches stay affordable.
const DEPTH_CAP: usize = 1024;

/// Batches recorded since the last [`take_runner_telemetry`].
static RUNNER_TELEMETRY: Mutex<Vec<RunnerBatch>> = Mutex::new(Vec::new());

/// Drains and returns every [`RunnerBatch`] recorded so far (only batches
/// run while the flight recorder was enabled are recorded).
pub fn take_runner_telemetry() -> Vec<RunnerBatch> {
    std::mem::take(&mut *RUNNER_TELEMETRY.lock().unwrap_or_else(|e| e.into_inner()))
}

/// A non-draining snapshot of recorded batches as a run-report value;
/// `None` when nothing was recorded.
pub fn runner_telemetry_value() -> Option<serde::Value> {
    let batches = RUNNER_TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    if batches.is_empty() {
        None
    } else {
        Some(serde::Serialize::to_value(&*batches))
    }
}

/// Shared per-batch instrumentation: claim-time queue depths and
/// per-runner busy tallies, committed as one [`RunnerBatch`].
struct BatchMonitor {
    start: Instant,
    next_runner: AtomicUsize,
    workers: Mutex<Vec<WorkerStat>>,
    depth: Mutex<Vec<(u64, u64)>>,
    /// Runners that called [`BatchMonitor::finish_runner`]; commit waits
    /// for all of them so late, zero-job runners still land in their own
    /// batch instead of leaking into the next one.
    finished: Mutex<usize>,
    all_finished: Condvar,
}

impl BatchMonitor {
    fn new() -> BatchMonitor {
        BatchMonitor {
            start: Instant::now(),
            next_runner: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
            depth: Mutex::new(Vec::new()),
            finished: Mutex::new(0),
            all_finished: Condvar::new(),
        }
    }

    fn note_depth(&self, remaining: usize) {
        let mut d = self.depth.lock().unwrap();
        if d.len() < DEPTH_CAP {
            d.push((self.start.elapsed().as_nanos() as u64, remaining as u64));
        }
    }

    fn finish_runner(&self, jobs: u64, busy_ns: u64) {
        let ix = self.next_runner.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current();
        let name = name.name().unwrap_or("worker");
        self.workers.lock().unwrap().push(WorkerStat {
            label: format!("{name}#{ix}"),
            jobs,
            busy_ns,
        });
        let mut f = self.finished.lock().unwrap();
        *f += 1;
        self.all_finished.notify_all();
    }

    fn commit(&self, jobs: usize, threads: usize) {
        let mut f = self.finished.lock().unwrap();
        while *f < threads {
            f = self.all_finished.wait(f).unwrap();
        }
        drop(f);
        let mut workers = std::mem::take(&mut *self.workers.lock().unwrap());
        workers.sort_by(|a, b| a.label.cmp(&b.label));
        let queue_depth = std::mem::take(&mut *self.depth.lock().unwrap());
        RUNNER_TELEMETRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(RunnerBatch {
                jobs,
                threads,
                wall_ns: self.start.elapsed().as_nanos() as u64,
                workers,
                queue_depth,
            });
    }
}

/// The process-wide worker pool backing [`pool_map`]. Threads are spawned
/// on demand, detached, and then parked on the condvar between batches —
/// a `pool_map` call hands out tasks without paying thread-creation cost,
/// which is what made the old per-invocation `scope`+spawn slower than
/// running the jobs serially.
struct WorkerPool {
    queue: Mutex<VecDeque<PoolTask>>,
    available: Condvar,
    /// Threads spawned so far (they never exit).
    workers: AtomicUsize,
}

impl WorkerPool {
    fn get() -> &'static Arc<WorkerPool> {
        static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        POOL.get_or_init(|| {
            Arc::new(WorkerPool {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                workers: AtomicUsize::new(0),
            })
        })
    }

    /// Grow the pool to at least `want` resident threads.
    fn ensure_workers(self: &Arc<Self>, want: usize) {
        loop {
            let have = self.workers.load(Ordering::Acquire);
            if have >= want {
                return;
            }
            if self
                .workers
                .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let pool = Arc::clone(self);
                std::thread::Builder::new()
                    .name("bench-pool".into())
                    .spawn(move || loop {
                        let task = {
                            let mut q = pool.queue.lock().unwrap();
                            loop {
                                if let Some(t) = q.pop_front() {
                                    break t;
                                }
                                q = pool.available.wait(q).unwrap();
                            }
                        };
                        task();
                    })
                    .expect("spawning pool worker");
            }
        }
    }

    fn submit(&self, task: PoolTask) {
        self.queue.lock().unwrap().push_back(task);
        self.available.notify_one();
    }
}

/// One `pool_map` batch: jobs claimed by index from a shared counter,
/// results parked in order-preserving slots, completion signalled to the
/// waiting caller.
struct Batch<T, F> {
    jobs: Vec<Mutex<Option<F>>>,
    slots: Mutex<Vec<Option<std::thread::Result<T>>>>,
    next: AtomicUsize,
    completed: Mutex<usize>,
    all_done: Condvar,
    /// Present only while the flight recorder is enabled.
    monitor: Option<Arc<BatchMonitor>>,
}

impl<T, F: FnOnce() -> T> Batch<T, F> {
    /// Pull job indexes until none remain. Run by pool workers *and* the
    /// calling thread, so a batch completes even if every pool worker is
    /// busy elsewhere.
    fn run_jobs(&self) {
        let n = self.jobs.len();
        let mut my_jobs = 0u64;
        let mut busy_ns = 0u64;
        loop {
            let ix = self.next.fetch_add(1, Ordering::Relaxed);
            if ix >= n {
                break;
            }
            if let Some(m) = &self.monitor {
                m.note_depth(n - ix);
            }
            let job = self.jobs[ix]
                .lock()
                .unwrap()
                .take()
                .expect("each job claimed once");
            let t0 = self.monitor.as_ref().map(|_| Instant::now());
            let out = catch_unwind(AssertUnwindSafe(job));
            if let Some(t0) = t0 {
                busy_ns += t0.elapsed().as_nanos() as u64;
                my_jobs += 1;
            }
            self.slots.lock().unwrap()[ix] = Some(out);
            let mut done = self.completed.lock().unwrap();
            *done += 1;
            if *done == n {
                self.all_done.notify_all();
            }
        }
        if let Some(m) = &self.monitor {
            // Record even zero-job runners: a runner that claimed nothing
            // is exactly what utilization data is supposed to expose.
            m.finish_runner(my_jobs, busy_ns);
            netsim::profile::flush_thread();
        }
    }
}

/// Fan `jobs` out over at most `threads` worker threads and return the
/// results **in job order**, regardless of completion order. Runners pull
/// the next unclaimed job index from a shared counter (work stealing by
/// index), so long and short jobs mix freely. `threads == 1` degenerates
/// to a strictly serial in-order run — the `--serial` escape hatch — and
/// produces identical results by construction, since job order alone
/// determines the output vector.
///
/// Worker threads come from a persistent process-wide pool (grown on
/// demand, parked between calls); the calling thread itself acts as one of
/// the `threads` runners. A panicking job is resurfaced on the caller
/// after the rest of the batch finishes.
///
/// `threads` is normally capped at the machine's available parallelism:
/// the jobs are CPU-bound simulations, so extra runners past that point
/// cannot overlap any work and only add context switches. An **explicit**
/// `NETSIM_BENCH_THREADS` asking for exactly this width overrides the cap
/// (with a warning, once) — oversubscription is sometimes what you want,
/// e.g. to exercise pool handoff on a small box or to overlap jobs that
/// block on I/O under profiling.
pub fn pool_map<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let cap = std::thread::available_parallelism().map_or(usize::MAX, |n| n.get());
    if threads > cap {
        if explicit_env_threads() == Some(threads) {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "netsim-bench: NETSIM_BENCH_THREADS={threads} exceeds available \
                     parallelism ({cap}); oversubscribing as requested"
                );
            });
            return pool_map_exact(jobs, threads);
        }
        return pool_map_exact(jobs, cap);
    }
    pool_map_exact(jobs, threads)
}

/// The worker-thread count the user explicitly asked for via
/// `NETSIM_BENCH_THREADS`, if the variable is set to a positive integer.
fn explicit_env_threads() -> Option<usize> {
    let v = std::env::var("NETSIM_BENCH_THREADS").ok()?;
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// [`pool_map`] without the hardware-parallelism cap. Exposed so tests can
/// exercise the pool handoff deterministically even on a single-core host;
/// everything else should call [`pool_map`].
#[doc(hidden)]
pub fn pool_map_exact<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    let monitor = netsim::profile::enabled().then(|| Arc::new(BatchMonitor::new()));
    if threads <= 1 {
        let Some(m) = monitor else {
            return jobs.into_iter().map(|j| j()).collect();
        };
        let mut out = Vec::with_capacity(n);
        let mut busy_ns = 0u64;
        for (ix, j) in jobs.into_iter().enumerate() {
            m.note_depth(n - ix);
            let t0 = Instant::now();
            out.push(j());
            busy_ns += t0.elapsed().as_nanos() as u64;
        }
        m.finish_runner(n as u64, busy_ns);
        m.commit(n, 1);
        return out;
    }
    let batch = Arc::new(Batch {
        jobs: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
        slots: Mutex::new((0..n).map(|_| None).collect()),
        next: AtomicUsize::new(0),
        completed: Mutex::new(0),
        all_done: Condvar::new(),
        monitor,
    });
    let pool = WorkerPool::get();
    pool.ensure_workers(threads - 1);
    for _ in 0..threads - 1 {
        let b = Arc::clone(&batch);
        pool.submit(Box::new(move || b.run_jobs()));
    }
    batch.run_jobs();
    let mut done = batch.completed.lock().unwrap();
    while *done < n {
        done = batch.all_done.wait(done).unwrap();
    }
    drop(done);
    if let Some(m) = &batch.monitor {
        m.commit(n, threads);
    }
    let slots = std::mem::take(&mut *batch.slots.lock().unwrap());
    slots
        .into_iter()
        .map(|t| match t.expect("every slot filled") {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        })
        .collect()
}

/// Worker-thread count for [`run_all`]: the `NETSIM_BENCH_THREADS`
/// environment variable when set to a positive integer, else the number of
/// available cores (else 4 when that cannot be determined).
pub fn default_threads() -> usize {
    explicit_env_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
}

/// Run every experiment at full scale and collect the output tables, in
/// paper order. Used by `src/bin/all_experiments.rs` to regenerate
/// `EXPERIMENTS.md`'s measured columns.
///
/// Experiments are independent, deterministic simulations (each builds its
/// own seeded `World`), so they fan out over a [`pool_map`] thread pool
/// and are re-assembled in paper order afterwards — the output is
/// byte-identical to a serial run.
pub fn run_all() -> Vec<Table> {
    run_all_with(default_threads())
}

/// [`run_all`] with an explicit worker-thread count; `1` runs strictly
/// serially in paper order.
pub fn run_all_with(threads: usize) -> Vec<Table> {
    type Job = Box<dyn FnOnce() -> Vec<Table> + Send>;
    /// Names each experiment's profiling scope so `profile --hot` can
    /// attribute wall time to individual experiments.
    fn prof(name: &'static str, f: impl FnOnce() -> Vec<Table> + Send + 'static) -> Job {
        Box::new(move || {
            let _prof = netsim::profile::scope(name);
            f()
        })
    }
    let jobs: Vec<Job> = vec![
        prof("exp:fig01_basic", || vec![fig01_basic::run()]),
        prof("exp:fig02_filtering", fig02_filtering::run),
        prof("exp:fig03_bitunnel", || vec![fig03_bitunnel::run()]),
        prof("exp:fig04_triangle", || {
            vec![fig04_triangle::run(&[5, 10, 25, 50, 100, 200])]
        }),
        prof("exp:fig05_smart_ch", fig05_smart_ch::run),
        prof("exp:fig06_formats", fig06_formats::run),
        prof("exp:fig10_grid", || {
            vec![fig10_grid::run().table, fig10_grid::run_filtered().table]
        }),
        prof("exp:probing", || vec![exp_probing::run()]),
        prof("exp:http", || vec![exp_http::run()]),
        prof("exp:handoff", || vec![exp_handoff::run()]),
        prof("exp:multicast", || vec![exp_multicast::run()]),
        prof("exp:feedback", || vec![exp_feedback::run()]),
        prof("exp:foreign_agent", || vec![exp_foreign_agent::run()]),
        prof("exp:encap", || vec![exp_encap::run()]),
        prof("exp:decap_risk", || vec![exp_decap_risk::run()]),
        prof("exp:lsr", || vec![exp_lsr::run()]),
    ];
    pool_map(jobs, threads).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // These use `pool_map_exact` so the worker handoff runs even when the
    // host reports a single core (where `pool_map` would cap to serial).

    #[test]
    fn pool_workers_preserve_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * 7) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = pool_map_exact(jobs, 4);
        assert_eq!(got, (0..32).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reuses_resident_workers_across_batches() {
        let before = WorkerPool::get().workers.load(Ordering::Acquire);
        for round in 0..4u64 {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
                .map(|i| Box::new(move || round * 100 + i) as Box<dyn FnOnce() -> u64 + Send>)
                .collect();
            let got = pool_map_exact(jobs, 4);
            assert_eq!(got, (0..8).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
        let after = WorkerPool::get().workers.load(Ordering::Acquire);
        // Four batches wanting three helpers each never grow past three
        // resident threads (other tests in this binary may add their own).
        assert!(after >= 3, "pool spawned {after} workers");
        assert!(
            after <= before + 3,
            "pool grew past its high-water mark: {before} -> {after}"
        );
    }

    #[test]
    fn pool_resurfaces_job_panics_on_the_caller() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 5, "job five exploded");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool_map_exact(jobs, 4)))
            .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic>".into());
        assert!(msg.contains("job five exploded"), "got: {msg}");
    }

    #[test]
    fn pool_map_honors_explicit_env_width_above_core_count() {
        // `set_var` is process-global; this is the only test touching the
        // variable, and it restores the prior value before returning.
        let prior = std::env::var("NETSIM_BENCH_THREADS").ok();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let want = cores + 3;
        std::env::set_var("NETSIM_BENCH_THREADS", want.to_string());
        assert_eq!(explicit_env_threads(), Some(want));
        assert_eq!(default_threads(), want);
        // The oversubscribed width must actually run (and in order).
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..want * 2)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = pool_map(jobs, want);
        assert_eq!(got, (0..want * 2).map(|i| i + 1).collect::<Vec<_>>());
        match prior {
            Some(v) => std::env::set_var("NETSIM_BENCH_THREADS", v),
            None => std::env::remove_var("NETSIM_BENCH_THREADS"),
        }
    }
}
