//! Structured run reports: machine-readable JSON alongside every
//! experiment's human tables.
//!
//! Each `src/bin` wrapper calls [`emit`] after printing its tables; the
//! report lands in `target/run-reports/<name>.json` (override the
//! directory with `RUN_REPORT_DIR`). The schema is documented in
//! `EXPERIMENTS.md` ("Observability").
//!
//! While an experiment runs it may attach labelled simulator snapshots —
//! [`record_world`] captures a [`World`]'s metrics registry,
//! [`record_value`] attaches any serializable value (an audit trail, a
//! parameter sweep point). The collector is process-global but **disabled
//! by default**: library, test and criterion callers of the experiment
//! functions pay nothing and accumulate nothing. Binaries opt in with
//! [`enable`].

use std::fs;
use std::path::PathBuf;

use netsim::World;
use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::Table;

struct Collector {
    enabled: bool,
    snapshots: Vec<(String, Value)>,
}

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    enabled: false,
    snapshots: Vec::new(),
});

/// Turn snapshot collection on for this process (binaries call this first).
pub fn enable() {
    COLLECTOR.lock().enabled = true;
}

/// Whether collection is on for this process.
pub fn enabled() -> bool {
    COLLECTOR.lock().enabled
}

/// Enable a world's metrics registry — but only when report collection is
/// on, so experiment functions stay zero-cost under tests and criterion.
/// Call right after building a scenario, before running it.
pub fn observe_world(world: &mut World) {
    if enabled() {
        world.enable_metrics();
    }
}

/// Attach a labelled snapshot of `world`'s metrics registry to the next
/// emitted report. No-op unless [`enable`] was called and the world's
/// metrics are enabled.
pub fn record_world(label: &str, world: &World) {
    let mut c = COLLECTOR.lock();
    if !c.enabled || !world.metrics.enabled() {
        return;
    }
    let snap = world.metrics.snapshot(&world.node_names(), world.now());
    c.snapshots.push((label.to_string(), snap));
}

/// Attach any serializable value (audit trails, sweep parameters, …) to
/// the next emitted report. No-op unless [`enable`] was called.
pub fn record_value(label: &str, value: &impl Serialize) {
    let mut c = COLLECTOR.lock();
    if !c.enabled {
        return;
    }
    let v = value.to_value();
    c.snapshots.push((label.to_string(), v));
}

fn report_dir() -> PathBuf {
    match std::env::var_os("RUN_REPORT_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from("target").join("run-reports"),
    }
}

/// Build the report value for `name` from the given tables plus every
/// snapshot recorded since the last emit (which this call drains).
pub fn build(name: &str, tables: &[Table]) -> Value {
    let snapshots = std::mem::take(&mut COLLECTOR.lock().snapshots);
    Value::Object(vec![
        ("name".into(), Value::Str(name.to_string())),
        ("schema".into(), Value::Str("run-report/v1".into())),
        (
            "tables".into(),
            Value::Array(tables.iter().map(|t| t.to_value()).collect()),
        ),
        ("snapshots".into(), Value::Object(snapshots)),
    ])
}

/// Write the JSON run report for `name`, returning its path. Errors are
/// reported to stderr, never fatal: the human tables already printed.
pub fn emit(name: &str, tables: &[Table]) -> Option<PathBuf> {
    let report = build(name, tables);
    let dir = report_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("run-report: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e:?}\"}}"));
    match fs::write(&path, json) {
        Ok(()) => {
            eprintln!("run-report: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("run-report: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_accumulates_nothing() {
        // Default state: not enabled (tests run in one process with the
        // enable-path test, so assert on the report contents instead of
        // global state).
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1"]);
        let v = build("demo", &[t]);
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"name\":\"demo\""));
        assert!(json.contains("\"schema\":\"run-report/v1\""));
        assert!(json.contains("\"tables\":["));
    }

    #[test]
    fn enabled_collector_captures_world_snapshots() {
        enable();
        let mut w = World::new(1);
        w.enable_metrics();
        record_world("before", &w);
        record_value("param", &42u64);
        let v = build("snap-test", &[]);
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"before\":{"), "{json}");
        assert!(json.contains("\"param\":42"), "{json}");
        // Drained: a second build sees an empty snapshot set.
        let v2 = build("snap-test", &[]);
        let json2 = serde_json::to_string(&v2).unwrap();
        assert!(json2.contains("\"snapshots\":{}"), "{json2}");
    }
}
