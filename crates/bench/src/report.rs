//! Structured run reports: machine-readable JSON alongside every
//! experiment's human tables.
//!
//! Each `src/bin` wrapper calls [`emit`] after printing its tables; the
//! report lands in `target/run-reports/<name>.json` (override the
//! directory with `RUN_REPORT_DIR`). The schema is documented in
//! `EXPERIMENTS.md` ("Observability").
//!
//! While an experiment runs it may attach labelled simulator snapshots —
//! [`record_world`] captures a [`World`]'s metrics registry,
//! [`record_value`] attaches any serializable value (an audit trail, a
//! parameter sweep point). The collector is process-global but **disabled
//! by default**: library, test and criterion callers of the experiment
//! functions pay nothing and accumulate nothing. Binaries opt in with
//! [`enable`].

use std::fs;
use std::path::PathBuf;

use netsim::{Lifecycle, TelemetryConfig, World};
use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::Table;

/// Per-snapshot cap on the packet spans a report embeds; drop chains are
/// always kept in full (see [`Lifecycle::report_value`]).
const LIFECYCLE_SPAN_CAP: usize = 512;

struct Collector {
    enabled: bool,
    snapshots: Vec<(String, Value)>,
}

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    enabled: false,
    snapshots: Vec::new(),
});

/// Process-global telemetry configuration, set from CLI flags/environment
/// by [`crate::run_experiments`] before any experiment builds a world.
/// `None` means full-fidelity observation — today's default.
static TELEMETRY: Mutex<Option<TelemetryConfig>> = Mutex::new(None);

/// Install the telemetry configuration every subsequently observed world
/// receives (sampling, sketches, invariant monitors). Binaries call this
/// once, from flags like `--sample-flows` / `NETSIM_SAMPLE`.
pub fn set_telemetry_config(cfg: TelemetryConfig) {
    *TELEMETRY.lock() = Some(cfg);
}

/// The installed telemetry configuration, if any.
pub fn telemetry_config() -> Option<TelemetryConfig> {
    *TELEMETRY.lock()
}

/// Turn snapshot collection on for this process (binaries call this first).
pub fn enable() {
    COLLECTOR.lock().enabled = true;
}

/// Whether collection is on for this process.
pub fn enabled() -> bool {
    COLLECTOR.lock().enabled
}

/// Sim-time interval between flight-recorder gauge samples when profiling
/// is on (10 ms of simulated time), and the sample cap the reservoir
/// doubles the stride at.
const SAMPLE_INTERVAL_US: u64 = 10_000;
const SAMPLE_CAP: usize = 256;

/// Enable a world's metrics registry — but only when report collection is
/// on, so experiment functions stay zero-cost under tests and criterion.
/// Call right after building a scenario, before running it. When the
/// flight recorder is on this also starts the world's gauge sampler.
pub fn observe_world(world: &mut World) {
    if enabled() {
        world.enable_metrics();
        // Invariant monitors ride along with every observed world: they
        // cost one branch and a hash-set op per trace event, and turn
        // conservation bugs into report sections instead of silence.
        world.enable_invariants();
        if let Some(cfg) = telemetry_config() {
            world.apply_telemetry(&cfg);
        }
    }
    if netsim::profile::enabled() {
        world.enable_sampling(netsim::SimDuration(SAMPLE_INTERVAL_US), SAMPLE_CAP);
    }
}

/// Attach a labelled snapshot of `world` to the next emitted report: its
/// metrics registry plus the reconstructed packet-lifecycle spans and flow
/// summaries of its trace (when the trace recorded anything). No-op unless
/// [`enable`] was called and the world's metrics are enabled.
pub fn record_world(label: &str, world: &World) {
    let mut c = COLLECTOR.lock();
    if !c.enabled || !world.metrics.enabled() {
        return;
    }
    let snap = world_snapshot(world);
    c.snapshots.push((label.to_string(), snap));
}

/// The report snapshot for one world, exactly as [`record_world`] embeds
/// it. Pure (no collector involved) so tests can assert on report bytes —
/// in particular that sampled runs are deterministic and that default
/// (unsampled, unmonitored) snapshots carry no extra sections.
pub fn world_snapshot(world: &World) -> Value {
    let mut snap = vec![(
        "metrics".to_string(),
        world.metrics.snapshot(&world.node_names(), world.now()),
    )];
    if !world.trace.events().is_empty() {
        let lc = Lifecycle::reconstruct(&world.trace, &world.node_names());
        snap.push(("lifecycle".into(), lc.report_value(LIFECYCLE_SPAN_CAP)));
    }
    // Flow sampling is opt-in, so this section only appears when a
    // telemetry config asked for it — default reports are untouched.
    if let Some(n) = world.trace.flow_sample_rate() {
        snap.push((
            "sampling".into(),
            Value::Object(vec![
                ("flow_sample_rate".into(), Value::U64(n)),
                (
                    "suppressed_events".into(),
                    Value::U64(world.trace.suppressed_events()),
                ),
                (
                    "promoted_flows".into(),
                    Value::U64(world.trace.promoted_flows() as u64),
                ),
            ]),
        ));
    }
    // The invariant section appears when monitoring found a violation
    // (always worth surfacing) or when telemetry was explicitly
    // configured (the CI smoke job reads the `ok` flag). Clean default
    // runs stay byte-identical to v3 apart from the schema bump.
    if world.invariants.enabled()
        && (telemetry_config().is_some() || world.has_invariant_violations())
    {
        snap.push(("invariants".into(), world.invariant_report()));
    }
    // Flight-recorder extras are wall-clock derived and so nondeterministic;
    // they only appear when profiling was explicitly switched on, keeping
    // default reports byte-identical run to run.
    if netsim::profile::enabled() {
        let mut sched = vec![
            ("stats".into(), world.scheduler_stats().to_value()),
            ("telemetry".into(), world.scheduler_telemetry().to_value()),
        ];
        // Per-shard progress counters, present only when the world actually
        // partitioned: events dispatched, windows joined, horizon stalls,
        // and cross-border message traffic per shard.
        if let Some(stats) = world.shard_stats() {
            sched.push((
                "shards".into(),
                Value::Array(stats.iter().map(|s| s.to_value()).collect()),
            ));
        }
        snap.push(("scheduler".into(), Value::Object(sched)));
        if let Some(samples) = world.samples_value() {
            snap.push(("profile_samples".into(), samples));
        }
    }
    Value::Object(snap)
}

/// Attach any serializable value (audit trails, sweep parameters, …) to
/// the next emitted report. No-op unless [`enable`] was called.
pub fn record_value(label: &str, value: &impl Serialize) {
    let mut c = COLLECTOR.lock();
    if !c.enabled {
        return;
    }
    let v = value.to_value();
    c.snapshots.push((label.to_string(), v));
}

fn report_dir() -> PathBuf {
    match std::env::var_os("RUN_REPORT_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from("target").join("run-reports"),
    }
}

/// Scope cap on the profile section a report embeds; the hottest scopes
/// (by inclusive time) are kept, the tail is summarised.
const PROFILE_SCOPE_CAP: usize = 96;

/// Build the report value for `name` from the given tables plus every
/// snapshot recorded since the last emit (which this call drains).
/// Snapshots are emitted sorted by label so report bytes are stable run to
/// run regardless of the order an experiment recorded them in.
pub fn build(name: &str, tables: &[Table]) -> Value {
    let mut snapshots = std::mem::take(&mut COLLECTOR.lock().snapshots);
    snapshots.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut fields = vec![
        ("name".into(), Value::Str(name.to_string())),
        ("schema".into(), Value::Str("run-report/v4".into())),
        (
            "tables".into(),
            Value::Array(tables.iter().map(|t| t.to_value()).collect()),
        ),
        ("snapshots".into(), Value::Object(snapshots)),
    ];
    // The flight-recorder sections are wall-clock derived, so they are only
    // present when profiling was explicitly enabled — default reports stay
    // deterministic.
    if netsim::profile::enabled() {
        netsim::profile::flush_thread();
        fields.push((
            "profile".into(),
            netsim::profile::report_value(PROFILE_SCOPE_CAP),
        ));
        if let Some(runner) = crate::experiments::runner_telemetry_value() {
            fields.push(("runner".into(), runner));
        }
    }
    Value::Object(fields)
}

/// Write the JSON run report for `name`, returning its path. Errors are
/// reported to stderr, never fatal: the human tables already printed.
pub fn emit(name: &str, tables: &[Table]) -> Option<PathBuf> {
    let report = build(name, tables);
    let dir = report_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("run-report: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e:?}\"}}"));
    match fs::write(&path, json) {
        Ok(()) => {
            eprintln!("run-report: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("run-report: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_accumulates_nothing() {
        // Default state: not enabled (tests run in one process with the
        // enable-path test, so assert on the report contents instead of
        // global state).
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1"]);
        let v = build("demo", &[t]);
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"name\":\"demo\""));
        assert!(json.contains("\"schema\":\"run-report/v4\""));
        assert!(json.contains("\"tables\":["));
    }

    #[test]
    fn enabled_collector_captures_world_snapshots() {
        enable();
        let mut w = World::new(1);
        w.enable_metrics();
        record_world("before", &w);
        record_value("param", &42u64);
        let v = build("snap-test", &[]);
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"before\":{\"metrics\":{"), "{json}");
        assert!(json.contains("\"param\":42"), "{json}");
        // Drained: a second build sees an empty snapshot set.
        let v2 = build("snap-test", &[]);
        let json2 = serde_json::to_string(&v2).unwrap();
        assert!(json2.contains("\"snapshots\":{}"), "{json2}");
    }

    #[test]
    fn snapshots_emit_sorted_by_label() {
        enable();
        record_value("zz-last", &1u64);
        record_value("aa-first", &2u64);
        let json = serde_json::to_string(&build("order-test", &[])).unwrap();
        let a = json.find("\"aa-first\"").expect("aa-first present");
        let z = json.find("\"zz-last\"").expect("zz-last present");
        assert!(a < z, "labels sorted regardless of recording order: {json}");
    }
}
