#![warn(missing_docs)]
//! # bench — experiment drivers for Internet Mobility 4x4
//!
//! One module per paper artifact (see `DESIGN.md` §5 for the experiment
//! index). Each experiment is an ordinary function returning a typed result
//! whose `Display` prints the table/series the paper's figure illustrates;
//! the `src/bin/*` wrappers run them from the command line, and
//! `benches/figures.rs` wraps them (at reduced scale) in criterion.
//!
//! All experiments are deterministic: fixed seeds, simulated time.

pub mod experiments;
pub mod forced;
pub mod report;
pub mod runbin;
pub mod scale;
pub mod util;

pub use util::Table;
