//! In-simulation applications.
//!
//! These model the workloads the paper argues about: long-lived telnet
//! sessions that must survive movement (§2, §8), short-lived HTTP transfers
//! where "the user may prefer the small risk of an occasional incomplete
//! image" to Mobile IP overhead (§4, Out-DT), DNS-style datagram
//! transactions, and bulk transfers for throughput measurements.
//!
//! Applications are [`App`]s: the host polls them after every event, and
//! they schedule their own wake-ups for timed actions.

use std::any::Any;

use netsim::wire::ipv4::Ipv4Addr;
use netsim::{App, Host, NetCtx, SimDuration, SimTime};

use crate::{tcp, udp};

/// Tracks the single scheduled wake-up an app needs, without flooding the
/// event queue with duplicates.
#[derive(Debug, Default, Clone, Copy)]
struct Alarm {
    scheduled_for: Option<SimTime>,
}

impl Alarm {
    /// Ensure the host gets polled at (or just after) `due`.
    fn ensure(&mut self, host: &mut Host, ctx: &mut NetCtx, due: SimTime) {
        if self.scheduled_for == Some(due) {
            return;
        }
        self.scheduled_for = Some(due);
        let delay = due.since(ctx.now);
        host.request_wakeup(ctx, delay);
    }
}

// ---------------------------------------------------------------- UDP echo

/// Echoes every UDP datagram back to its sender.
pub struct UdpEchoServer {
    port: u16,
    sock: Option<udp::UdpHandle>,
    /// Keystrokes echoed back by the correspondent.
    pub echoed: u64,
}

impl UdpEchoServer {
    /// A server listening on `port`.
    pub fn new(port: u16) -> Self {
        UdpEchoServer {
            port,
            sock: None,
            echoed: 0,
        }
    }
}

impl App for UdpEchoServer {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, None, self.port));
        while let Some(got) = udp::recv(host, sock) {
            udp::send_to(host, ctx, sock, got.from, got.payload);
            self.echoed += 1;
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends UDP requests on an interval and records round-trip times — a
/// DNS-lookup-like datagram workload.
pub struct UdpPinger {
    /// The server to talk to.
    pub server: (Ipv4Addr, u16),
    /// Explicit source binding (the §7.1.1 signal), if any.
    pub bind_addr: Option<Ipv4Addr>,
    /// Gap between transmissions.
    pub interval: SimDuration,
    /// Packets to send in total.
    pub count: u32,
    sock: Option<udp::UdpHandle>,
    sent: u32,
    next_at: SimTime,
    outstanding: Option<(u32, SimTime)>,
    alarm: Alarm,
    /// (sequence, rtt) of each completed exchange.
    pub rtts: Vec<(u32, SimDuration)>,
    /// Requests that were never answered (superseded by the next send).
    pub lost: u32,
}

impl UdpPinger {
    /// A pinger sending `count` requests to `server` every `interval`.
    pub fn new(server: (Ipv4Addr, u16), interval: SimDuration, count: u32) -> Self {
        UdpPinger {
            server,
            bind_addr: None,
            interval,
            count,
            sock: None,
            sent: 0,
            next_at: SimTime::ZERO,
            outstanding: None,
            alarm: Alarm::default(),
            rtts: Vec::new(),
            lost: 0,
        }
    }

    /// Has the workload finished?
    pub fn done(&self) -> bool {
        self.sent >= self.count && self.outstanding.is_none()
    }
}

impl App for UdpPinger {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let bind_addr = self.bind_addr;
        let sock = *self
            .sock
            .get_or_insert_with(|| udp::bind(host, bind_addr, 0));
        // Collect answers.
        while let Some(got) = udp::recv(host, sock) {
            if got.payload.len() >= 4 {
                let seq = u32::from_be_bytes(got.payload[..4].try_into().unwrap());
                if let Some((out_seq, at)) = self.outstanding {
                    if out_seq == seq {
                        self.rtts.push((seq, ctx.now.since(at)));
                        self.outstanding = None;
                    }
                }
            }
        }
        // Send the next request when due.
        if self.sent < self.count {
            if ctx.now >= self.next_at {
                if self.outstanding.take().is_some() {
                    self.lost += 1;
                }
                let seq = self.sent;
                udp::send_to(host, ctx, sock, self.server, seq.to_be_bytes().to_vec());
                self.outstanding = Some((seq, ctx.now));
                self.sent += 1;
                self.next_at = ctx.now + self.interval;
            }
            if self.sent < self.count {
                let due = self.next_at;
                self.alarm.ensure(host, ctx, due);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- TCP echo

/// Accepts TCP connections and echoes everything received; closes when the
/// peer closes.
pub struct TcpEchoServer {
    port: u16,
    listener: Option<tcp::ListenerHandle>,
    conns: Vec<tcp::TcpHandle>,
    /// Bytes echoed back to clients.
    pub bytes_echoed: u64,
    /// Connections accepted over the lifetime.
    pub connections_served: u64,
}

impl TcpEchoServer {
    /// A server listening on `port`.
    pub fn new(port: u16) -> Self {
        TcpEchoServer {
            port,
            listener: None,
            conns: Vec::new(),
            bytes_echoed: 0,
            connections_served: 0,
        }
    }
}

impl App for TcpEchoServer {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let l = *self
            .listener
            .get_or_insert_with(|| tcp::listen(host, None, self.port));
        while let Some(c) = tcp::accept(host, l) {
            self.conns.push(c);
            self.connections_served += 1;
        }
        self.conns.retain(|&c| {
            let data = tcp::recv(host, c);
            if !data.is_empty() {
                self.bytes_echoed += data.len() as u64;
                tcp::send(host, ctx, c, &data);
            }
            match tcp::state(host, c) {
                tcp::TcpState::CloseWait => {
                    tcp::close(host, ctx, c);
                    true
                }
                tcp::TcpState::Closed => false,
                _ => true,
            }
        });
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------- request/response

/// A simple HTTP-like server: reads a request line ending in `\n`, replies
/// with a configurable number of bytes, then closes its side.
pub struct RequestResponseServer {
    port: u16,
    /// Bytes of response body per request.
    pub response_len: usize,
    listener: Option<tcp::ListenerHandle>,
    conns: Vec<(tcp::TcpHandle, Vec<u8>, bool)>,
    /// Requests answered.
    pub requests_served: u64,
}

impl RequestResponseServer {
    /// A server answering every request on `port` with `response_len` bytes.
    pub fn new(port: u16, response_len: usize) -> Self {
        RequestResponseServer {
            port,
            response_len,
            listener: None,
            conns: Vec::new(),
            requests_served: 0,
        }
    }
}

impl App for RequestResponseServer {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let port = self.port;
        let l = *self
            .listener
            .get_or_insert_with(|| tcp::listen(host, None, port));
        while let Some(c) = tcp::accept(host, l) {
            self.conns.push((c, Vec::new(), false));
        }
        let response_len = self.response_len;
        let mut served = 0;
        self.conns.retain_mut(|(c, reqbuf, responded)| {
            if !*responded {
                reqbuf.extend(tcp::recv(host, *c));
                if reqbuf.contains(&b'\n') {
                    let body: Vec<u8> = (0..response_len).map(|i| (i % 251) as u8).collect();
                    tcp::send(host, ctx, *c, &body);
                    tcp::close(host, ctx, *c);
                    *responded = true;
                    served += 1;
                }
            }
            !matches!(tcp::state(host, *c), tcp::TcpState::Closed)
        });
        self.requests_served += served;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Outcome of one client transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The transfer finished; the connection closed cleanly.
    Completed {
        /// When the transfer began.
        started: SimTime,
        /// When the transfer completed.
        finished: SimTime,
        /// Response bytes received.
        bytes: usize,
    },
    /// The transfer died before completing.
    Failed {
        /// When the transfer began.
        started: SimTime,
        /// The transport-level cause.
        error: tcp::TcpError,
    },
}

impl TransferOutcome {
    /// Did the transfer finish successfully?
    pub fn completed(&self) -> bool {
        matches!(self, TransferOutcome::Completed { .. })
    }

    /// Wall-clock (simulated) duration of a completed transfer.
    pub fn duration(&self) -> Option<SimDuration> {
        match self {
            TransferOutcome::Completed {
                started, finished, ..
            } => Some(finished.since(*started)),
            TransferOutcome::Failed { .. } => None,
        }
    }
}

enum ClientPhase {
    Waiting,
    Active {
        conn: tcp::TcpHandle,
        started: SimTime,
        received: usize,
    },
    Finished,
}

/// A client that repeatedly opens a connection to a
/// [`RequestResponseServer`], sends a one-line request, and reads the
/// response until the server closes — the Web-browsing workload of §4's
/// Out-DT discussion.
pub struct HttpLikeClient {
    /// The server to talk to.
    pub server: (Ipv4Addr, u16),
    /// Explicit local binding; `Some(care-of address)` requests plain
    /// non-mobile delivery (Out-DT).
    pub bind_addr: Option<Ipv4Addr>,
    /// Transfers to perform in total.
    pub transfers: u32,
    /// Pause between consecutive transfers.
    pub gap: SimDuration,
    /// Application-level response timeout: a transfer that makes no
    /// progress for this long is aborted and counted failed (the browser's
    /// own give-up-and-show-broken-icon behaviour, §4). Needed because an
    /// idle half-dead connection has nothing in flight, so TCP alone never
    /// notices.
    pub timeout: SimDuration,
    start_at: SimTime,
    phase: ClientPhase,
    completed_count: u32,
    next_start: SimTime,
    alarm: Alarm,
    /// Per-transfer results, in order.
    pub outcomes: Vec<TransferOutcome>,
}

impl HttpLikeClient {
    /// A client performing `transfers` fetches from `server`, `gap` apart.
    pub fn new(server: (Ipv4Addr, u16), transfers: u32, gap: SimDuration) -> Self {
        HttpLikeClient {
            server,
            bind_addr: None,
            transfers,
            gap,
            timeout: SimDuration::from_secs(30),
            start_at: SimTime::ZERO,
            phase: ClientPhase::Waiting,
            completed_count: 0,
            next_start: SimTime::ZERO,
            alarm: Alarm::default(),
            outcomes: Vec::new(),
        }
    }

    /// Delay the first transfer until `at`.
    pub fn starting_at(mut self, at: SimTime) -> Self {
        self.start_at = at;
        self.next_start = at;
        self
    }

    /// Has the workload finished?
    pub fn done(&self) -> bool {
        matches!(self.phase, ClientPhase::Finished)
    }
}

impl App for HttpLikeClient {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        loop {
            match &mut self.phase {
                ClientPhase::Waiting => {
                    if self.completed_count >= self.transfers {
                        self.phase = ClientPhase::Finished;
                        continue;
                    }
                    if ctx.now < self.next_start {
                        let due = self.next_start;
                        self.alarm.ensure(host, ctx, due);
                        return;
                    }
                    match tcp::connect(host, ctx, self.server, self.bind_addr) {
                        Ok(conn) => {
                            tcp::send(host, ctx, conn, b"GET /index.html\n");
                            self.phase = ClientPhase::Active {
                                conn,
                                started: ctx.now,
                                received: 0,
                            };
                        }
                        Err(e) => {
                            self.outcomes.push(TransferOutcome::Failed {
                                started: ctx.now,
                                error: e,
                            });
                            self.completed_count += 1;
                            self.next_start = ctx.now + self.gap;
                        }
                    }
                    return;
                }
                ClientPhase::Active {
                    conn,
                    started,
                    received,
                } => {
                    let conn = *conn;
                    let started_at = *started;
                    *received += tcp::recv(host, conn).len();
                    // Browser give-up timer: abort stalled transfers.
                    if ctx.now.since(started_at) >= self.timeout
                        && !matches!(tcp::state(host, conn), tcp::TcpState::Closed)
                    {
                        tcp::abort(host, ctx, conn);
                        self.outcomes.push(TransferOutcome::Failed {
                            started: started_at,
                            error: tcp::TcpError::TimedOut,
                        });
                        self.completed_count += 1;
                        self.next_start = ctx.now + self.gap;
                        self.phase = ClientPhase::Waiting;
                        continue;
                    }
                    match tcp::state(host, conn) {
                        tcp::TcpState::CloseWait => {
                            // Server finished sending; close our side.
                            tcp::close(host, ctx, conn);
                            return;
                        }
                        tcp::TcpState::Closed
                            if tcp::error(host, conn).is_none()
                                || *received > 0 && tcp::error(host, conn).is_none() =>
                        {
                            self.outcomes.push(TransferOutcome::Completed {
                                started: *started,
                                finished: ctx.now,
                                bytes: *received,
                            });
                            self.completed_count += 1;
                            self.next_start = ctx.now + self.gap;
                            self.phase = ClientPhase::Waiting;
                        }
                        tcp::TcpState::Closed => {
                            self.outcomes.push(TransferOutcome::Failed {
                                started: *started,
                                error: tcp::error(host, conn).unwrap(),
                            });
                            self.completed_count += 1;
                            self.next_start = ctx.now + self.gap;
                            self.phase = ClientPhase::Waiting;
                        }
                        // LastAck/TimeWait resolve on their own; Closing
                        // too — but make sure we wake up to enforce the
                        // give-up timer even if no packet ever arrives.
                        _ => {
                            let due = started_at + self.timeout;
                            self.alarm.ensure(host, ctx, due);
                            return;
                        }
                    }
                }
                ClientPhase::Finished => return,
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------------ keystrokes

/// A long-lived interactive session: one connection, one keystroke byte
/// every `interval`, expecting the byte echoed back. The telnet workload of
/// §2: "idle telnet connections that are preserved for hours … while the
/// laptop computer is sitting unused".
pub struct KeystrokeSession {
    /// The server to talk to.
    pub server: (Ipv4Addr, u16),
    /// Explicit local binding (the §7.1.1 mobile-awareness signal), if any.
    pub bind_addr: Option<Ipv4Addr>,
    /// Gap between transmissions.
    pub interval: SimDuration,
    /// Keystrokes to type in total.
    pub keystrokes: u32,
    conn: Option<tcp::TcpHandle>,
    typed: u32,
    /// Keystrokes echoed back by the correspondent.
    pub echoed: u64,
    next_at: SimTime,
    alarm: Alarm,
    /// Set when the session died, with the transport error.
    pub broken: Option<tcp::TcpError>,
}

impl KeystrokeSession {
    /// A session typing `keystrokes` at `server`, one every `interval`.
    pub fn new(server: (Ipv4Addr, u16), interval: SimDuration, keystrokes: u32) -> Self {
        KeystrokeSession {
            server,
            bind_addr: None,
            interval,
            keystrokes,
            conn: None,
            typed: 0,
            echoed: 0,
            next_at: SimTime::ZERO,
            alarm: Alarm::default(),
            broken: None,
        }
    }

    /// Did every typed keystroke come back?
    pub fn all_echoed(&self) -> bool {
        self.typed == self.keystrokes && u64::from(self.typed) == self.echoed
    }

    /// Keystrokes typed so far.
    pub fn typed(&self) -> u32 {
        self.typed
    }

    /// The underlying connection, once established (for stats inspection).
    pub fn conn(&self) -> Option<tcp::TcpHandle> {
        self.conn
    }
}

impl App for KeystrokeSession {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        if self.broken.is_some() {
            return;
        }
        let conn = match self.conn {
            Some(c) => c,
            None => match tcp::connect(host, ctx, self.server, self.bind_addr) {
                Ok(c) => {
                    self.conn = Some(c);
                    c
                }
                Err(e) => {
                    self.broken = Some(e);
                    return;
                }
            },
        };
        self.echoed += tcp::recv(host, conn).len() as u64;
        if let Some(e) = tcp::error(host, conn) {
            self.broken = Some(e);
            return;
        }
        if self.typed < self.keystrokes
            && tcp::state(host, conn) == tcp::TcpState::Established
            && ctx.now >= self.next_at
        {
            tcp::send(host, ctx, conn, b"k");
            self.typed += 1;
            self.next_at = ctx.now + self.interval;
        }
        if self.typed < self.keystrokes {
            let due = self.next_at;
            self.alarm.ensure(host, ctx, due);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------------- bulk sender

/// Connects, pushes `total_bytes`, closes, and records the outcome.
pub struct BulkSender {
    /// The server to talk to.
    pub server: (Ipv4Addr, u16),
    /// Explicit local binding (the §7.1.1 mobile-awareness signal), if any.
    pub bind_addr: Option<Ipv4Addr>,
    /// Bytes to push before closing.
    pub total_bytes: usize,
    conn: Option<tcp::TcpHandle>,
    sent: bool,
    started: Option<SimTime>,
    /// The result, once the transfer resolves.
    pub outcome: Option<TransferOutcome>,
}

impl BulkSender {
    /// A sender that will push `total_bytes` to `server`.
    pub fn new(server: (Ipv4Addr, u16), total_bytes: usize) -> Self {
        BulkSender {
            server,
            bind_addr: None,
            total_bytes,
            conn: None,
            sent: false,
            started: None,
            outcome: None,
        }
    }
}

impl App for BulkSender {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        if self.outcome.is_some() {
            return;
        }
        let conn = match self.conn {
            Some(c) => c,
            None => {
                self.started = Some(ctx.now);
                match tcp::connect(host, ctx, self.server, self.bind_addr) {
                    Ok(c) => {
                        self.conn = Some(c);
                        c
                    }
                    Err(e) => {
                        self.outcome = Some(TransferOutcome::Failed {
                            started: ctx.now,
                            error: e,
                        });
                        return;
                    }
                }
            }
        };
        let _ = tcp::recv(host, conn);
        if let Some(e) = tcp::error(host, conn) {
            self.outcome = Some(TransferOutcome::Failed {
                started: self.started.unwrap(),
                error: e,
            });
            return;
        }
        if !self.sent && tcp::state(host, conn).can_send() {
            let data: Vec<u8> = (0..self.total_bytes).map(|i| (i % 249) as u8).collect();
            tcp::send(host, ctx, conn, &data);
            tcp::close(host, ctx, conn);
            self.sent = true;
        }
        if self.sent
            && matches!(
                tcp::state(host, conn),
                tcp::TcpState::Closed | tcp::TcpState::TimeWait | tcp::TcpState::FinWait2
            )
            && tcp::all_acked(host, conn)
        {
            self.outcome = Some(TransferOutcome::Completed {
                started: self.started.unwrap(),
                finished: ctx.now,
                bytes: self.total_bytes,
            });
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink for [`BulkSender`]: accepts and drains connections.
pub struct SinkServer {
    port: u16,
    listener: Option<tcp::ListenerHandle>,
    conns: Vec<tcp::TcpHandle>,
    /// Total bytes received.
    pub bytes_received: u64,
}

impl SinkServer {
    /// A server listening on `port`.
    pub fn new(port: u16) -> Self {
        SinkServer {
            port,
            listener: None,
            conns: Vec::new(),
            bytes_received: 0,
        }
    }
}

impl App for SinkServer {
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx) {
        let port = self.port;
        let l = *self
            .listener
            .get_or_insert_with(|| tcp::listen(host, None, port));
        while let Some(c) = tcp::accept(host, l) {
            self.conns.push(c);
        }
        self.conns.retain(|&c| {
            self.bytes_received += tcp::recv(host, c).len() as u64;
            match tcp::state(host, c) {
                tcp::TcpState::CloseWait => {
                    tcp::close(host, ctx, c);
                    true
                }
                tcp::TcpState::Closed => false,
                _ => true,
            }
        });
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostConfig, LinkConfig, NodeId, World};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn lan_pair() -> (World, NodeId, NodeId) {
        let mut w = World::new(21);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("client"));
        let b = w.add_host(HostConfig::conventional("server"));
        w.attach(a, lan, Some("10.0.0.1/24"));
        w.attach(b, lan, Some("10.0.0.2/24"));
        for n in [a, b] {
            udp::install(w.host_mut(n));
            tcp::install(w.host_mut(n));
        }
        (w, a, b)
    }

    #[test]
    fn udp_pinger_against_echo_server() {
        let (mut w, a, b) = lan_pair();
        w.host_mut(b).add_app(Box::new(UdpEchoServer::new(7)));
        let app = w.host_mut(a).add_app(Box::new(UdpPinger::new(
            (ip("10.0.0.2"), 7),
            SimDuration::from_millis(100),
            5,
        )));
        w.poll_soon(a);
        w.poll_soon(b);
        w.run_for(SimDuration::from_secs(2));
        let pinger = w.host_mut(a).app_as::<UdpPinger>(app).unwrap();
        assert!(pinger.done());
        assert_eq!(pinger.rtts.len(), 5);
        assert_eq!(pinger.lost, 0);
        for (_, rtt) in &pinger.rtts {
            assert!(rtt.as_micros() > 0);
        }
    }

    #[test]
    fn keystrokes_echo_over_tcp() {
        let (mut w, a, b) = lan_pair();
        w.host_mut(b).add_app(Box::new(TcpEchoServer::new(23)));
        let app = w.host_mut(a).add_app(Box::new(KeystrokeSession::new(
            (ip("10.0.0.2"), 23),
            SimDuration::from_millis(200),
            10,
        )));
        w.poll_soon(a);
        w.poll_soon(b);
        w.run_for(SimDuration::from_secs(5));
        let sess = w.host_mut(a).app_as::<KeystrokeSession>(app).unwrap();
        assert!(sess.broken.is_none());
        assert!(
            sess.all_echoed(),
            "typed {} echoed {}",
            sess.typed(),
            sess.echoed
        );
    }

    #[test]
    fn http_like_client_completes_transfers() {
        let (mut w, a, b) = lan_pair();
        w.host_mut(b)
            .add_app(Box::new(RequestResponseServer::new(80, 8_000)));
        let app = w.host_mut(a).add_app(Box::new(HttpLikeClient::new(
            (ip("10.0.0.2"), 80),
            3,
            SimDuration::from_millis(500),
        )));
        w.poll_soon(a);
        w.poll_soon(b);
        w.run_for(SimDuration::from_secs(30));
        let client = w.host_mut(a).app_as::<HttpLikeClient>(app).unwrap();
        assert!(client.done());
        assert_eq!(client.outcomes.len(), 3);
        for o in &client.outcomes {
            match o {
                TransferOutcome::Completed { bytes, .. } => assert_eq!(*bytes, 8_000),
                TransferOutcome::Failed { error, .. } => panic!("transfer failed: {error:?}"),
            }
        }
        let srv = w.host_mut(b);
        let served = srv.app_as::<RequestResponseServer>(0).unwrap();
        assert_eq!(served.requests_served, 3);
    }

    #[test]
    fn bulk_sender_into_sink() {
        let (mut w, a, b) = lan_pair();
        w.host_mut(b).add_app(Box::new(SinkServer::new(9)));
        let app = w
            .host_mut(a)
            .add_app(Box::new(BulkSender::new((ip("10.0.0.2"), 9), 200_000)));
        w.poll_soon(a);
        w.poll_soon(b);
        w.run_for(SimDuration::from_secs(60));
        let sender = w.host_mut(a).app_as::<BulkSender>(app).unwrap();
        let outcome = sender.outcome.expect("finished");
        assert!(outcome.completed(), "{outcome:?}");
        assert!(outcome.duration().unwrap().as_micros() > 0);
        let sink = w.host_mut(b).app_as::<SinkServer>(0).unwrap();
        assert_eq!(sink.bytes_received, 200_000);
    }

    #[test]
    fn client_failure_is_recorded_when_server_absent() {
        let (mut w, a, _b) = lan_pair();
        let app = w.host_mut(a).add_app(Box::new(HttpLikeClient::new(
            (ip("10.0.0.2"), 81), // nothing listens on 81
            1,
            SimDuration::from_millis(100),
        )));
        w.poll_soon(a);
        w.run_for(SimDuration::from_secs(10));
        let client = w.host_mut(a).app_as::<HttpLikeClient>(app).unwrap();
        assert!(client.done());
        assert!(matches!(
            client.outcomes[0],
            TransferOutcome::Failed {
                error: tcp::TcpError::Reset,
                ..
            }
        ));
    }
}
