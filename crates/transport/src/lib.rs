#![warn(missing_docs)]
//! # transport — UDP and TCP over `netsim` host stacks
//!
//! From-scratch transport protocols for the Internet Mobility 4x4
//! reproduction:
//!
//! * [`udp`] — datagram sockets with the bind-address semantics the paper
//!   uses as its mobile-awareness signal (§7.1.1: an application that binds
//!   its socket to a physical interface address asks for plain, non-mobile
//!   delivery).
//! * [`tcp`] — a real TCP state machine (three-way handshake, cumulative
//!   acknowledgement, retransmission with Karn-sampled RTO and exponential
//!   backoff, FIN/RST teardown). Connections are identified by the classic
//!   4-tuple, which is precisely why Mobile IP's stable home address keeps
//!   them alive across moves and why the paper's Out-DT/In-DT modes break
//!   them. Every transmitted data segment is reported to the host's
//!   mobility hook as original-vs-retransmission — the §7.1.2 feedback
//!   interface the paper proposed but had "not yet implemented".
//! * [`apps`] — in-simulation applications (echo services, request/response
//!   clients, bulk transfer, keystroke sessions) used by the experiments.
//!
//! All socket operations are free functions taking `(&mut Host, &mut
//! NetCtx)` so they compose with the simulator's take-out dispatch pattern.

pub mod apps;
pub mod tcp;
pub mod udp;

/// Sequence-number arithmetic (RFC 793 §3.3): all comparisons are modulo
/// 2^32.
pub(crate) fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

pub(crate) fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_sequence_compare() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(!seq_lt(5, 5));
        assert!(seq_le(5, 5));
        // Wrap: 0xffff_fff0 is "before" 0x10.
        assert!(seq_lt(0xffff_fff0, 0x10));
        assert!(!seq_lt(0x10, 0xffff_fff0));
    }
}
