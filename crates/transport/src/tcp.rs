//! TCP (RFC 793 subset) over `netsim`.
//!
//! Implemented: the three-way handshake, cumulative acknowledgement,
//! out-of-order reassembly, retransmission with a Karn-sampled RTO
//! (RFC 6298) and exponential backoff, FIN teardown through all the
//! close states, RST generation and handling, and MSS negotiation.
//! Deliberately omitted (not needed for the paper's claims): flow control
//! back-pressure (the window is fixed), congestion control, SACK.
//!
//! Two properties matter for Internet Mobility 4x4:
//!
//! 1. **Connections are named by the 4-tuple** (local addr, local port,
//!    remote addr, remote port). A mobile host that keeps using its home
//!    address keeps its connections when it moves; one that uses a care-of
//!    address loses them ("TCP connections will be unceremoniously broken
//!    when the mobile host moves", §4).
//! 2. **Transmission feedback** (§7.1.2): every data/FIN segment handed to
//!    IP is tagged original-or-retransmission, and the same signal is
//!    passed to the host's mobility hook — both for segments we send and
//!    for duplicates we receive ("if the IP layer sees repeated
//!    retransmissions from a particular address, then that suggests that
//!    acknowledgements are not getting through").

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use netsim::device::host::FeedbackEvent;
use netsim::device::TxMeta;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::wire::tcpseg::{TcpFlags, TcpSegment};
use netsim::{Host, IfaceNo, NetCtx, ProtocolHandler, SimDuration, SimTime, TimerHandle};

use crate::{seq_le, seq_lt};

/// Connection states (RFC 793 §3.2, minus LISTEN, which lives in the
/// listener table rather than per-connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Active open: SYN sent, awaiting SYN-ACK.
    SynSent,
    /// Passive open: SYN-ACK sent, awaiting the final ACK.
    SynReceived,
    /// Data may flow both ways.
    Established,
    /// We closed first; our FIN is unacknowledged.
    FinWait1,
    /// Our FIN acknowledged; awaiting the peer's.
    FinWait2,
    /// Peer closed; the application may still send.
    CloseWait,
    /// Both FINs in flight (simultaneous close).
    Closing,
    /// Peer closed first; our FIN awaits its ACK.
    LastAck,
    /// Fully closed; lingering to absorb stragglers.
    TimeWait,
    /// No connection (terminal).
    Closed,
}

impl TcpState {
    /// Can the application still send data in this state?
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }
}

/// Why a connection died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Peer sent RST (or we aborted).
    Reset,
    /// Retransmission limit exhausted — the path silently ate our segments,
    /// which is what a filtered Out-DH path looks like from the inside.
    TimedOut,
    /// No usable source address / route at connect time.
    Unroutable,
}

/// Per-connection counters, visible to experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Segments transmitted (including retransmissions).
    pub segs_sent: u64,
    /// Segments retransmitted after an RTO.
    pub segs_retransmitted: u64,
    /// Payload bytes sent (first transmissions only).
    pub bytes_sent: u64,
    /// Payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Duplicate data segments received (the peer's retransmissions).
    pub dup_segments_received: u64,
    /// Karn-valid RTT samples taken.
    pub rtt_samples: u64,
    /// Smoothed RTT in microseconds, once sampled.
    pub srtt_us: Option<u64>,
}

const MAX_RETRIES: u32 = 6;
const INITIAL_RTO: SimDuration = SimDuration::from_millis(1_000);
const MIN_RTO: SimDuration = SimDuration::from_millis(200);
const MAX_RTO: SimDuration = SimDuration::from_secs(60);
const TIME_WAIT_DURATION: SimDuration = SimDuration::from_secs(10);
const DEFAULT_MSS: usize = 1460;
const WINDOW: u16 = 0xffff;
/// Fixed transmission window, in segments.
const MAX_IN_FLIGHT_SEGS: usize = 16;

/// Handle to a TCP connection on some host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHandle(usize);

/// Handle to a listening socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenerHandle(usize);

#[derive(Debug)]
struct Listener {
    addr: Option<Ipv4Addr>,
    port: u16,
    accept_q: VecDeque<usize>,
    open: bool,
}

#[derive(Debug)]
struct TcpConn {
    state: TcpState,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),
    /// Listener that spawned us (to enqueue on establishment).
    parent: Option<usize>,

    // Send side. `send_buf` holds bytes from `snd_una` onward.
    snd_una: u32,
    snd_nxt: u32,
    iss: u32,
    send_buf: VecDeque<u8>,
    fin_pending: bool,
    fin_seq: Option<u32>,

    // Receive side.
    rcv_nxt: u32,
    recv_buf: Vec<u8>,
    ooo: BTreeMap<u32, Bytes>,
    peer_closed: bool,

    // Retransmission.
    rto: SimDuration,
    srtt_us: Option<(u64, u64)>, // (srtt, rttvar)
    retries: u32,
    timer_gen: u64,
    /// The connection's one pending timer (RTO, keepalive, or TIME-WAIT),
    /// cancelled in the scheduler when re-armed or no longer needed. The
    /// generation number stays as a second line of defence for timers
    /// already extracted into the event loop's in-flight batch.
    timer: Option<TimerHandle>,
    /// Karn's algorithm: RTT probe (sequence end, send time); cleared by any
    /// retransmission.
    rtt_probe: Option<(u32, SimTime)>,

    mss: usize,
    /// Keepalive probing interval while the connection is idle (off by
    /// default, like real stacks). Detects half-dead connections — e.g. a
    /// peer whose care-of address stopped existing — that would otherwise
    /// sit Established forever with nothing in flight.
    keepalive: Option<SimDuration>,
    /// Consecutive unanswered keepalive probes.
    keepalive_fails: u32,
    stats: TcpStats,
    error: Option<TcpError>,
}

impl TcpConn {
    fn in_flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }
}

/// Unanswered keepalive probes before the connection is declared dead.
const KEEPALIVE_LIMIT: u32 = 3;

/// The TCP protocol handler for one host.
#[derive(Debug, Default)]
pub struct TcpLayer {
    conns: Vec<TcpConn>,
    listeners: Vec<Listener>,
    next_ephemeral: u16,
    isn: u32,
    /// Segments that matched no connection or listener (observability).
    pub unmatched: u64,
}

impl TcpLayer {
    fn alloc_port(&mut self) -> u16 {
        loop {
            self.next_ephemeral = if self.next_ephemeral < 49152 || self.next_ephemeral == u16::MAX
            {
                49152
            } else {
                self.next_ephemeral + 1
            };
            let p = self.next_ephemeral;
            let in_use = self
                .conns
                .iter()
                .any(|c| c.local.1 == p && c.state != TcpState::Closed)
                || self.listeners.iter().any(|l| l.open && l.port == p);
            if !in_use {
                return p;
            }
        }
    }

    fn next_isn(&mut self) -> u32 {
        self.isn = self.isn.wrapping_add(0x1000_0001);
        self.isn
    }

    fn find_conn(&self, local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16)) -> Option<usize> {
        self.conns
            .iter()
            .position(|c| c.state != TcpState::Closed && c.local == local && c.remote == remote)
    }

    fn find_listener(&self, dst_addr: Ipv4Addr, dst_port: u16) -> Option<usize> {
        let mut wildcard = None;
        for (i, l) in self.listeners.iter().enumerate() {
            if !l.open || l.port != dst_port {
                continue;
            }
            match l.addr {
                Some(a) if a == dst_addr => return Some(i),
                None => wildcard = Some(i),
                _ => {}
            }
        }
        wildcard
    }
}

// ---- segment transmission helpers ------------------------------------------

fn timer_payload(ix: usize, gen: u64) -> u64 {
    ((ix as u64) << 32) | (gen & 0xffff_ffff)
}

fn split_payload(p: u64) -> (usize, u64) {
    ((p >> 32) as usize, p & 0xffff_ffff)
}

impl TcpLayer {
    #[allow(clippy::too_many_arguments)] // one call site shape, kept explicit
    fn emit(
        &mut self,
        ix: usize,
        host: &mut Host,
        ctx: &mut NetCtx,
        seq: u32,
        flags: TcpFlags,
        payload: Bytes,
        retransmission: bool,
    ) {
        let c = &mut self.conns[ix];
        let seg = TcpSegment {
            src_port: c.local.1,
            dst_port: c.remote.1,
            seq,
            ack: if flags.ack { c.rcv_nxt } else { 0 },
            flags,
            window: WINDOW,
            mss: if flags.syn {
                Some(DEFAULT_MSS as u16)
            } else {
                None
            },
            payload,
        };
        let data_len = seg.payload.len();
        let carries = data_len > 0 || flags.syn || flags.fin;
        c.stats.segs_sent += 1;
        let node = ctx.node;
        ctx.metrics().record_tcp_segment_sent(node, retransmission);
        if retransmission {
            c.stats.segs_retransmitted += 1;
            c.rtt_probe = None; // Karn: never sample a retransmitted range
        } else {
            c.stats.bytes_sent += data_len as u64;
            if carries && c.rtt_probe.is_none() {
                c.rtt_probe = Some((seq.wrapping_add(seg.seq_len()), ctx.now));
            }
        }
        let (src, dst) = (c.local.0, c.remote.0);
        let peer = c.remote.0;
        let mut pkt = Ipv4Packet::new(src, dst, IpProtocol::Tcp, Bytes::from(seg.emit(src, dst)));
        pkt.ident = host.alloc_ident();
        if carries {
            // §7.1.2: tell the mobility layer about every substantive
            // transmission, original or repeat.
            host.mobility_feedback(
                ctx.now,
                FeedbackEvent {
                    peer,
                    retransmission,
                    outgoing: true,
                },
            );
        }
        host.send_ip(
            ctx,
            pkt,
            TxMeta {
                retransmission,
                ..TxMeta::default()
            },
        );
    }

    fn send_ack(&mut self, ix: usize, host: &mut Host, ctx: &mut NetCtx) {
        let seq = self.conns[ix].snd_nxt;
        self.emit(ix, host, ctx, seq, TcpFlags::ack(), Bytes::new(), false);
    }

    fn arm_timer(&mut self, ix: usize, host: &mut Host, ctx: &mut NetCtx, delay: SimDuration) {
        let c = &mut self.conns[ix];
        c.timer_gen += 1;
        if let Some(h) = c.timer.take() {
            ctx.cancel_timer(h);
        }
        let payload = timer_payload(ix, c.timer_gen);
        let handle = host.request_proto_timer(ctx, IpProtocol::Tcp, delay, payload);
        self.conns[ix].timer = Some(handle);
    }

    fn cancel_timer(&mut self, ix: usize, ctx: &mut NetCtx) {
        let c = &mut self.conns[ix];
        c.timer_gen += 1;
        if let Some(h) = c.timer.take() {
            ctx.cancel_timer(h);
        }
    }

    /// Transmit as much pending data (and the FIN) as the window allows.
    fn pump(&mut self, ix: usize, host: &mut Host, ctx: &mut NetCtx) {
        loop {
            let c = &self.conns[ix];
            if !matches!(
                c.state,
                TcpState::Established
                    | TcpState::CloseWait
                    | TcpState::FinWait1
                    | TcpState::LastAck
            ) {
                return;
            }
            let mss = c.mss;
            let in_flight_segs = (c.in_flight() as usize).div_ceil(mss.max(1));
            let offset = c.in_flight() as usize; // bytes already in flight
            let unsent = c.send_buf.len().saturating_sub(offset);
            if unsent > 0 && in_flight_segs < MAX_IN_FLIGHT_SEGS && c.fin_seq.is_none() {
                let len = unsent.min(mss);
                let chunk: Vec<u8> = c.send_buf.iter().skip(offset).take(len).copied().collect();
                let seq = c.snd_nxt;
                self.conns[ix].snd_nxt = seq.wrapping_add(len as u32);
                let mut flags = TcpFlags::ack();
                flags.psh = true;
                self.emit(ix, host, ctx, seq, flags, Bytes::from(chunk), false);
                self.arm_timer(ix, host, ctx, self.conns[ix].rto);
                continue;
            }
            // All data sent; send FIN if requested and not yet sent.
            let c = &self.conns[ix];
            if c.fin_pending && c.fin_seq.is_none() && unsent == 0 {
                let seq = c.snd_nxt;
                let new_state = match c.state {
                    TcpState::Established => TcpState::FinWait1,
                    TcpState::CloseWait => TcpState::LastAck,
                    s => s,
                };
                {
                    let c = &mut self.conns[ix];
                    c.snd_nxt = seq.wrapping_add(1);
                    c.fin_seq = Some(seq);
                    c.state = new_state;
                }
                self.emit(ix, host, ctx, seq, TcpFlags::fin_ack(), Bytes::new(), false);
                self.arm_timer(ix, host, ctx, self.conns[ix].rto);
                continue;
            }
            return;
        }
    }

    /// Retransmit the oldest unacknowledged segment.
    fn retransmit(&mut self, ix: usize, host: &mut Host, ctx: &mut NetCtx) {
        let c = &self.conns[ix];
        match c.state {
            TcpState::SynSent => {
                let seq = c.iss;
                self.emit(ix, host, ctx, seq, TcpFlags::SYN, Bytes::new(), true);
            }
            TcpState::SynReceived => {
                let seq = c.iss;
                self.emit(ix, host, ctx, seq, TcpFlags::syn_ack(), Bytes::new(), true);
            }
            _ => {
                // Oldest in-flight range: data at snd_una, or the FIN.
                if c.fin_seq == Some(c.snd_una) {
                    let seq = c.snd_una;
                    let flags = TcpFlags::fin_ack();
                    self.emit(ix, host, ctx, seq, flags, Bytes::new(), true);
                } else {
                    let len = (c.in_flight() as usize).min(c.mss).min(c.send_buf.len());
                    if len == 0 {
                        return;
                    }
                    let chunk: Vec<u8> = c.send_buf.iter().take(len).copied().collect();
                    let seq = c.snd_una;
                    let mut flags = TcpFlags::ack();
                    flags.psh = true;
                    self.emit(ix, host, ctx, seq, flags, Bytes::from(chunk), true);
                }
            }
        }
    }

    fn fail(&mut self, ix: usize, err: TcpError, ctx: &mut NetCtx) {
        let c = &mut self.conns[ix];
        c.error = Some(err);
        c.state = TcpState::Closed;
        c.timer_gen += 1;
        if let Some(h) = c.timer.take() {
            ctx.cancel_timer(h);
        }
    }

    fn update_rtt(&mut self, ix: usize, ack: u32, ctx: &mut NetCtx) {
        let c = &mut self.conns[ix];
        if let Some((probe_end, sent_at)) = c.rtt_probe {
            if seq_le(probe_end, ack) {
                c.rtt_probe = None;
                let rtt = ctx.now.since(sent_at).as_micros();
                c.stats.rtt_samples += 1;
                let node = ctx.node;
                ctx.metrics()
                    .record_tcp_rtt(node, SimDuration::from_micros(rtt));
                let (srtt, rttvar) = match c.srtt_us {
                    None => (rtt, rtt / 2),
                    Some((s, v)) => {
                        let err = s.abs_diff(rtt);
                        (
                            (7 * s + rtt) / 8, // srtt ← 7/8·srtt + 1/8·rtt
                            (3 * v + err) / 4, // rttvar ← 3/4·var + 1/4·|err|
                        )
                    }
                };
                c.srtt_us = Some((srtt, rttvar));
                c.stats.srtt_us = Some(srtt);
                let rto = SimDuration::from_micros(srtt + 4 * rttvar);
                c.rto = rto.max(MIN_RTO).min(MAX_RTO);
            }
        }
    }

    /// Process an acceptable ACK. Returns true if it advanced `snd_una`.
    fn process_ack(&mut self, ix: usize, ack: u32, host: &mut Host, ctx: &mut NetCtx) -> bool {
        let advanced;
        {
            let c = &mut self.conns[ix];
            if !(seq_lt(c.snd_una, ack) && seq_le(ack, c.snd_nxt)) {
                return false;
            }
            let mut newly_acked = ack.wrapping_sub(c.snd_una) as usize;
            advanced = newly_acked > 0;
            // The FIN occupies one sequence number but no buffer byte.
            if let Some(fin) = c.fin_seq {
                if seq_lt(fin, ack) {
                    newly_acked -= 1;
                }
            }
            c.stats.bytes_acked += newly_acked as u64;
            for _ in 0..newly_acked.min(c.send_buf.len()) {
                c.send_buf.pop_front();
            }
            c.snd_una = ack;
            c.retries = 0;
        }
        self.update_rtt(ix, ack, ctx);

        // FIN acknowledged?
        let fin_acked = {
            let c = &self.conns[ix];
            c.fin_seq
                .is_some_and(|f| seq_lt(f, c.snd_nxt) && seq_le(f.wrapping_add(1), c.snd_una))
        };
        if fin_acked {
            let c = &mut self.conns[ix];
            match c.state {
                TcpState::FinWait1 => c.state = TcpState::FinWait2,
                TcpState::Closing => {
                    c.state = TcpState::TimeWait;
                }
                TcpState::LastAck => {
                    c.state = TcpState::Closed;
                }
                _ => {}
            }
            match self.conns[ix].state {
                TcpState::TimeWait => self.arm_timer(ix, host, ctx, TIME_WAIT_DURATION),
                TcpState::Closed => self.cancel_timer(ix, ctx),
                _ => {}
            }
        }

        // Timer management: quiet if nothing in flight (modulo keepalive),
        // else keep ticking.
        let c = &self.conns[ix];
        let (keepalive, cstate) = (c.keepalive, c.state);
        if c.in_flight() == 0 {
            if !matches!(cstate, TcpState::TimeWait) {
                self.cancel_timer(ix, ctx);
                if let (Some(ka), TcpState::Established) = (keepalive, cstate) {
                    self.arm_timer(ix, host, ctx, ka);
                }
            }
        } else {
            let rto = c.rto;
            self.arm_timer(ix, host, ctx, rto);
        }
        advanced
    }

    fn deliver_data(&mut self, ix: usize, seg: &TcpSegment, host: &mut Host, ctx: &mut NetCtx) {
        let peer = self.conns[ix].remote.0;
        let mut must_ack = !seg.payload.is_empty() || seg.flags.fin;
        {
            let c = &mut self.conns[ix];
            let seg_end = seg.seq.wrapping_add(seg.payload.len() as u32);
            if !seg.payload.is_empty() {
                if seg.seq == c.rcv_nxt {
                    // In-order: deliver, then drain any contiguous queue.
                    c.recv_buf.extend_from_slice(&seg.payload);
                    c.stats.bytes_received += seg.payload.len() as u64;
                    c.rcv_nxt = seg_end;
                    while let Some((&s, _)) = c.ooo.first_key_value() {
                        if seq_le(s, c.rcv_nxt) {
                            let (s, data) = c.ooo.pop_first().unwrap();
                            let skip = c.rcv_nxt.wrapping_sub(s) as usize;
                            if skip < data.len() {
                                c.recv_buf.extend_from_slice(&data[skip..]);
                                c.stats.bytes_received += (data.len() - skip) as u64;
                                c.rcv_nxt = s.wrapping_add(data.len() as u32);
                            }
                        } else {
                            break;
                        }
                    }
                    host.mobility_feedback(
                        ctx.now,
                        FeedbackEvent {
                            peer,
                            retransmission: false,
                            outgoing: false,
                        },
                    );
                } else if seq_lt(c.rcv_nxt, seg.seq) {
                    // Future data: queue out-of-order.
                    c.ooo.entry(seg.seq).or_insert_with(|| seg.payload.clone());
                } else {
                    // Entirely old data: the peer is retransmitting — our
                    // ACKs may not be getting through (§7.1.2).
                    c.stats.dup_segments_received += 1;
                    host.mobility_feedback(
                        ctx.now,
                        FeedbackEvent {
                            peer,
                            retransmission: true,
                            outgoing: false,
                        },
                    );
                }
            }

            // A zero-length segment below the window is a keepalive probe:
            // answer it so the prober knows we are alive (no feedback — a
            // probe is not a retransmission signal).
            if seg.payload.is_empty() && !seg.flags.fin && seq_lt(seg.seq, c.rcv_nxt) {
                must_ack = true;
            }

            // FIN processing (only once it is the next expected octet).
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if seg.flags.fin && fin_seq == c.rcv_nxt && !c.peer_closed {
                c.rcv_nxt = c.rcv_nxt.wrapping_add(1);
                c.peer_closed = true;
                match c.state {
                    TcpState::Established => c.state = TcpState::CloseWait,
                    TcpState::FinWait1 => c.state = TcpState::Closing,
                    TcpState::FinWait2 => c.state = TcpState::TimeWait,
                    _ => {}
                }
                must_ack = true;
            } else if seg.flags.fin && c.peer_closed {
                must_ack = true; // retransmitted FIN
            }
        }
        if self.conns[ix].state == TcpState::TimeWait {
            self.arm_timer(ix, host, ctx, TIME_WAIT_DURATION);
        }
        if must_ack {
            self.send_ack(ix, host, ctx);
        }
    }

    fn send_rst(
        &mut self,
        host: &mut Host,
        ctx: &mut NetCtx,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        seq: u32,
        ack: u32,
    ) {
        let mut flags = TcpFlags::rst();
        flags.ack = true;
        let seg = TcpSegment {
            src_port: local.1,
            dst_port: remote.1,
            seq,
            ack,
            flags,
            window: 0,
            mss: None,
            payload: Bytes::new(),
        };
        let mut pkt = Ipv4Packet::new(
            local.0,
            remote.0,
            IpProtocol::Tcp,
            Bytes::from(seg.emit(local.0, remote.0)),
        );
        pkt.ident = host.alloc_ident();
        host.send_ip(ctx, pkt, TxMeta::default());
    }
}

impl ProtocolHandler for TcpLayer {
    fn on_packet(&mut self, pkt: &Ipv4Packet, _iface: IfaceNo, host: &mut Host, ctx: &mut NetCtx) {
        let _prof = netsim::profile::scope("tcp/segment");
        let Ok(seg) = TcpSegment::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return;
        };
        let local = (pkt.dst, seg.dst_port);
        let remote = (pkt.src, seg.src_port);

        if let Some(ix) = self.find_conn(local, remote) {
            self.on_conn_segment(ix, &seg, host, ctx);
            return;
        }

        // New connection? Only a SYN (no ACK) to an open listener.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(l) = self.find_listener(pkt.dst, seg.dst_port) {
                let iss = self.next_isn();
                let mss = seg.mss.map_or(DEFAULT_MSS, |m| m as usize).min(DEFAULT_MSS);
                self.conns.push(TcpConn {
                    state: TcpState::SynReceived,
                    local,
                    remote,
                    parent: Some(l),
                    snd_una: iss,
                    snd_nxt: iss.wrapping_add(1),
                    iss,
                    send_buf: VecDeque::new(),
                    fin_pending: false,
                    fin_seq: None,
                    rcv_nxt: seg.seq.wrapping_add(1),
                    recv_buf: Vec::new(),
                    ooo: BTreeMap::new(),
                    peer_closed: false,
                    rto: INITIAL_RTO,
                    srtt_us: None,
                    retries: 0,
                    timer_gen: 0,
                    timer: None,
                    rtt_probe: None,
                    mss,
                    keepalive: None,
                    keepalive_fails: 0,
                    stats: TcpStats::default(),
                    error: None,
                });
                let ix = self.conns.len() - 1;
                self.emit(ix, host, ctx, iss, TcpFlags::syn_ack(), Bytes::new(), false);
                self.arm_timer(ix, host, ctx, INITIAL_RTO);
                return;
            }
        }

        // No home for this segment: RST it (unless it is itself an RST).
        self.unmatched += 1;
        if !seg.flags.rst {
            let (seq, ack) = if seg.flags.ack {
                (seg.ack, 0)
            } else {
                (0, seg.seq.wrapping_add(seg.seq_len()))
            };
            self.send_rst(host, ctx, local, remote, seq, ack);
        }
    }

    fn on_timer(&mut self, payload: u64, host: &mut Host, ctx: &mut NetCtx) {
        let _prof = netsim::profile::scope("tcp/timer");
        let (ix, gen) = split_payload(payload);
        if ix >= self.conns.len() || self.conns[ix].timer_gen != gen {
            return; // stale timer
        }
        // This firing consumes the stored handle: it must not be cancelled
        // (a no-op) or double-released later.
        self.conns[ix].timer = None;
        match self.conns[ix].state {
            TcpState::TimeWait => {
                self.conns[ix].state = TcpState::Closed;
            }
            TcpState::Closed => {}
            TcpState::Established if self.conns[ix].in_flight() == 0 => {
                // Idle connection: this is the keepalive timer.
                let Some(ka) = self.conns[ix].keepalive else {
                    return;
                };
                let c = &mut self.conns[ix];
                c.keepalive_fails += 1;
                if c.keepalive_fails > KEEPALIVE_LIMIT {
                    self.fail(ix, TcpError::TimedOut, ctx);
                    return;
                }
                // Probe with a zero-length segment one octet below snd_nxt;
                // a live peer must acknowledge it.
                let seq = c.snd_nxt.wrapping_sub(1);
                self.emit(ix, host, ctx, seq, TcpFlags::ack(), Bytes::new(), false);
                self.arm_timer(ix, host, ctx, ka);
            }
            _ => {
                // Retransmission timeout.
                let c = &mut self.conns[ix];
                c.retries += 1;
                if c.retries > MAX_RETRIES {
                    self.fail(ix, TcpError::TimedOut, ctx);
                    return;
                }
                c.rto = c.rto.saturating_mul(2).min(MAX_RTO);
                let rto = c.rto;
                self.retransmit(ix, host, ctx);
                self.arm_timer(ix, host, ctx, rto);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

impl TcpLayer {
    fn on_conn_segment(&mut self, ix: usize, seg: &TcpSegment, host: &mut Host, ctx: &mut NetCtx) {
        let node = ctx.node;
        ctx.metrics().record_tcp_segment_received(node);
        // Any sign of life from the peer resets keepalive accounting.
        self.conns[ix].keepalive_fails = 0;
        if seg.flags.rst {
            // An in-window RST kills the connection.
            let c = &self.conns[ix];
            if c.state == TcpState::SynSent || seq_le(c.rcv_nxt, seg.seq) || seg.seq == 0 {
                self.fail(ix, TcpError::Reset, ctx);
            }
            return;
        }
        match self.conns[ix].state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack {
                    let ok = {
                        let c = &self.conns[ix];
                        seg.ack == c.iss.wrapping_add(1)
                    };
                    if !ok {
                        let (local, remote) = {
                            let c = &self.conns[ix];
                            (c.local, c.remote)
                        };
                        self.send_rst(host, ctx, local, remote, seg.ack, 0);
                        return;
                    }
                    {
                        let c = &mut self.conns[ix];
                        c.snd_una = seg.ack;
                        c.rcv_nxt = seg.seq.wrapping_add(1);
                        c.state = TcpState::Established;
                        if let Some(m) = seg.mss {
                            c.mss = (m as usize).min(DEFAULT_MSS);
                        }
                        c.retries = 0;
                        c.rtt_probe = None;
                    }
                    self.cancel_timer(ix, ctx);
                    self.send_ack(ix, host, ctx);
                    self.pump(ix, host, ctx);
                }
                // A bare SYN would be simultaneous open; unsupported.
            }
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack == self.conns[ix].iss.wrapping_add(1) {
                    {
                        let c = &mut self.conns[ix];
                        c.snd_una = seg.ack;
                        c.state = TcpState::Established;
                        c.retries = 0;
                    }
                    self.cancel_timer(ix, ctx);
                    if let Some(l) = self.conns[ix].parent {
                        self.listeners[l].accept_q.push_back(ix);
                    }
                    // The handshake-completing ACK may carry data.
                    self.deliver_data(ix, seg, host, ctx);
                }
            }
            TcpState::Closed => {}
            _ => {
                if seg.flags.ack {
                    self.process_ack(ix, seg.ack, host, ctx);
                }
                self.deliver_data(ix, seg, host, ctx);
                self.pump(ix, host, ctx);
            }
        }
    }
}

// ---- public socket API -------------------------------------------------------

/// Register the TCP layer with a host. Idempotent.
pub fn install(host: &mut Host) {
    if host.handler_as::<TcpLayer>(IpProtocol::Tcp).is_none() {
        host.register_handler(IpProtocol::Tcp, Box::new(TcpLayer::default()));
    }
}

fn layer(host: &mut Host) -> &mut TcpLayer {
    host.handler_as::<TcpLayer>(IpProtocol::Tcp)
        .expect("tcp::install not called on this host")
}

/// Run `f` with the layer taken out of the host (so it can send).
fn with_layer<R>(host: &mut Host, f: impl FnOnce(&mut TcpLayer, &mut Host) -> R) -> R {
    let mut h = host
        .take_handler(IpProtocol::Tcp)
        .expect("tcp::install not called on this host");
    let l = h.as_any().downcast_mut::<TcpLayer>().expect("tcp layer");
    let r = f(l, host);
    host.put_handler(IpProtocol::Tcp, h);
    r
}

/// Listen on `(addr, port)`. `None` address accepts connections to any
/// local address.
pub fn listen(host: &mut Host, addr: Option<Ipv4Addr>, port: u16) -> ListenerHandle {
    let l = layer(host);
    l.listeners.push(Listener {
        addr,
        port,
        accept_q: VecDeque::new(),
        open: true,
    });
    ListenerHandle(l.listeners.len() - 1)
}

/// Pop an established connection off the listener's queue.
pub fn accept(host: &mut Host, lh: ListenerHandle) -> Option<TcpHandle> {
    layer(host).listeners[lh.0]
        .accept_q
        .pop_front()
        .map(TcpHandle)
}

/// Open a connection to `dst`. `bind_addr` is the explicit local binding
/// (the §7.1.1 mobile-awareness signal); `None` lets the mobility layer (or
/// normal routing) pick. The source address is fixed *here*, at connection
/// time — the endpoint-identifier decision the paper's route-override hook
/// captures.
pub fn connect(
    host: &mut Host,
    ctx: &mut NetCtx,
    dst: (Ipv4Addr, u16),
    bind_addr: Option<Ipv4Addr>,
) -> Result<TcpHandle, TcpError> {
    let Some(src) = host.select_source(dst.0, Some(dst.1), bind_addr) else {
        return Err(TcpError::Unroutable);
    };
    with_layer(host, |l, host| {
        let port = l.alloc_port();
        let iss = l.next_isn();
        l.conns.push(TcpConn {
            state: TcpState::SynSent,
            local: (src, port),
            remote: dst,
            parent: None,
            snd_una: iss,
            snd_nxt: iss.wrapping_add(1),
            iss,
            send_buf: VecDeque::new(),
            fin_pending: false,
            fin_seq: None,
            rcv_nxt: 0,
            recv_buf: Vec::new(),
            ooo: BTreeMap::new(),
            peer_closed: false,
            rto: INITIAL_RTO,
            srtt_us: None,
            retries: 0,
            timer_gen: 0,
            timer: None,
            rtt_probe: None,
            mss: DEFAULT_MSS,
            keepalive: None,
            keepalive_fails: 0,
            stats: TcpStats::default(),
            error: None,
        });
        let ix = l.conns.len() - 1;
        l.emit(ix, host, ctx, iss, TcpFlags::SYN, Bytes::new(), false);
        l.arm_timer(ix, host, ctx, INITIAL_RTO);
        Ok(TcpHandle(ix))
    })
}

/// Queue `data` for transmission. Returns `false` if the connection cannot
/// send (closing or dead).
pub fn send(host: &mut Host, ctx: &mut NetCtx, h: TcpHandle, data: &[u8]) -> bool {
    with_layer(host, |l, host| {
        let c = &mut l.conns[h.0];
        if c.fin_pending || !(c.state.can_send() || c.state == TcpState::SynSent) {
            return false;
        }
        c.send_buf.extend(data.iter().copied());
        if c.state != TcpState::SynSent {
            l.pump(h.0, host, ctx);
        }
        true
    })
}

/// Drain received, in-order data.
pub fn recv(host: &mut Host, h: TcpHandle) -> Vec<u8> {
    std::mem::take(&mut layer(host).conns[h.0].recv_buf)
}

/// Bytes available to read without consuming them.
pub fn available(host: &mut Host, h: TcpHandle) -> usize {
    layer(host).conns[h.0].recv_buf.len()
}

/// Graceful close: send remaining data, then FIN.
pub fn close(host: &mut Host, ctx: &mut NetCtx, h: TcpHandle) {
    with_layer(host, |l, host| {
        let c = &mut l.conns[h.0];
        match c.state {
            TcpState::SynSent => {
                c.state = TcpState::Closed;
                c.timer_gen += 1;
                if let Some(h) = c.timer.take() {
                    ctx.cancel_timer(h);
                }
            }
            TcpState::Established | TcpState::CloseWait => {
                c.fin_pending = true;
                l.pump(h.0, host, ctx);
            }
            _ => {}
        }
    })
}

/// Abortive close: RST the peer and drop all state.
pub fn abort(host: &mut Host, ctx: &mut NetCtx, h: TcpHandle) {
    with_layer(host, |l, host| {
        let (state, local, remote, snd_nxt) = {
            let c = &l.conns[h.0];
            (c.state, c.local, c.remote, c.snd_nxt)
        };
        if !matches!(state, TcpState::Closed) {
            l.send_rst(host, ctx, local, remote, snd_nxt, 0);
            l.fail(h.0, TcpError::Reset, ctx);
        }
    })
}

/// The connection's current state.
pub fn state(host: &mut Host, h: TcpHandle) -> TcpState {
    layer(host).conns[h.0].state
}

/// Why the connection died, if it did.
pub fn error(host: &mut Host, h: TcpHandle) -> Option<TcpError> {
    layer(host).conns[h.0].error
}

/// Per-connection counters.
pub fn stats(host: &mut Host, h: TcpHandle) -> TcpStats {
    layer(host).conns[h.0].stats
}

/// Enable (or disable with `None`) keepalive probing on an idle
/// connection. A peer that stops answering `KEEPALIVE_LIMIT` consecutive
/// probes kills the connection with [`TcpError::TimedOut`] — how a
/// long-lived session eventually notices that its Out-DT peer's address
/// no longer exists.
pub fn set_keepalive(
    host: &mut Host,
    ctx: &mut NetCtx,
    h: TcpHandle,
    interval: Option<SimDuration>,
) {
    with_layer(host, |l, host| {
        l.conns[h.0].keepalive = interval;
        l.conns[h.0].keepalive_fails = 0;
        match interval {
            Some(ka) if l.conns[h.0].in_flight() == 0 => l.arm_timer(h.0, host, ctx, ka),
            Some(_) => {} // the in-flight RTO timer is already ticking
            None => {
                if l.conns[h.0].in_flight() == 0 {
                    l.cancel_timer(h.0, ctx);
                }
            }
        }
    })
}

/// The connection's local (address, port) — the endpoint identifier chosen
/// at connect/accept time.
pub fn local_endpoint(host: &mut Host, h: TcpHandle) -> (Ipv4Addr, u16) {
    layer(host).conns[h.0].local
}

/// The peer's (address, port).
pub fn remote_endpoint(host: &mut Host, h: TcpHandle) -> (Ipv4Addr, u16) {
    layer(host).conns[h.0].remote
}

/// All unacknowledged data has been accepted by the peer and the
/// connection is (still) in a data-carrying state.
pub fn all_acked(host: &mut Host, h: TcpHandle) -> bool {
    let c = &layer(host).conns[h.0];
    c.in_flight() == 0 && c.send_buf.is_empty()
}

/// Count of segments that matched no connection or listener.
pub fn unmatched(host: &mut Host) -> u64 {
    layer(host).unmatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FaultInjector, HostConfig, LinkConfig, NodeId, World};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn lan_pair(fault: FaultInjector) -> (World, NodeId, NodeId) {
        let mut w = World::new(11);
        let lan = w.add_segment(LinkConfig {
            fault,
            ..LinkConfig::lan()
        });
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.0.1/24"));
        w.attach(b, lan, Some("10.0.0.2/24"));
        install(w.host_mut(a));
        install(w.host_mut(b));
        (w, a, b)
    }

    #[test]
    fn handshake_and_bidirectional_data() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        assert_eq!(state(w.host_mut(a), ch), TcpState::Established);
        let sh = accept(w.host_mut(b), srv).expect("accepted");
        assert_eq!(state(w.host_mut(b), sh), TcpState::Established);
        assert_eq!(remote_endpoint(w.host_mut(b), sh).0, ip("10.0.0.1"));

        w.host_do(a, |h, ctx| assert!(send(h, ctx, ch, b"hello, server")));
        w.run_until_idle(10_000);
        assert_eq!(recv(w.host_mut(b), sh), b"hello, server");

        w.host_do(b, |h, ctx| assert!(send(h, ctx, sh, b"hello, client")));
        w.run_until_idle(10_000);
        assert_eq!(recv(w.host_mut(a), ch), b"hello, client");
        assert!(all_acked(w.host_mut(a), ch));
    }

    #[test]
    fn data_sent_before_establishment_flows_after() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 80);
        let ch = w.host_do(a, |h, ctx| {
            let ch = connect(h, ctx, (ip("10.0.0.2"), 80), None).unwrap();
            // Queue immediately, before the handshake completes.
            assert!(send(h, ctx, ch, b"GET / HTTP/1.0\r\n\r\n"));
            ch
        });
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();
        assert_eq!(recv(w.host_mut(b), sh), b"GET / HTTP/1.0\r\n\r\n");
        let _ = ch;
    }

    #[test]
    fn bulk_transfer_spans_many_segments() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 9);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 9), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();

        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        w.host_do(a, |h, ctx| assert!(send(h, ctx, ch, &data)));
        w.run_until_idle(200_000);
        let got = recv(w.host_mut(b), sh);
        assert_eq!(got.len(), data.len());
        assert_eq!(got, data);
        let st = stats(w.host_mut(a), ch);
        assert!(st.segs_sent as usize >= data.len() / DEFAULT_MSS);
        assert_eq!(st.segs_retransmitted, 0, "clean link needs no retransmits");
        assert_eq!(st.bytes_acked, data.len() as u64);
    }

    #[test]
    fn lossy_link_recovers_via_retransmission() {
        let (mut w, a, b) = lan_pair(FaultInjector {
            drop_prob: 0.15,
            ..Default::default()
        });
        let srv = listen(w.host_mut(b), None, 9);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 9), None))
            .unwrap();
        w.run_for(SimDuration::from_secs(30));
        let sh = accept(w.host_mut(b), srv).expect("handshake survives loss");

        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
        w.host_do(a, |h, ctx| assert!(send(h, ctx, ch, &data)));
        w.run_for(SimDuration::from_secs(120));
        let got = recv(w.host_mut(b), sh);
        assert_eq!(got, data, "data must arrive intact despite 15% loss");
        let st = stats(w.host_mut(a), ch);
        assert!(st.segs_retransmitted > 0, "loss must cause retransmissions");

        // Every retransmission is a causal event in the trace: a fresh
        // packet id linked back into the same flow as the segment it
        // re-sends, with the presumed parent recorded.
        use netsim::{TraceEventKind, TransformKind};
        let retx: Vec<_> = w
            .trace
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceEventKind::Transformed(TransformKind::Retransmission)
                )
            })
            .collect();
        assert!(
            retx.len() as u64 >= st.segs_retransmitted,
            "each retransmitted segment leaves a transform event \
             ({} events, {} retransmissions)",
            retx.len(),
            st.segs_retransmitted,
        );
        let first_flow = w.trace.events().front().unwrap().flow_id;
        let mut linked = 0u64;
        for e in &retx {
            assert_eq!(e.flow_id, first_flow, "retransmission stays in the flow");
            match e.parent_id {
                Some(parent) => {
                    linked += 1;
                    assert_ne!(parent, e.packet_id);
                    assert_eq!(
                        w.trace.flow_of(parent),
                        Some(first_flow),
                        "the presumed parent is a packet of the same flow"
                    );
                }
                None => {
                    // Legitimate orphan: the original never reached the
                    // wire (parked on ARP whose request the fault injector
                    // ate), so the retransmission is the first packet the
                    // trace ever saw of this flow.
                    let ix = w
                        .trace
                        .events()
                        .iter()
                        .position(|x| x.packet_id == e.packet_id)
                        .unwrap();
                    assert!(
                        w.trace
                            .events()
                            .iter()
                            .take(ix)
                            .all(|x| x.flow_id != first_flow),
                        "an unlinked retransmission must be its flow's first event"
                    );
                }
            }
        }
        assert!(linked > 0, "data retransmissions link their parents");
    }

    #[test]
    fn metrics_registry_agrees_with_tcp_stats() {
        let (mut w, a, b) = lan_pair(FaultInjector {
            drop_prob: 0.15,
            ..Default::default()
        });
        w.enable_metrics();
        let srv = listen(w.host_mut(b), None, 9);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 9), None))
            .unwrap();
        w.run_for(SimDuration::from_secs(30));
        let sh = accept(w.host_mut(b), srv).expect("handshake survives loss");

        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
        w.host_do(a, |h, ctx| assert!(send(h, ctx, ch, &data)));
        w.run_for(SimDuration::from_secs(120));
        assert_eq!(recv(w.host_mut(b), sh), data);

        // The registry's per-node TCP counters are recorded at the same
        // choke points as the per-connection stats; with a single
        // connection per host they must agree exactly.
        let st_a = stats(w.host_mut(a), ch);
        let st_b = stats(w.host_mut(b), sh);
        for (node, st) in [(a, &st_a), (b, &st_b)] {
            let m = &w.metrics.node(node).tcp;
            assert_eq!(m.segments_sent, st.segs_sent);
            assert_eq!(m.retransmissions, st.segs_retransmitted);
            assert_eq!(m.rtt_us.count(), st.rtt_samples);
        }
        assert!(st_a.segs_retransmitted > 0, "want loss in this scenario");
        assert!(w.metrics.node(a).tcp.segments_received > 0);
        assert!(w.metrics.node(a).tcp.rtt_us.mean() > 0.0);
    }

    #[test]
    fn corruption_is_survived() {
        let (mut w, a, b) = lan_pair(FaultInjector {
            corrupt_prob: 0.10,
            ..Default::default()
        });
        let srv = listen(w.host_mut(b), None, 9);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 9), None))
            .unwrap();
        w.run_for(SimDuration::from_secs(30));
        let sh = accept(w.host_mut(b), srv).expect("handshake survives corruption");
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 157) as u8).collect();
        w.host_do(a, |h, ctx| assert!(send(h, ctx, ch, &data)));
        w.run_for(SimDuration::from_secs(120));
        assert_eq!(recv(w.host_mut(b), sh), data);
    }

    #[test]
    fn graceful_close_reaches_closed_on_both_sides() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();

        w.host_do(a, |h, ctx| close(h, ctx, ch));
        w.run_for(SimDuration::from_secs(1));
        assert_eq!(state(w.host_mut(b), sh), TcpState::CloseWait);
        assert_eq!(state(w.host_mut(a), ch), TcpState::FinWait2);
        w.host_do(b, |h, ctx| close(h, ctx, sh));
        w.run_for(SimDuration::from_secs(1));
        assert_eq!(state(w.host_mut(b), sh), TcpState::Closed);
        // a sits in TIME_WAIT for 10 simulated seconds, then closes.
        assert_eq!(state(w.host_mut(a), ch), TcpState::TimeWait);
        w.run_for(SimDuration::from_secs(11));
        assert_eq!(state(w.host_mut(a), ch), TcpState::Closed);
        assert_eq!(error(w.host_mut(a), ch), None);
        assert_eq!(error(w.host_mut(b), sh), None);
    }

    #[test]
    fn close_flushes_queued_data_before_fin() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();
        let data = vec![7u8; 40_000];
        w.host_do(a, |h, ctx| {
            assert!(send(h, ctx, ch, &data));
            close(h, ctx, ch); // close with 40 kB still queued
        });
        w.run_until_idle(100_000);
        assert_eq!(recv(w.host_mut(b), sh), data);
        assert_eq!(state(w.host_mut(b), sh), TcpState::CloseWait);
    }

    #[test]
    fn connect_to_closed_port_is_reset() {
        let (mut w, a, _b) = lan_pair(FaultInjector::default());
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 4444), None))
            .unwrap();
        w.run_until_idle(10_000);
        assert_eq!(state(w.host_mut(a), ch), TcpState::Closed);
        assert_eq!(error(w.host_mut(a), ch), Some(TcpError::Reset));
    }

    #[test]
    fn unreachable_peer_times_out_with_backoff() {
        // No listener host at all: a second host exists but the address
        // doesn't — SYNs vanish into ARP failure.
        let (mut w, a, _b) = lan_pair(FaultInjector::default());
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.77"), 23), None))
            .unwrap();
        w.run_for(SimDuration::from_secs(300));
        assert_eq!(state(w.host_mut(a), ch), TcpState::Closed);
        assert_eq!(error(w.host_mut(a), ch), Some(TcpError::TimedOut));
        let st = stats(w.host_mut(a), ch);
        assert!(st.segs_retransmitted >= MAX_RETRIES as u64);
    }

    #[test]
    fn abort_resets_peer() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();
        w.host_do(a, |h, ctx| abort(h, ctx, ch));
        w.run_until_idle(10_000);
        assert_eq!(error(w.host_mut(a), ch), Some(TcpError::Reset));
        assert_eq!(error(w.host_mut(b), sh), Some(TcpError::Reset));
    }

    #[test]
    fn rtt_estimate_tracks_link_latency() {
        let mut w = World::new(5);
        let link = w.add_segment(LinkConfig::wan(25)); // 25 ms one way
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, link, Some("10.0.0.1/24"));
        w.attach(b, link, Some("10.0.0.2/24"));
        install(w.host_mut(a));
        install(w.host_mut(b));
        let srv = listen(w.host_mut(b), None, 9);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 9), None))
            .unwrap();
        w.run_until_idle(10_000);
        let _sh = accept(w.host_mut(b), srv).unwrap();
        for _ in 0..5 {
            w.host_do(a, |h, ctx| {
                send(h, ctx, ch, &[0u8; 512]);
            });
            w.run_until_idle(10_000);
        }
        let st = stats(w.host_mut(a), ch);
        let srtt = st.srtt_us.expect("rtt sampled");
        assert!(st.rtt_samples >= 1);
        assert!(
            (45_000..80_000).contains(&srtt),
            "srtt {srtt}us should be near the 50ms RTT"
        );
    }

    #[test]
    fn mobility_binding_semantics_connection_dies_with_its_address() {
        // A connection bound to an address that stops existing (the Out-DT
        // failure mode, §4): move the client to a new segment and address;
        // the server's segments can no longer reach it and the transfer
        // times out rather than completing.
        let mut w = World::new(5);
        let lan1 = w.add_segment(LinkConfig::lan());
        let lan2 = w.add_segment(LinkConfig::lan());
        let mob = w.add_host(HostConfig::conventional("mob"));
        let srv_host = w.add_host(HostConfig::conventional("srv"));
        let m_if = w.attach(mob, lan1, Some("10.0.1.5/24"));
        w.attach(srv_host, lan1, Some("10.0.1.1/24"));
        install(w.host_mut(mob));
        install(w.host_mut(srv_host));
        let srv = listen(w.host_mut(srv_host), None, 23);
        let ch = w
            .host_do(mob, |h, ctx| connect(h, ctx, (ip("10.0.1.1"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(srv_host), srv).unwrap();

        // Client moves: new segment, new address (the old one is gone).
        w.reattach(mob, m_if, lan2);
        w.host_mut(mob)
            .set_iface_addr(m_if, Some(netsim::IfaceAddr::parse("10.0.2.5/24")));

        // Server tries to talk to the departed address.
        w.host_do(srv_host, |h, ctx| {
            assert!(send(h, ctx, sh, b"are you there?"));
        });
        w.run_for(SimDuration::from_secs(300));
        assert_eq!(state(w.host_mut(srv_host), sh), TcpState::Closed);
        assert_eq!(error(w.host_mut(srv_host), sh), Some(TcpError::TimedOut));
        let _ = ch;
    }

    #[test]
    fn keepalive_keeps_a_live_connection_and_kills_a_dead_one() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();
        w.host_do(a, |h, ctx| {
            set_keepalive(h, ctx, ch, Some(SimDuration::from_secs(5)))
        });

        // Idle for a minute with a live peer: probes are answered, the
        // connection stays up.
        w.run_for(SimDuration::from_secs(60));
        assert_eq!(state(w.host_mut(a), ch), TcpState::Established);
        assert!(stats(w.host_mut(a), ch).segs_sent >= 10, "probes were sent");

        // Now the peer silently vanishes (its address stops existing — the
        // Out-DT half-death). Within ~4 intervals the prober notices.
        let b_if = 0;
        w.detach(b, b_if);
        w.run_for(SimDuration::from_secs(30));
        assert_eq!(state(w.host_mut(a), ch), TcpState::Closed);
        assert_eq!(error(w.host_mut(a), ch), Some(TcpError::TimedOut));
        let _ = sh;
    }

    #[test]
    fn idle_connection_without_keepalive_never_notices_a_dead_peer() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let _sh = accept(w.host_mut(b), srv).unwrap();
        w.detach(b, 0);
        w.run_for(SimDuration::from_secs(300));
        // Nothing in flight, nothing probing: the zombie lives forever.
        assert_eq!(state(w.host_mut(a), ch), TcpState::Established);
    }

    #[test]
    fn simultaneous_close_converges() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        let sh = accept(w.host_mut(b), srv).unwrap();
        // Both sides close in the same instant: FINs cross in flight.
        w.host_do(a, |h, ctx| close(h, ctx, ch));
        w.host_do(b, |h, ctx| close(h, ctx, sh));
        w.run_for(SimDuration::from_secs(1));
        // Both sides are in a terminal-or-waiting state (CLOSING/TIME-WAIT
        // path), and after 2*MSL both are fully closed with no error.
        w.run_for(SimDuration::from_secs(11));
        assert_eq!(state(w.host_mut(a), ch), TcpState::Closed);
        assert_eq!(state(w.host_mut(b), sh), TcpState::Closed);
        assert_eq!(error(w.host_mut(a), ch), None);
        assert_eq!(error(w.host_mut(b), sh), None);
    }

    #[test]
    fn address_specific_listener_ignores_other_addresses() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        // b listens only on an address it does NOT own locally... rather:
        // bind the listener to b's address; a connect to it succeeds, but a
        // connect to b via... give b a second (virtual) address instead.
        let vif = w
            .host_mut(b)
            .add_iface(netsim::wire::ethernet::MacAddr::from_index(777));
        w.host_mut(b)
            .set_iface_addr(vif, Some(netsim::IfaceAddr::parse("10.0.0.200/32")));
        let _srv = listen(w.host_mut(b), Some(ip("10.0.0.200")), 23);
        // SYN to the bound address is refused at the *other* local address.
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_until_idle(10_000);
        assert_eq!(error(w.host_mut(a), ch), Some(TcpError::Reset));
        // (10.0.0.200 is not on-link-resolvable for a, so the positive case
        // is covered by wildcard-listener tests elsewhere.)
    }

    #[test]
    fn listener_accepts_many_concurrent_connections() {
        let (mut w, a, b) = lan_pair(FaultInjector::default());
        let srv = listen(w.host_mut(b), None, 23);
        let mut conns = Vec::new();
        for _ in 0..8 {
            let c = w
                .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
                .unwrap();
            conns.push(c);
        }
        w.run_until_idle(100_000);
        let mut accepted = Vec::new();
        while let Some(c) = accept(w.host_mut(b), srv) {
            accepted.push(c);
        }
        assert_eq!(accepted.len(), 8);
        // All eight are distinct 4-tuples (distinct client ports).
        let mut ports: Vec<u16> = accepted
            .iter()
            .map(|&c| remote_endpoint(w.host_mut(b), c).1)
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 8);
        for &c in &conns {
            assert_eq!(state(w.host_mut(a), c), TcpState::Established);
        }
    }

    #[test]
    fn duplicate_syn_is_answered_idempotently() {
        // A retransmitted SYN (the original's SYN-ACK was lost) must not
        // create a second connection.
        let (mut w, a, b) = lan_pair(FaultInjector {
            drop_prob: 0.35,
            ..Default::default()
        });
        let srv = listen(w.host_mut(b), None, 23);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 23), None))
            .unwrap();
        w.run_for(SimDuration::from_secs(60));
        assert_eq!(state(w.host_mut(a), ch), TcpState::Established);
        let first = accept(w.host_mut(b), srv);
        let second = accept(w.host_mut(b), srv);
        assert!(first.is_some());
        assert!(second.is_none(), "one connection, accepted once");
    }

    #[test]
    fn out_of_order_delivery_is_reassembled() {
        // Duplicate-prone link reorders via duplication + loss patterns;
        // verify correctness under duplication.
        let (mut w, a, b) = lan_pair(FaultInjector {
            duplicate_prob: 0.2,
            ..Default::default()
        });
        let srv = listen(w.host_mut(b), None, 9);
        let ch = w
            .host_do(a, |h, ctx| connect(h, ctx, (ip("10.0.0.2"), 9), None))
            .unwrap();
        w.run_for(SimDuration::from_secs(10));
        let sh = accept(w.host_mut(b), srv).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 211) as u8).collect();
        w.host_do(a, |h, ctx| assert!(send(h, ctx, ch, &data)));
        w.run_for(SimDuration::from_secs(60));
        assert_eq!(recv(w.host_mut(b), sh), data);
    }
}
