//! UDP sockets.
//!
//! The bind address carries meaning here, exactly as in the paper's Linux
//! implementation (§7.1.1): binding to a specific interface address tells
//! the mobility layer "honour this source address" (e.g. bind to the
//! care-of address for plain Out-DT delivery); binding to the wildcard or
//! the home address means "the mobility heuristics decide".

use std::any::Any;
use std::collections::VecDeque;

use bytes::Bytes;

use netsim::device::TxMeta;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use netsim::wire::udp::UdpDatagram;
use netsim::{Host, IfaceNo, NetCtx, ProtocolHandler};

/// Handle to a UDP socket on some host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHandle(usize);

/// A received datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received {
    /// The sender's address and port.
    pub from: (Ipv4Addr, u16),
    /// The destination address the datagram arrived with — lets mobility-
    /// aware services see which of their addresses the peer used.
    pub to: Ipv4Addr,
    /// Payload bytes.
    pub payload: Bytes,
}

#[derive(Debug)]
struct UdpSocket {
    bound_addr: Option<Ipv4Addr>,
    port: u16,
    rx: VecDeque<Received>,
    open: bool,
}

/// The UDP protocol handler: a table of sockets demultiplexed by
/// (address, port).
#[derive(Debug, Default)]
pub struct UdpLayer {
    sockets: Vec<UdpSocket>,
    next_ephemeral: u16,
    /// Datagrams that arrived for ports nobody listens on (observability).
    pub unmatched: u64,
}

impl UdpLayer {
    fn demux(&mut self, dst_addr: Ipv4Addr, dst_port: u16) -> Option<&mut UdpSocket> {
        // Exact address binding beats wildcard.
        let mut wildcard = None;
        for (i, s) in self.sockets.iter().enumerate() {
            if !s.open || s.port != dst_port {
                continue;
            }
            match s.bound_addr {
                Some(a) if a == dst_addr => return self.sockets.get_mut(i),
                None => wildcard = Some(i),
                _ => {}
            }
        }
        wildcard.map(move |i| &mut self.sockets[i])
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            self.next_ephemeral = if self.next_ephemeral < 49152 || self.next_ephemeral == u16::MAX
            {
                49152
            } else {
                self.next_ephemeral + 1
            };
            let p = self.next_ephemeral;
            if !self.sockets.iter().any(|s| s.open && s.port == p) {
                return p;
            }
        }
    }
}

impl ProtocolHandler for UdpLayer {
    fn on_packet(&mut self, pkt: &Ipv4Packet, _iface: IfaceNo, _host: &mut Host, ctx: &mut NetCtx) {
        let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return;
        };
        match self.demux(pkt.dst, dgram.dst_port) {
            Some(sock) => {
                let node = ctx.node;
                ctx.metrics().record_udp_received(node, dgram.payload.len());
                sock.rx.push_back(Received {
                    from: (pkt.src, dgram.src_port),
                    to: pkt.dst,
                    payload: dgram.payload,
                });
            }
            None => self.unmatched += 1,
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Register the UDP layer with a host. Idempotent.
pub fn install(host: &mut Host) {
    if host.handler_as::<UdpLayer>(IpProtocol::Udp).is_none() {
        host.register_handler(IpProtocol::Udp, Box::new(UdpLayer::default()));
    }
}

fn layer(host: &mut Host) -> &mut UdpLayer {
    host.handler_as::<UdpLayer>(IpProtocol::Udp)
        .expect("udp::install not called on this host")
}

/// Open a socket. `addr` of `None` binds the wildcard address ("let the
/// mobility heuristics decide"); `port` of 0 allocates an ephemeral port.
pub fn bind(host: &mut Host, addr: Option<Ipv4Addr>, port: u16) -> UdpHandle {
    let l = layer(host);
    let port = if port == 0 { l.alloc_port() } else { port };
    l.sockets.push(UdpSocket {
        bound_addr: addr,
        port,
        rx: VecDeque::new(),
        open: true,
    });
    UdpHandle(l.sockets.len() - 1)
}

/// The socket's local (address, port). The address is `None` for wildcard.
pub fn local_addr(host: &mut Host, h: UdpHandle) -> (Option<Ipv4Addr>, u16) {
    let s = &layer(host).sockets[h.0];
    (s.bound_addr, s.port)
}

/// Send one datagram. The source address comes from the socket's binding,
/// filtered through the host's mobility layer ([`Host::select_source`]) —
/// the decision point the paper highlights in §7.1.1.
pub fn send_to(
    host: &mut Host,
    ctx: &mut NetCtx,
    h: UdpHandle,
    dst: (Ipv4Addr, u16),
    payload: impl Into<Bytes>,
) -> bool {
    let (bound, src_port) = {
        let s = &layer(host).sockets[h.0];
        if !s.open {
            return false;
        }
        (s.bound_addr, s.port)
    };
    let src = match host.select_source(dst.0, Some(dst.1), bound) {
        Some(src) => src,
        // A DHCP-style client may legitimately broadcast before it has any
        // address at all (RFC 951/2131 semantics).
        None if dst.0.is_broadcast() => Ipv4Addr::UNSPECIFIED,
        // Multicast has no route-table entry; source from the first
        // configured interface (the default multicast interface).
        None if dst.0.is_multicast() => match host.addrs().first() {
            Some(&a) => a,
            None => return false,
        },
        None => return false,
    };
    let payload: Bytes = payload.into();
    let node = ctx.node;
    ctx.metrics().record_udp_sent(node, payload.len());
    let dgram = UdpDatagram::new(src_port, dst.1, payload);
    let mut pkt = Ipv4Packet::new(
        src,
        dst.0,
        IpProtocol::Udp,
        Bytes::from(dgram.emit(src, dst.0)),
    );
    pkt.ident = host.alloc_ident();
    host.send_ip(ctx, pkt, TxMeta::default());
    true
}

/// Pop the next received datagram, if any.
pub fn recv(host: &mut Host, h: UdpHandle) -> Option<Received> {
    layer(host).sockets[h.0].rx.pop_front()
}

/// Number of queued datagrams.
pub fn pending(host: &mut Host, h: UdpHandle) -> usize {
    layer(host).sockets[h.0].rx.len()
}

/// Close the socket; its port becomes reusable.
pub fn close(host: &mut Host, h: UdpHandle) {
    let s = &mut layer(host).sockets[h.0];
    s.open = false;
    s.rx.clear();
}

/// Count of datagrams that arrived with no matching socket.
pub fn unmatched(host: &mut Host) -> u64 {
    layer(host).unmatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostConfig, LinkConfig, World};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn lan_pair() -> (World, netsim::NodeId, netsim::NodeId) {
        let mut w = World::new(3);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.0.1/24"));
        w.attach(b, lan, Some("10.0.0.2/24"));
        install(w.host_mut(a));
        install(w.host_mut(b));
        (w, a, b)
    }

    #[test]
    fn datagram_roundtrip() {
        let (mut w, a, b) = lan_pair();
        let sb = bind(w.host_mut(b), None, 7777);
        let sa = bind(w.host_mut(a), None, 0);
        w.host_do(a, |h, ctx| {
            assert!(send_to(h, ctx, sa, (ip("10.0.0.2"), 7777), &b"hello"[..]));
        });
        w.run_until_idle(1_000);
        let got = recv(w.host_mut(b), sb).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"hello"));
        assert_eq!(got.from.0, ip("10.0.0.1"));
        assert_eq!(got.to, ip("10.0.0.2"));
        // Reply to the ephemeral port.
        let from = got.from;
        w.host_do(b, |h, ctx| {
            assert!(send_to(h, ctx, sb, from, &b"world"[..]));
        });
        w.run_until_idle(1_000);
        let back = recv(w.host_mut(a), sa).unwrap();
        assert_eq!(back.payload, Bytes::from_static(b"world"));
        assert_eq!(back.from, (ip("10.0.0.2"), 7777));
    }

    #[test]
    fn metrics_registry_counts_datagrams_and_bytes() {
        let (mut w, a, b) = lan_pair();
        w.enable_metrics();
        let sb = bind(w.host_mut(b), None, 7777);
        let sa = bind(w.host_mut(a), None, 0);
        w.host_do(a, |h, ctx| {
            assert!(send_to(h, ctx, sa, (ip("10.0.0.2"), 7777), &b"hello"[..]));
        });
        w.run_until_idle(1_000);
        let from = recv(w.host_mut(b), sb).unwrap().from;
        w.host_do(b, |h, ctx| {
            assert!(send_to(h, ctx, sb, from, &b"pong"[..]));
        });
        w.run_until_idle(1_000);
        assert!(recv(w.host_mut(a), sa).is_some());

        let (ma, mb) = (&w.metrics.node(a).udp, &w.metrics.node(b).udp);
        assert_eq!((ma.datagrams_sent, ma.bytes_sent), (1, 5));
        assert_eq!((ma.datagrams_received, ma.bytes_received), (1, 4));
        assert_eq!((mb.datagrams_sent, mb.bytes_sent), (1, 4));
        assert_eq!((mb.datagrams_received, mb.bytes_received), (1, 5));

        // A datagram for a dead port is counted as sent but not received.
        w.host_do(a, |h, ctx| {
            send_to(h, ctx, sa, (ip("10.0.0.2"), 9), &b"x"[..]);
        });
        w.run_until_idle(1_000);
        assert_eq!(w.metrics.node(a).udp.datagrams_sent, 2);
        assert_eq!(w.metrics.node(b).udp.datagrams_received, 1);
    }

    #[test]
    fn unmatched_port_is_counted_not_delivered() {
        let (mut w, a, b) = lan_pair();
        let sa = bind(w.host_mut(a), None, 0);
        w.host_do(a, |h, ctx| {
            send_to(h, ctx, sa, (ip("10.0.0.2"), 9), &b"x"[..]);
        });
        w.run_until_idle(1_000);
        assert_eq!(unmatched(w.host_mut(b)), 1);
    }

    #[test]
    fn specific_bind_beats_wildcard_and_filters_address() {
        let (mut w, a, b) = lan_pair();
        // b gets a second address on the same iface? Instead: bind the
        // wildcard and the specific address at the same port; specific wins.
        let wild = bind(w.host_mut(b), None, 53);
        let specific = bind(w.host_mut(b), Some(ip("10.0.0.2")), 53);
        let sa = bind(w.host_mut(a), None, 0);
        w.host_do(a, |h, ctx| {
            send_to(h, ctx, sa, (ip("10.0.0.2"), 53), &b"q"[..]);
        });
        w.run_until_idle(1_000);
        assert_eq!(pending(w.host_mut(b), specific), 1);
        assert_eq!(pending(w.host_mut(b), wild), 0);
    }

    #[test]
    fn bound_socket_uses_bound_source_address() {
        let (mut w, a, b) = lan_pair();
        let sb = bind(w.host_mut(b), None, 1000);
        // Bind explicitly to a's address — the §7.1.1 "I know what I'm
        // doing" signal. With no mobility hook the effect is the same, but
        // the address must be honoured.
        let sa = bind(w.host_mut(a), Some(ip("10.0.0.1")), 0);
        w.host_do(a, |h, ctx| {
            send_to(h, ctx, sa, (ip("10.0.0.2"), 1000), &b"m"[..]);
        });
        w.run_until_idle(1_000);
        assert_eq!(recv(w.host_mut(b), sb).unwrap().from.0, ip("10.0.0.1"));
    }

    #[test]
    fn closed_socket_rejects_send_and_frees_port() {
        let (mut w, a, _b) = lan_pair();
        let s1 = bind(w.host_mut(a), None, 2222);
        close(w.host_mut(a), s1);
        let ok = w.host_do(a, |h, ctx| {
            send_to(h, ctx, s1, (ip("10.0.0.2"), 1), &b"x"[..])
        });
        assert!(!ok);
        let s2 = bind(w.host_mut(a), None, 2222); // port reusable
        assert_eq!(local_addr(w.host_mut(a), s2).1, 2222);
    }

    #[test]
    fn ephemeral_ports_are_distinct() {
        let (mut w, a, _) = lan_pair();
        let s1 = bind(w.host_mut(a), None, 0);
        let s2 = bind(w.host_mut(a), None, 0);
        let p1 = local_addr(w.host_mut(a), s1).1;
        let p2 = local_addr(w.host_mut(a), s2).1;
        assert_ne!(p1, p2);
        assert!(p1 >= 49152 && p2 >= 49152);
    }
}
